# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test bench bench-perf bench-server quick-check reproduce clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# hot-path throughput regression harness: simulated cycles/sec and
# issued ops/sec over the stress scenarios, written to BENCH_hotpath.json
bench-perf:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --output BENCH_hotpath.json --assert-replay-speedup 2.0 --assert-batch-speedup 3.0 --assert-batch-np-speedup 10.0 --assert-telemetry-overhead 25

# evaluation-server load test: spawns `repro serve` on an ephemeral
# port, bursts all-duplicate traffic (coalescing), hammers the warm key
# (latency), revalidates via If-None-Match (304s); BENCH_server.json
bench-server:
	PYTHONPATH=src $(PYTHON) -m repro loadtest --clients 50 --requests 500 --output BENCH_server.json --assert-coalesce-ratio 0.9 --assert-p99-ms 250 --assert-zero-5xx

# the two output files the reproduction record refers to
outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

quick-check:
	$(PYTHON) -m pytest tests/isa tests/core -q

reproduce:
	$(PYTHON) examples/paper_reproduction.py

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
