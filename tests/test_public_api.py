"""Public API surface tests: the documented entry points exist, are
importable from the advertised locations, and `__all__` is honest."""

import importlib

import pytest

PACKAGES = ["repro", "repro.isa", "repro.cpu", "repro.core",
            "repro.compiler", "repro.workloads", "repro.analysis",
            "repro.runner", "repro.telemetry"]


class TestAllLists:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_version(self):
        import repro
        assert repro.__version__


class TestReadmeQuickstart:
    def test_readme_code_runs(self):
        """The README's quick-start snippet, executed verbatim."""
        from repro import (PolicyEvaluator, Simulator, assemble,
                           make_policy)
        from repro.core import OriginalPolicy, paper_statistics
        from repro.isa.instructions import FUClass

        program = assemble("""
.text
    li   r1, 100
    li   r2, -7
loop:
    add  r3, r3, r2
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
""")
        stats = paper_statistics(FUClass.IALU)
        lut = PolicyEvaluator(FUClass.IALU, 4,
                              make_policy("lut-4", FUClass.IALU, 4,
                                          stats=stats))
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        sim = Simulator(program)
        sim.add_listener(lut)
        sim.add_listener(fcfs)
        sim.run()
        saving = 1 - lut.totals().switched_bits / fcfs.totals().switched_bits
        assert 0 <= saving < 1

    def test_module_docstring_quickstart(self):
        """The package docstring's example pattern works."""
        from repro import PolicyEvaluator, Simulator, assemble, make_policy
        from repro.core import paper_statistics
        from repro.isa.instructions import FUClass

        program = assemble(".text\nli r1, 3\nadd r2, r1, r1\nhalt")
        stats = paper_statistics(FUClass.IALU)
        policy = make_policy("lut-4", FUClass.IALU, 4, stats=stats)
        evaluator = PolicyEvaluator(FUClass.IALU, 4, policy)
        sim = Simulator(program)
        sim.add_listener(evaluator)
        sim.run()
        assert evaluator.totals().bits_per_operation >= 0


class TestDocumentationFiles:
    def test_required_documents_exist(self):
        from pathlib import Path
        root = Path(__file__).resolve().parent.parent
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/isa.md", "docs/internals.md",
                     "docs/paper_mapping.md", "docs/runner.md",
                     "docs/telemetry.md"):
            path = root / name
            assert path.exists() and path.stat().st_size > 500, name
