"""HTTP behaviour of the evaluation server: the memoization ladder,
backpressure, and drain — all through real sockets on loopback."""

import asyncio
import json

import pytest

from repro.server import EvalServer, ServerConfig
from repro.server.loadgen import Client

SYNTH = {"synthetic": True, "cycles": 1500,
         "policies": ["original", "lut-4"]}


def serve(config, scenario):
    """Run ``scenario(server, client)`` against a live server."""
    async def _main():
        server = EvalServer(config)
        host, port = await server.start()
        client = Client(host, port)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.close()
    return asyncio.run(_main())


def inline_config(**overrides):
    base = dict(executor="inline", max_workers=2)
    base.update(overrides)
    return ServerConfig(**base)


def post(client, payload, **kwargs):
    return client.request("POST", "/v1/evaluate",
                          json.dumps(payload).encode(), **kwargs)


def test_evaluate_then_cache_then_304():
    async def scenario(server, client):
        first = await post(client, SYNTH)
        assert first.status == 200
        assert first.headers["x-cache"] == "computed"
        body = json.loads(first.body)
        assert body["report"].startswith("Figure 4")
        assert "original|none" in body["cells"]

        second = await post(client, SYNTH)
        assert second.status == 200
        assert second.headers["x-cache"] == "hit"
        assert second.body == first.body

        third = await post(client, SYNTH,
                           headers={"If-None-Match":
                                    first.headers["etag"]})
        assert third.status == 304
        assert third.body == b""
        assert third.headers["etag"] == first.headers["etag"]

        counters = server.registry.counter_values()
        assert counters["server.executions"] == 1
        assert counters["server.cache.hits"] == 1
        assert counters["server.http.304"] == 1
    serve(inline_config(), scenario)


def test_equivalent_spellings_share_cache_entry():
    async def scenario(server, client):
        a = await post(client, dict(SYNTH, policies=["original", "lut-4"]))
        b = await post(client, dict(SYNTH, policies=["lut-4", "original",
                                                     "lut-4"]))
        assert a.status == b.status == 200
        assert b.headers["x-cache"] == "hit"
        assert a.body == b.body
    serve(inline_config(), scenario)


def test_bad_requests():
    async def scenario(server, client):
        bad_json = await client.request("POST", "/v1/evaluate", b"{nope")
        assert bad_json.status == 400
        bad_field = await post(client, {"policies": ["nope"]})
        assert bad_field.status == 400
        assert b"unknown policy kind" in bad_field.body
        not_found = await client.request("GET", "/nope")
        assert not_found.status == 404
        wrong_method = await client.request("GET", "/v1/evaluate")
        assert wrong_method.status == 405
        wrong_method2 = await client.request("POST", "/healthz", b"")
        assert wrong_method2.status == 405
        delay = await post(client, dict(SYNTH, delay_ms=10))
        assert delay.status == 400  # server not started with --allow-delay
    serve(inline_config(), scenario)


def test_policy_allowlist():
    async def scenario(server, client):
        refused = await post(client, dict(SYNTH, policies=["full-ham"]))
        assert refused.status == 400
        assert b"not served here" in refused.body
        allowed = await post(client, SYNTH)
        assert allowed.status == 200
    serve(inline_config(allowed_policies=("lut-4",)), scenario)


def test_metrics_endpoints():
    async def scenario(server, client):
        await post(client, SYNTH)
        health = await client.request("GET", "/healthz")
        assert health.status == 200
        assert json.loads(health.body)["status"] == "ok"
        text = await client.request("GET", "/metrics")
        assert text.status == 200
        assert b"server.executions" in text.body
        snap = await client.request("GET", "/metrics.json")
        payload = json.loads(snap.body)
        assert payload["counters"]["server.executions"] == 1
        assert "coalesce_ratio" in payload["derived"]
    serve(inline_config(), scenario)


def test_queue_full_returns_429_with_retry_after():
    async def scenario(server, client):
        slow = post(client, dict(SYNTH, delay_ms=1000), timeout=30.0)
        task = asyncio.ensure_future(slow)
        await asyncio.sleep(0.2)  # the slow evaluation is now in flight
        other = Client(*server.address)
        rejected = await post(other, dict(SYNTH, seed=7))
        assert rejected.status == 429
        assert "retry-after" in rejected.headers
        assert b"queue full" in rejected.body
        first = await task
        assert first.status == 200
        await other.close()
        assert server.registry.counter_values()[
            "server.rejected.queue_full"] == 1
    serve(inline_config(queue_limit=1, allow_delay=True), scenario)


def test_request_timeout_returns_504():
    async def scenario(server, client):
        sample = await post(client, dict(SYNTH, delay_ms=2000),
                            timeout=30.0)
        assert sample.status == 504
        assert server.registry.counter_values()["server.timeouts"] == 1
    serve(inline_config(request_timeout=0.2, allow_delay=True), scenario)


def test_failures_return_500_and_are_not_cached(monkeypatch):
    import repro.server.executor as executor_module
    calls = []

    def exploding(payload):
        calls.append(1)
        raise RuntimeError("boom")

    monkeypatch.setattr(executor_module, "evaluate_request", exploding)

    async def scenario(server, client):
        first = await post(client, SYNTH)
        assert first.status == 500
        assert b"boom" in first.body
        second = await post(client, SYNTH)
        assert second.status == 500
        # a failure must not poison the response cache: both attempts
        # really executed
        assert len(calls) == 2
        assert server.registry.counter_values()[
            "server.executions.failed"] == 2
    serve(inline_config(), scenario)


def test_drain_finishes_inflight_and_rejects_new():
    async def scenario(server, client):
        inflight = asyncio.ensure_future(
            post(client, dict(SYNTH, delay_ms=800), timeout=30.0))
        await asyncio.sleep(0.2)
        server.begin_drain()
        health = await Client(*server.address).request("GET", "/healthz")
        assert json.loads(health.body)["status"] == "draining"
        other = Client(*server.address)
        rejected = await post(other, dict(SYNTH, seed=9))
        assert rejected.status == 429
        assert b"draining" in rejected.body
        finished = await inflight
        assert finished.status == 200
        await other.close()
    serve(inline_config(allow_delay=True), scenario)


def test_pool_executor_serves_and_batches():
    """The production executor: evaluations run in forked pool workers,
    concurrent distinct requests ride one batch."""
    async def scenario(server, client):
        others = [Client(*server.address) for _ in range(3)]
        payloads = [dict(SYNTH, seed=i) for i in range(4)]
        samples = await asyncio.gather(*(
            post(c, p, timeout=60.0)
            for c, p in zip([client, *others], payloads)))
        assert [s.status for s in samples] == [200] * 4
        assert len({s.headers["x-request-key"] for s in samples}) == 4
        for other in others:
            await other.close()
        assert server.executor.batches >= 1
        assert server.executor.batched_items == 4
    serve(ServerConfig(executor="pool", max_workers=2), scenario)
