"""CLI wiring for serve/loadtest: policy kinds validated at parse time
with the registry's error message, same UX as campaign."""

import pytest

from repro.cli import build_parser


def test_serve_rejects_unknown_policy_at_parse_time(capsys):
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["serve", "--policies", "not-a-policy"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "unknown policy kind 'not-a-policy'" in err
    assert "registered kinds" in err


def test_loadtest_rejects_unknown_policy_at_parse_time(capsys):
    with pytest.raises(SystemExit) as exc:
        build_parser().parse_args(["loadtest", "--policies", "lut-4",
                                   "nope-9"])
    assert exc.value.code == 2
    assert "unknown policy kind 'nope-9'" in capsys.readouterr().err


def test_serve_accepts_valid_grid_kinds():
    args = build_parser().parse_args(
        ["serve", "--policies", "lut-4", "bdd-4", "--port", "0"])
    assert args.policies == ["lut-4", "bdd-4"]
    assert args.func.__name__ == "cmd_serve"


def test_loadtest_defaults():
    args = build_parser().parse_args(["loadtest", "--quick"])
    assert args.quick
    assert args.policies is None
    assert args.func.__name__ == "cmd_loadtest"
