"""Server responses must be bit-identical to the CLI's figure-4 output
for the same request — the serving layer adds transport, never changes
a result byte."""

import asyncio
import json

from repro.cli import main as cli_main
from repro.server import EvalServer, ServerConfig
from repro.server.loadgen import Client


def _server_report(payload):
    async def scenario():
        server = EvalServer(ServerConfig(executor="inline", max_workers=2))
        host, port = await server.start()
        client = Client(host, port)
        try:
            sample = await client.request(
                "POST", "/v1/evaluate", json.dumps(payload).encode(),
                timeout=120.0)
        finally:
            await client.close()
            await server.close()
        assert sample.status == 200
        return json.loads(sample.body)

    return asyncio.run(scenario())


def test_synthetic_parity_with_cli(capsys):
    """`repro figure4 ialu --synthetic` and the server must render the
    same panel — policies listed in a different order on purpose."""
    rc = cli_main(["figure4", "ialu", "--synthetic", "--cycles", "3000",
                   "--policies", "original", "lut-4"])
    assert rc == 0
    expected = capsys.readouterr().out.rstrip("\n")

    body = _server_report({"fu": "ialu", "synthetic": True,
                           "cycles": 3000,
                           "policies": ["lut-4", "original"]})
    assert body["report"] == expected


def test_workload_parity_with_cli(capsys):
    """Real-program path: same workload, same stats, same grid, same
    scale (the CLI defaults --scale 1; the server's omitted scale means
    each workload's default, so the request pins it)."""
    rc = cli_main(["figure4", "ialu", "--workloads", "li", "--scale", "1",
                   "--policies", "original", "lut-4"])
    assert rc == 0
    expected = capsys.readouterr().out.rstrip("\n")

    body = _server_report({"fu": "ialu", "workloads": ["li"], "scale": 1,
                           "policies": ["lut-4", "original"]})
    assert body["report"] == expected
    assert body["workloads"] == ["li"]
    assert body["baseline_bits"] > 0
