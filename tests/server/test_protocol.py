"""Request parsing, canonicalisation, and content-addressed keys."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.server.protocol import (EvalRequest, ProtocolError, etag_for,
                                   parse_request, request_key)


def test_defaults():
    request = parse_request({})
    assert request.fu == "ialu"
    assert request.workloads  # the integer suite
    assert "original" in request.policies
    assert request.swap_modes == ("none", "hw")
    assert request.stats == "measured"
    assert not request.synthetic


def test_synthetic_takes_no_workloads():
    request = parse_request({"synthetic": True})
    assert request.workloads == ()
    with pytest.raises(ProtocolError, match="no 'workloads'"):
        parse_request({"synthetic": True, "workloads": ["li"]})


def test_synthetic_rejects_compiler_modes():
    with pytest.raises(ProtocolError, match="compiler"):
        parse_request({"synthetic": True,
                       "swap_modes": ["none", "compiler"]})


def test_baseline_policy_always_present():
    request = parse_request({"policies": ["lut-4"]})
    assert "original" in request.policies


@pytest.mark.parametrize("payload,fragment", [
    ([], "JSON object"),
    ({"bogus_field": 1}, "unknown request field"),
    ({"fu": "gpu"}, "'fu' must be"),
    ({"policies": []}, "non-empty"),
    ({"policies": ["definitely-not-a-policy"]}, "unknown policy kind"),
    ({"swap_modes": ["sideways"]}, "unknown swap mode"),
    ({"workloads": ["no-such-kernel"]}, "unknown workload"),
    ({"scale": 0}, "'scale'"),
    ({"cycles": 0}, "'cycles'"),
    ({"stats": "vibes"}, "'stats'"),
    ({"engine": "turbo"}, "'engine'"),
    ({"delay_ms": -5}, "'delay_ms'"),
    ({"config": {"telemetry": 1}}, "unknown config override"),
    ({"config": {"rob_entries": "many"}}, "must be an int"),
], ids=lambda v: str(v)[:40])
def test_rejects(payload, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        parse_request(payload)


def test_config_override_reaches_machine_config():
    request = parse_request({"config": {"rob_entries": 32}})
    assert request.machine_config().rob_entries == 32


def test_payload_round_trip():
    request = parse_request({"workloads": ["li"], "policies": ["lut-4"],
                             "config": {"rob_entries": 32}})
    assert EvalRequest.from_payload(request.to_payload()) == request


POLICY_SETS = st.lists(
    st.sampled_from(["original", "lut-4", "lut-2", "full-ham", "1bit-ham"]),
    min_size=1, max_size=5, unique=True)
WORKLOAD_SETS = st.lists(
    st.sampled_from(["li", "compress", "go", "ijpeg"]),
    min_size=1, max_size=4, unique=True)


@settings(max_examples=40, deadline=None)
@given(policies=POLICY_SETS, workloads=WORKLOAD_SETS,
       data=st.data())
def test_key_invariant_under_permutation(policies, workloads, data):
    """Reordered (even duplicated) policy/workload lists name the same
    evaluation, so they must produce the same key and ETag."""
    shuffled_p = data.draw(st.permutations(policies))
    shuffled_w = data.draw(st.permutations(workloads))
    a = parse_request({"policies": policies, "workloads": workloads})
    b = parse_request({"policies": list(shuffled_p) + [policies[0]],
                       "workloads": list(shuffled_w) + [workloads[0]]})
    assert a == b
    fingerprints = ["f" * 64] * len(a.workloads)
    assert request_key(a, fingerprints) == request_key(b, fingerprints)


def test_key_sensitive_to_content():
    base = parse_request({"synthetic": True})
    assert request_key(base, []) != request_key(
        parse_request({"synthetic": True, "seed": 1}), [])
    assert request_key(base, []) != request_key(
        parse_request({"synthetic": True, "cycles": 999}), [])
    real = parse_request({"workloads": ["li"]})
    assert request_key(real, ["a" * 64]) != request_key(real, ["b" * 64])


def test_engine_and_delay_excluded_from_key():
    """All engines are bit-identical and delay_ms is a test knob, so
    neither may split the cache."""
    a = parse_request({"synthetic": True, "engine": "object"})
    b = parse_request({"synthetic": True, "engine": "batch"})
    c = parse_request({"synthetic": True, "delay_ms": 50})
    assert request_key(a, []) == request_key(b, []) == request_key(c, [])


def test_etag_is_quoted_key():
    key = request_key(parse_request({"synthetic": True}), [])
    assert etag_for(key) == f'"{key}"'
