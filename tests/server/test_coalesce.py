"""Single-flight coalescing: N concurrent identical requests must run
exactly one simulation and return N bit-identical responses — in one
process through the server's in-flight map, and across processes
through ``TraceCacheLock``."""

import asyncio
import json
import multiprocessing
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.simulator import Simulator
from repro.server import EvalServer, ServerConfig
from repro.server.loadgen import Client
from repro.workloads import workload


def _count_simulator_runs(monkeypatch):
    """Patch ``Simulator.run`` to count invocations process-wide."""
    calls = []
    original = Simulator.run

    def counting(self, *args, **kwargs):
        calls.append(self.program.name)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Simulator, "run", counting)
    return calls


@settings(max_examples=3, deadline=None)
@given(clients=st.integers(min_value=2, max_value=12))
def test_n_concurrent_requests_one_simulation(clients):
    """The way-memoization property, end to end over real sockets:
    whatever the fan-in, one Simulator.run and N identical bodies."""
    with pytest.MonkeyPatch.context() as monkeypatch:
        calls = _count_simulator_runs(monkeypatch)
        request = json.dumps({
            "fu": "ialu", "workloads": ["li"], "scale": 1,
            "policies": ["original", "lut-4"],
            "swap_modes": ["none", "hw"],
        }).encode()

        async def scenario():
            server = EvalServer(ServerConfig(executor="inline",
                                             max_workers=2))
            host, port = await server.start()
            pool = [Client(host, port) for _ in range(clients)]
            try:
                samples = await asyncio.gather(*(
                    client.request("POST", "/v1/evaluate", request,
                                   timeout=120.0)
                    for client in pool))
            finally:
                for client in pool:
                    await client.close()
                await server.close()
            return server.registry.counter_values(), samples

        counters, samples = asyncio.run(scenario())
        assert [s.status for s in samples] == [200] * clients
        assert len({s.body for s in samples}) == 1  # bit-identical
        assert counters["server.executions"] == 1
        assert counters["server.coalesced.waiters"] \
            + counters["server.cache.hits"] == clients - 1
        # exactly one simulation of the one program version (the
        # figure-4 pass replays the captured stream for everything else)
        assert len(calls) == 1


def test_coalesced_waiters_counted_separately_from_hits():
    """A request arriving while the key is in flight coalesces; one
    arriving after completion hits the response cache."""
    request = json.dumps({"synthetic": True, "cycles": 1500,
                          "policies": ["original", "lut-4"],
                          "delay_ms": 300}).encode()

    async def scenario():
        server = EvalServer(ServerConfig(executor="inline", max_workers=2,
                                         allow_delay=True))
        host, port = await server.start()
        a, b, c = (Client(host, port) for _ in range(3))
        try:
            leader = asyncio.ensure_future(
                a.request("POST", "/v1/evaluate", request, timeout=30.0))
            await asyncio.sleep(0.1)  # leader admitted, still sleeping
            waiter = await b.request("POST", "/v1/evaluate", request,
                                     timeout=30.0)
            led = await leader
            late = await c.request("POST", "/v1/evaluate", request,
                                   timeout=30.0)
        finally:
            for client in (a, b, c):
                await client.close()
            await server.close()
        return server.registry.counter_values(), led, waiter, late

    counters, led, waiter, late = asyncio.run(scenario())
    assert led.headers["x-cache"] == "computed"
    assert waiter.headers["x-cache"] == "coalesced"
    assert late.headers["x-cache"] == "hit"
    assert led.body == waiter.body == late.body
    assert counters["server.executions"] == 1
    assert counters["server.coalesced.waiters"] == 1
    assert counters["server.cache.hits"] == 1


def _record_worker(cache_dir, barrier, queue):
    """Child process: contend on the shared trace cache for one key."""
    from repro.cpu.config import MachineConfig
    from repro.isa.instructions import FUClass
    from repro.streams import cached_or_record

    program = workload("li").build(1)
    config = MachineConfig()
    barrier.wait(timeout=30)  # maximise contention: start together
    source, state = cached_or_record(program, config, cache_dir,
                                     (FUClass.IALU,), poll=0.05)
    queue.put(state)


def test_cross_process_coalescing_through_trace_cache_lock(tmp_path):
    """K processes race cached_or_record on one key: exactly one
    records ("miss"), the rest replay the winner's entry ("hit")."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(4)
    queue = ctx.Queue()
    workers = [ctx.Process(target=_record_worker,
                           args=(str(tmp_path), barrier, queue))
               for _ in range(4)]
    for worker in workers:
        worker.start()
    states = [queue.get(timeout=120) for _ in workers]
    for worker in workers:
        worker.join(timeout=30)
        assert worker.exitcode == 0
    assert sorted(states) == ["hit", "hit", "hit", "miss"]


def test_loser_polling_uses_jittered_backoff(tmp_path, monkeypatch):
    """While the lock is held, a loser's waits must come from
    full_jitter_delay with growing (capped) attempt numbers — not a
    fixed-interval spin."""
    import repro.runner.pool as pool_module
    from repro.cpu.config import MachineConfig
    from repro.isa.instructions import FUClass
    from repro.streams import TraceCacheLock, cached_or_record, \
        trace_cache_key

    program = workload("li").build(1)
    config = MachineConfig()
    key = trace_cache_key(program, config, (FUClass.IALU,))
    lock = TraceCacheLock(tmp_path, key, ttl=600.0)
    assert lock.acquire()

    attempts = []
    real_delay = pool_module.full_jitter_delay

    def recording(base, attempt, *args, **kwargs):
        attempts.append((base, attempt))
        return 0.0  # no real sleeping in the test

    monkeypatch.setattr(pool_module, "full_jitter_delay", recording)
    try:
        # the lock never releases, so the loser backs off until
        # max_wait expires and then records unlocked
        source, state = cached_or_record(
            program, config, tmp_path, (FUClass.IALU,),
            poll=0.01, max_wait=0.2)
    finally:
        lock.release()
    assert state == "miss"
    assert len(attempts) >= 2
    bases = {base for base, _ in attempts}
    assert bases == {0.01}
    seq = [attempt for _, attempt in attempts]
    assert seq == sorted(seq)  # attempts grow...
    assert max(seq) <= 5  # ...but the ceiling is capped at 16x poll
    # and the real implementation actually jitters
    draws = {real_delay(1.0, 3) for _ in range(8)}
    assert len(draws) > 1
    assert all(0.0 <= d <= 4.0 for d in draws)
