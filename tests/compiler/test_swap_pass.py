"""Static operand swap pass tests."""

import pytest

from repro.compiler.profiling import profile_program
from repro.compiler.swap_pass import (PAPER_DENSER_FIRST, apply_swapping,
                                      denser_first_from_swap_case,
                                      swap_optimize)
from repro.cpu.golden import run_program
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass


DENSE_FIRST_PROGRAM = """
.text
    li r1, 3            # sparse (2 ones)
    li r2, -3           # dense (31 ones)
    li r5, 10
loop:
    add r3, r1, r2      # sparse first: candidate for IALU swap
    add r4, r2, r1      # dense first: already canonical
    sgt r6, r1, r2      # compiler-commutable comparison
    addi r5, r5, -1
    bne r5, r0, loop
    halt
"""


class TestDirectionHelpers:
    def test_denser_first_from_swap_case(self):
        assert denser_first_from_swap_case(0b01) is True
        assert denser_first_from_swap_case(0b10) is False
        with pytest.raises(ValueError):
            denser_first_from_swap_case(0b00)

    def test_paper_defaults(self):
        assert PAPER_DENSER_FIRST[FUClass.IALU] is True
        assert PAPER_DENSER_FIRST[FUClass.FPAU] is False


class TestApplySwapping:
    def test_swaps_sparse_first_add_for_ialu(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        swapped, report = swap_optimize(program)
        add_sparse = next(i for i in swapped.instructions
                          if i.op.name == "add" and i.static_swapped)
        assert (add_sparse.src1, add_sparse.src2) == (2, 1)
        assert report.swapped >= 1
        assert report.by_class[FUClass.IALU] >= 1

    def test_canonical_add_untouched(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        swapped, _ = swap_optimize(program)
        canonical = [i for i in swapped.instructions
                     if i.op.name == "add" and i.src1 == 2 and i.src2 == 1]
        # both the rewritten r1+r2 and the original r2+r1 are dense first
        assert len(canonical) == 2

    def test_opcode_twin_rewrite(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        swapped, _ = swap_optimize(program)
        names = [i.op.name for i in swapped.instructions]
        # sgt r6, r1(sparse), r2(dense) becomes slt r6, r2, r1
        assert "slt" in names and "sgt" not in names

    def test_architectural_equivalence(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        swapped, _ = swap_optimize(program)
        original = run_program(program)
        rewritten = run_program(swapped)
        assert original.registers == rewritten.registers

    def test_kernel_equivalence_after_swapping(self):
        from repro.workloads import workload
        load = workload("ijpeg")
        program = load.build(1)
        swapped, _ = swap_optimize(program)
        result = run_program(swapped)
        load.check(program, result, 1)  # same symbols, same results

    def test_direction_flip(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        profile = profile_program(program)
        sparse_first, _ = apply_swapping(
            program, profile, denser_first={FUClass.IALU: False})
        adds = [i for i in sparse_first.instructions if i.op.name == "add"]
        assert all((i.src1, i.src2) == (1, 2) for i in adds)

    def test_margin_suppresses_marginal_swaps(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        profile = profile_program(program)
        _, eager = apply_swapping(program, profile)
        _, reluctant = apply_swapping(program, profile, margin=100.0)
        assert reluctant.swapped == 0
        assert eager.swapped > 0

    def test_report_fraction(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        _, report = swap_optimize(program)
        assert 0.0 <= report.swap_fraction <= 1.0
        assert report.program_name == "p"

    def test_multiplier_direction(self):
        program = assemble("""
.text
    li r1, -3           # dense
    li r2, 3            # sparse
    li r5, 6
loop:
    mult r3, r2, r1     # dense multiplier second: should swap
    addi r5, r5, -1
    bne r5, r0, loop
    halt
""", name="m")
        swapped, report = swap_optimize(program)
        mult = next(i for i in swapped.instructions if i.op.name == "mult")
        assert mult.static_swapped
        assert (mult.src1, mult.src2) == (1, 2)  # sparse operand second
        assert report.by_class[FUClass.IMULT] == 1

    def test_swapped_program_name(self):
        program = assemble(DENSE_FIRST_PROGRAM, name="p")
        swapped, _ = swap_optimize(program)
        assert swapped.name == "p+cswap"
