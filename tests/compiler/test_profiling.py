"""Profiling pass tests."""

from repro.compiler.profiling import profile_program
from repro.isa import encoding
from repro.isa.assembler import assemble


class TestProfiling:
    def test_counts_executions_per_static_instruction(self):
        program = assemble("""
.text
    li r1, 4
    li r2, 3
    li r3, 5
loop:
    add r4, r2, r3
    addi r1, r1, -1
    bne r1, r0, loop
    halt
""")
        profile = profile_program(program)
        add_index = next(i for i, instr in enumerate(program.instructions)
                         if instr.op.name == "add" and instr.src1 == 2)
        record = profile.profile_for(add_index)
        assert record.executions == 4
        # operands are 3 (2 ones) and 5 (2 ones) every time
        assert record.mean_ones_op1 == 2.0
        assert record.mean_ones_op2 == 2.0

    def test_skips_immediate_and_single_source(self):
        program = assemble(".text\naddi r1, r0, 7\nlui r2, 9\nhalt")
        profile = profile_program(program)
        assert not profile.by_static_index

    def test_skips_non_swappable(self):
        program = assemble(".text\nli r1, 3\nli r2, 5\nsll r3, r1, r2\nhalt")
        profile = profile_program(program)
        sll_index = 2
        assert profile.profile_for(sll_index) is None

    def test_profiles_compare_twins_and_branches(self):
        program = assemble("""
.text
    li r1, -3
    li r2, 5
    slt r3, r1, r2
    blt r1, r2, out
out:
    halt
""")
        profile = profile_program(program)
        profiled_ops = {program.instructions[i].op.name
                        for i in profile.by_static_index}
        assert "slt" in profiled_ops
        assert "blt" in profiled_ops

    def test_fp_uses_mantissa_ones(self):
        program = assemble("""
.data
xs: .double 1.5, 3.0
.text
    la r1, xs
    ld f1, 0(r1)
    ld f2, 8(r1)
    fadd f3, f1, f2
    halt
""")
        profile = profile_program(program)
        fadd_index = next(i for i, instr in enumerate(program.instructions)
                          if instr.op.name == "fadd")
        record = profile.profile_for(fadd_index)
        # 1.5 has one explicit mantissa bit; 3.0 also one
        assert record.ones_op1 == encoding.popcount(
            encoding.mantissa(encoding.float_to_bits(1.5)))
        assert record.ones_op2 == 1

    def test_total_instruction_count(self, sum_program):
        profile = profile_program(sum_program)
        assert profile.instructions_executed > 0
        assert profile.program_name == "sum-loop"
