"""VLIW-style static assignment tests."""

import pytest

from repro.compiler.static_assignment import (CaseProfile,
                                              StaticAssignmentPolicy,
                                              assign_static_modules,
                                              build_static_policy,
                                              profile_cases)
from repro.core.power import FUPowerModel
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.core.lut import build_lut
from repro.core.steering import LUTPolicy
from repro.core.info_bits import scheme_for
from repro.cpu.simulator import Simulator
from repro.cpu.trace import MicroOp
from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass, opcode
from repro.workloads import workload

MIXED_PROGRAM = """
.text
    li r1, 5
    li r2, -9
    li r9, 20
loop:
    add r3, r1, r1      # always case 00
    add r4, r2, r2      # always case 11
    add r5, r2, r1      # always case 10
    addi r9, r9, -1
    bne r9, r0, loop
    halt
"""


class TestCaseProfile:
    def test_dominant_case(self):
        profile = CaseProfile(FUClass.IALU)
        profile.record(3, 0b00)
        profile.record(3, 0b00)
        profile.record(3, 0b10)
        assert profile.dominant_case(3) == 0b00
        assert profile.executions(3) == 3
        assert profile.dominant_case(99) is None

    def test_profile_cases_on_program(self):
        program = assemble(MIXED_PROGRAM, name="mixed")
        profile = profile_cases(program, FUClass.IALU)
        by_case = {}
        for index, instr in enumerate(program.instructions):
            if instr.op.name == "add":
                by_case[(instr.src1, instr.src2)] = \
                    profile.dominant_case(index)
        assert by_case[(1, 1)] == 0b00
        assert by_case[(2, 2)] == 0b11
        assert by_case[(2, 1)] == 0b10


class TestStaticMapping:
    def test_distinct_cases_get_distinct_modules(self, ialu_stats):
        program = assemble(MIXED_PROGRAM, name="mixed")
        profile = profile_cases(program, FUClass.IALU)
        mapping = assign_static_modules(profile, ialu_stats, 4)
        adds = [index for index, instr in enumerate(program.instructions)
                if instr.op.name == "add"]
        modules = {mapping[index] for index in adds}
        assert len(modules) == 3  # three cases -> three different modules

    def test_load_balanced_within_home(self, ialu_stats):
        # many equally-hot case-00 instructions spread across the
        # multiple case-00 home modules
        profile = CaseProfile(FUClass.IALU)
        for index in range(6):
            for _ in range(10):
                profile.record(index, 0b00)
        mapping = assign_static_modules(profile, ialu_stats, 4)
        assert len(set(mapping.values())) >= 2


class TestStaticPolicy:
    def test_honours_mapping(self):
        policy = StaticAssignmentPolicy({7: 2})
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [MicroOp(opcode("add"), 1, 2, static_index=7)]
        assert policy.assign(ops, power).modules == (2,)

    def test_conflicts_resolved_oldest_first(self):
        policy = StaticAssignmentPolicy({1: 0, 2: 0})
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [MicroOp(opcode("add"), 1, 2, static_index=1),
               MicroOp(opcode("add"), 3, 4, static_index=2)]
        assignment = policy.assign(ops, power)
        assert assignment.modules[0] == 0
        assert assignment.modules[1] != 0

    def test_unmapped_ops_take_free_modules(self):
        policy = StaticAssignmentPolicy({})
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [MicroOp(opcode("add"), 1, 2, static_index=55)]
        assert policy.assign(ops, power).modules == (0,)


class TestDynamicBeatsStatic:
    def test_paper_claim_on_kernel(self, ialu_stats):
        """Section 2: dynamic assignment should beat the static one on
        an out-of-order machine; the static one still beats FCFS."""
        program = workload("m88ksim").build(1)
        static_policy = build_static_policy(program, FUClass.IALU,
                                            ialu_stats, 4)
        scheme = scheme_for(FUClass.IALU)
        lut = build_lut(ialu_stats, 4, 8)
        evaluators = {
            "static": PolicyEvaluator(FUClass.IALU, 4, static_policy),
            "dynamic": PolicyEvaluator(FUClass.IALU, 4,
                                       LUTPolicy(lut=lut, scheme=scheme)),
            "fcfs": PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()),
        }
        sim = Simulator(program)
        for evaluator in evaluators.values():
            sim.add_listener(evaluator)
        sim.run()
        bits = {name: e.totals().switched_bits
                for name, e in evaluators.items()}
        assert bits["static"] < bits["fcfs"]
        assert bits["dynamic"] <= bits["static"] * 1.05
