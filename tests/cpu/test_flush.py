"""Misprediction flush paths: halt recovery, unpipelined module
release, and rename-table rebuild.

Every scenario exploits the cold bimodal predictor (counters start at
weak-taken) to get a deterministic mispredict: a never-taken ``beq`` is
predicted taken on first sight, so the taken target is fetched as the
wrong path.  A ``div`` feeding the branch delays resolution long enough
for wrong-path work to dispatch and issue before the flush.
"""

from repro.cpu.golden import run_program
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble


def ooo_matches_golden(program, config=None):
    golden = run_program(program)
    sim = Simulator(program, config)
    sim.run()
    assert sim.registers == golden.registers, "register state diverged"
    addresses = (set(golden.memory.touched_addresses())
                 | set(sim.memory.touched_addresses()))
    for address in addresses:
        assert sim.memory.load_byte(address) \
            == golden.memory.load_byte(address), f"memory at 0x{address:x}"
    return sim


class TestWrongPathHalt:
    def test_halt_fetched_on_wrong_path_is_recovered(self):
        # the wrong path is nothing but a halt: fetch stops the moment
        # it is seen, and only the flush can restart it — if the halt
        # latch survived the flush the run would hit the cycle limit
        program = assemble("""
.text
    li r1, 1
    li r2, 9
    div r3, r2, r1
    beq r3, r0, trap
    addi r4, r0, 7
    addi r5, r4, 1
    halt
trap:
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1
        assert sim.registers[4] == 7
        assert sim.registers[5] == 8

    def test_wrong_path_halt_never_retires(self):
        # the halt reaches the ROB well before the slow branch resolves;
        # retirement must stop at the unresolved branch, not commit it
        program = assemble("""
.text
    li r1, 3
    div r2, r1, r1
    div r3, r2, r1
    beq r3, r0, trap
    addi r4, r3, 10
    halt
trap:
    halt
""")
        golden = run_program(program)
        sim = ooo_matches_golden(program)
        assert sim.result.retired_instructions == golden.instructions


class TestUnpipelinedModuleRelease:
    def test_squashed_div_releases_module(self):
        # wrong-path divides occupy the unpipelined divider when they
        # issue; the flush must free it or the correct-path divide
        # below would wait on a phantom busy module
        program = assemble("""
.text
    li r1, 8
    li r2, 2
    div r3, r1, r2
    beq r3, r0, trap
    div r4, r1, r2
    mult r5, r4, r2
    halt
trap:
    div r6, r2, r2
    div r7, r2, r2
    div r8, r2, r2
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1
        assert sim.result.squashed_ops > 0
        assert sim.registers[4] == 4
        assert sim.registers[5] == 8

    def test_back_to_back_flushes_with_unpipelined_ops(self):
        # two independent never-taken branches, each with wrong-path
        # divides: the module bookkeeping must survive repeated flushes
        program = assemble("""
.text
    li r1, 6
    li r2, 3
    div r3, r1, r2
    beq r3, r0, trap1
    div r4, r1, r3
    beq r4, r0, trap2
    mult r5, r4, r3
    halt
trap1:
    div r6, r2, r2
    halt
trap2:
    div r7, r2, r2
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 2
        assert sim.registers[5] == 6


class TestRenameRebuild:
    def test_flush_restores_committed_mapping(self):
        # the wrong path renames r5 twice; after the flush the correct
        # path must read the committed value, not a squashed producer
        program = assemble("""
.text
    li r5, 11
    li r1, 3
    div r2, r1, r1
    beq r2, r0, trap
    addi r7, r5, 1
    halt
trap:
    addi r5, r0, 99
    addi r5, r5, 99
    addi r6, r5, 0
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1
        assert sim.registers[7] == 12
        assert sim.registers[6] == 0  # wrong-path write never committed

    def test_flush_keeps_inflight_older_producer(self):
        # an *older* in-flight producer (the slow div writing r2) must
        # stay in the rebuilt rename table so the correct-path consumer
        # still reads it through the ROB after the flush
        program = assemble("""
.text
    li r1, 5
    div r2, r1, r1
    beq r2, r0, trap
    addi r3, r2, 100
    halt
trap:
    addi r2, r0, 77
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1
        assert sim.registers[3] == 101
