"""L1 data cache tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import CacheConfig, DataCache
from repro.cpu.config import MachineConfig
from repro.cpu.golden import run_program
from repro.cpu.simulator import Simulator, simulate
from repro.isa.assembler import assemble
from repro.workloads import workload


def small_cache(**overrides):
    defaults = dict(size_bytes=256, line_bytes=32, associativity=2,
                    miss_penalty=10)
    defaults.update(overrides)
    return CacheConfig(**defaults)


class TestCacheConfig:
    def test_default_geometry(self):
        config = CacheConfig()
        assert config.num_sets == 16 * 1024 // (32 * 4)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=33)
        with pytest.raises(ValueError):
            CacheConfig(associativity=3)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=32, line_bytes=32, associativity=4)
        with pytest.raises(ValueError):
            CacheConfig(miss_penalty=-1)


class TestDataCache:
    def test_cold_miss_then_hit(self):
        cache = DataCache(small_cache())
        assert cache.access(0x1000) is False
        assert cache.access(0x1004) is True  # same line
        assert cache.access(0x1020) is False  # next line
        assert cache.hits == 1 and cache.misses == 2

    def test_lru_eviction(self):
        # 2-way, 4 sets of 32B lines: three lines mapping to one set
        cache = DataCache(small_cache())
        set_stride = 4 * 32  # lines A, B, C all land in set 0
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)      # A is now most recently used
        cache.access(c)      # evicts B (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_load_latency(self):
        cache = DataCache(small_cache(miss_penalty=10))
        assert cache.load_latency(0x40, base_latency=2) == 12
        assert cache.load_latency(0x40, base_latency=2) == 2

    def test_hit_rate(self):
        cache = DataCache(small_cache())
        assert cache.hit_rate == 1.0
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == 0.5

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_sets_never_exceed_associativity(self, addresses):
        cache = DataCache(small_cache())
        for address in addresses:
            cache.access(address)
        for ways in cache._sets:
            assert len(ways) <= cache.config.associativity

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1 << 20))
    def test_repeat_access_always_hits(self, address):
        cache = DataCache(small_cache())
        cache.access(address)
        assert cache.access(address) is True


class TestSimulatorIntegration:
    def test_cache_slows_cold_loads(self):
        program = workload("li").build(1)
        warm = simulate(program, MachineConfig(cache=None))
        cold = simulate(program, MachineConfig(cache=CacheConfig(
            size_bytes=128, line_bytes=32, associativity=1,
            miss_penalty=25)))
        assert cold.cycles > warm.cycles
        assert cold.cache_misses > 0

    def test_architectural_result_independent_of_cache(self):
        load = workload("compress")
        program = load.build(1)
        golden = run_program(program)
        for config in (MachineConfig(cache=None),
                       MachineConfig(cache=small_cache())):
            sim = Simulator(program, config)
            sim.run()
            assert sim.registers == golden.registers

    def test_small_footprint_kernel_mostly_hits(self):
        result = simulate(workload("swim").build(1))
        assert result.cache_hits > 10 * result.cache_misses

    def test_disabled_cache_reports_zero(self):
        program = assemble(".data\nx: .word 1\n.text\nla r1, x\n"
                           "lw r2, 0(r1)\nhalt")
        result = simulate(program, MachineConfig(cache=None))
        assert result.cache_hits == 0 and result.cache_misses == 0
