"""Trace persistence tests."""

import gzip
import json

import pytest

from repro.cpu.simulator import simulate
from repro.cpu.trace import TraceCollector
from repro.cpu.tracefile import (TraceWriter, load_trace, read_trace_header,
                                 replay, save_trace)
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.isa.instructions import FUClass


class TestRoundTrip:
    def test_save_and_load_exact(self, sum_program, tmp_path):
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        path = tmp_path / "trace.jsonl.gz"
        count = save_trace(path, collector.groups, name="sum")
        assert count == len(collector.groups)

        loaded = list(load_trace(path))
        assert len(loaded) == len(collector.groups)
        for original, restored in zip(collector.groups, loaded):
            assert restored.cycle == original.cycle
            assert restored.fu_class is original.fu_class
            assert restored.ops == original.ops

    def test_live_capture_matches_collector(self, sum_program, tmp_path):
        path = tmp_path / "live.jsonl.gz"
        collector = TraceCollector()
        with TraceWriter(path) as writer:
            simulate(sum_program, listeners=[writer, collector])
        assert writer.groups_written == len(collector.groups)
        # live capture records flags as-issued; the collector's stored
        # groups get retroactive wrong-path marks — compare modulo that
        loaded = list(load_trace(path))
        for disk, kept in zip(loaded, collector.groups):
            assert disk.cycle == kept.cycle
            assert disk.fu_class is kept.fu_class
            for a, b in zip(disk.ops, kept.ops):
                assert (a.op, a.op1, a.op2, a.has_two, a.static_index) \
                    == (b.op, b.op1, b.op2, b.has_two, b.static_index)

    def test_post_run_save_preserves_wrong_path_flags(self, tmp_path):
        from repro.workloads import workload
        collector = TraceCollector()
        simulate(workload("go").build(1), listeners=[collector])
        flagged = sum(1 for g in collector.groups
                      for op in g.ops if op.speculative)
        assert flagged > 0
        path = tmp_path / "final.jsonl.gz"
        save_trace(path, collector.groups)
        reloaded = sum(1 for g in load_trace(path)
                       for op in g.ops if op.speculative)
        assert reloaded == flagged

    def test_fu_class_filter(self, sum_program, tmp_path):
        path = tmp_path / "lsu.jsonl.gz"
        with TraceWriter(path, fu_classes=[FUClass.LSU]) as writer:
            simulate(sum_program, listeners=[writer])
        groups = list(load_trace(path))
        assert groups
        assert all(g.fu_class is FUClass.LSU for g in groups)
        assert read_trace_header(path)["fu_classes"] == ["lsu"]

    def test_header_metadata(self, sum_program, tmp_path):
        path = tmp_path / "meta.jsonl.gz"
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        save_trace(path, collector.groups, name="sum-loop")
        header = read_trace_header(path)
        assert header["name"] == "sum-loop"
        assert header["version"] == 1


class TestReplay:
    def test_replay_equals_live_evaluation(self, sum_program, tmp_path):
        path = tmp_path / "replay.jsonl.gz"
        live = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        with TraceWriter(path) as writer:
            simulate(sum_program, listeners=[writer, live])

        replayed = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        count = replay(path, [replayed])
        assert count == writer.groups_written
        assert replayed.totals().switched_bits \
            == live.totals().switched_bits
        assert replayed.totals().operations == live.totals().operations


class TestVersioning:
    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace_header(path)
        with pytest.raises(ValueError, match="version"):
            list(load_trace(path))
