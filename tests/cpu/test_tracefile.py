"""Trace persistence tests."""

import gzip
import json

import pytest

from repro.cpu.simulator import simulate
from repro.cpu.trace import TraceCollector
from repro.cpu.tracefile import (TraceFormatError, TraceWriter, load_trace,
                                 read_trace_header, replay, save_trace)
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.isa.instructions import FUClass


class TestRoundTrip:
    def test_save_and_load_exact(self, sum_program, tmp_path):
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        path = tmp_path / "trace.jsonl.gz"
        count = save_trace(path, collector.groups, name="sum")
        assert count == len(collector.groups)

        loaded = list(load_trace(path))
        assert len(loaded) == len(collector.groups)
        for original, restored in zip(collector.groups, loaded):
            assert restored.cycle == original.cycle
            assert restored.fu_class is original.fu_class
            assert restored.ops == original.ops

    def test_live_capture_matches_collector(self, sum_program, tmp_path):
        path = tmp_path / "live.jsonl.gz"
        collector = TraceCollector()
        with TraceWriter(path) as writer:
            simulate(sum_program, listeners=[writer, collector])
        assert writer.groups_written == len(collector.groups)
        # live capture records flags as-issued; the collector's stored
        # groups get retroactive wrong-path marks — compare modulo that
        loaded = list(load_trace(path))
        for disk, kept in zip(loaded, collector.groups):
            assert disk.cycle == kept.cycle
            assert disk.fu_class is kept.fu_class
            for a, b in zip(disk.ops, kept.ops):
                assert (a.op, a.op1, a.op2, a.has_two, a.static_index) \
                    == (b.op, b.op1, b.op2, b.has_two, b.static_index)

    def test_post_run_save_preserves_wrong_path_flags(self, tmp_path):
        from repro.workloads import workload
        collector = TraceCollector()
        simulate(workload("go").build(1), listeners=[collector])
        flagged = sum(1 for g in collector.groups
                      for op in g.ops if op.speculative)
        assert flagged > 0
        path = tmp_path / "final.jsonl.gz"
        save_trace(path, collector.groups)
        reloaded = sum(1 for g in load_trace(path)
                       for op in g.ops if op.speculative)
        assert reloaded == flagged

    def test_fu_class_filter(self, sum_program, tmp_path):
        path = tmp_path / "lsu.jsonl.gz"
        with TraceWriter(path, fu_classes=[FUClass.LSU]) as writer:
            simulate(sum_program, listeners=[writer])
        groups = list(load_trace(path))
        assert groups
        assert all(g.fu_class is FUClass.LSU for g in groups)
        assert read_trace_header(path)["fu_classes"] == ["lsu"]

    def test_header_metadata(self, sum_program, tmp_path):
        path = tmp_path / "meta.jsonl.gz"
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        save_trace(path, collector.groups, name="sum-loop")
        header = read_trace_header(path)
        assert header["name"] == "sum-loop"
        assert header["version"] == 2


class TestReplay:
    def test_replay_equals_live_evaluation(self, sum_program, tmp_path):
        path = tmp_path / "replay.jsonl.gz"
        live = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        with TraceWriter(path) as writer:
            simulate(sum_program, listeners=[writer, live])

        replayed = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        count = replay(path, [replayed])
        assert count == writer.groups_written
        assert replayed.totals().switched_bits \
            == live.totals().switched_bits
        assert replayed.totals().operations == live.totals().operations


class TestVersioning:
    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_trace_header(path)
        with pytest.raises(ValueError, match="version"):
            list(load_trace(path))

    def test_rejects_next_version_specifically(self, tmp_path):
        from repro.cpu.tracefile import (FORMAT_VERSION, SUPPORTED_VERSIONS,
                                         TraceFormatError)
        future = FORMAT_VERSION + 1
        assert future not in SUPPORTED_VERSIONS
        path = tmp_path / "future.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": future}) + "\n")
        with pytest.raises(TraceFormatError, match=str(future)):
            read_trace_header(path)

    def _write_v1_trace(self, path, sum_program):
        """A byte-faithful version-1 trace: header without the v2
        config/source/result keys, identical group lines."""
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        from repro.cpu.tracefile import _encode_group
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 1, "name": "legacy",
                                     "fu_classes": None}) + "\n")
            for group in collector.groups:
                handle.write(_encode_group(group) + "\n")
        return collector.groups

    def test_v1_trace_still_replays(self, sum_program, tmp_path):
        path = tmp_path / "v1.jsonl.gz"
        groups = self._write_v1_trace(path, sum_program)
        header = read_trace_header(path)
        assert header["version"] == 1
        loaded = list(load_trace(path))
        assert len(loaded) == len(groups)
        live = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        for group in groups:
            live(group)
        replayed = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        replay(path, [replayed])
        assert replayed.totals() == live.totals()

    def test_v1_trace_as_replay_source(self, sum_program, tmp_path):
        from repro.streams import ReplaySource
        path = tmp_path / "v1.jsonl.gz"
        self._write_v1_trace(path, sum_program)
        source = ReplaySource(path)
        # pre-cache headers carry no fingerprint or run summary
        assert source.config_fingerprint is None
        assert source.result is None
        assert source.name == "legacy"
        assert len(list(source.groups())) > 0


class TestCorruption:
    """Hardening against the damage long campaigns actually hit: every
    failure mode raises TraceFormatError naming the file and line."""

    def write_good_trace(self, tmp_path):
        from repro.workloads import workload
        collector = TraceCollector()
        simulate(workload("go").build(1), listeners=[collector])
        path = tmp_path / "good.jsonl.gz"
        save_trace(path, collector.groups)
        return path

    def test_error_is_a_value_error(self):
        # callers that caught ValueError before the hardening still work
        assert issubclass(TraceFormatError, ValueError)

    def test_truncated_gzip_stream(self, tmp_path):
        path = self.write_good_trace(tmp_path)
        data = path.read_bytes()
        assert len(data) > 200
        path.write_bytes(data[:len(data) // 2])  # a killed writer
        with pytest.raises(TraceFormatError) as exc_info:
            list(load_trace(path))
        assert str(path) in str(exc_info.value)
        assert exc_info.value.path == str(path)

    def test_not_gzip_at_all(self, tmp_path):
        path = tmp_path / "plain.jsonl.gz"
        path.write_bytes(b"this is not a gzip container\n")
        with pytest.raises(TraceFormatError) as exc_info:
            read_trace_header(path)
        assert str(path) in str(exc_info.value)
        assert exc_info.value.line == 0  # not tied to a specific line
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl.gz"
        with gzip.open(path, "wt"):
            pass
        with pytest.raises(TraceFormatError, match="empty file"):
            read_trace_header(path)

    def test_header_not_json(self, tmp_path):
        path = tmp_path / "garbled.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("{{{ not json\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            read_trace_header(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "headerless.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write('[1, "ialu", []]\n')  # a group where the
            handle.write('[2, "ialu", []]\n')  # header should be
        with pytest.raises(TraceFormatError, match="missing header"):
            list(load_trace(path))

    def test_corrupt_json_line_reports_line_number(self, tmp_path):
        path = tmp_path / "corrupt.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 1, "name": "t",
                                     "fu_classes": None}) + "\n")
            handle.write('[1, "ialu", [["add", "5", "9", 1, 0, 0, 0, 0]]]\n')
            handle.write('[2, "ialu", [["add", "5"\n')  # torn mid-group
        with pytest.raises(TraceFormatError, match="line 3") as exc_info:
            list(load_trace(path))
        assert exc_info.value.line == 3

    def test_structurally_wrong_group(self, tmp_path):
        path = tmp_path / "shape.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 1}) + "\n")
            handle.write('{"cycle": 1}\n')  # valid JSON, wrong shape
        with pytest.raises(TraceFormatError, match="corrupt issue group"):
            list(load_trace(path))

    def test_groups_before_the_damage_are_yielded(self, tmp_path):
        path = tmp_path / "partial.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"version": 1}) + "\n")
            handle.write('[1, "ialu", [["add", "5", "9", 1, 0, 0, 0, 0]]]\n')
            handle.write("garbage\n")
        reader = load_trace(path)
        first = next(reader)
        assert first.cycle == 1 and len(first.ops) == 1
        with pytest.raises(TraceFormatError):
            next(reader)
