"""Out-of-order simulator tests, including golden-model equivalence on
randomly generated programs (the core correctness property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.config import MachineConfig
from repro.cpu.golden import run_program
from repro.cpu.simulator import CycleLimitExceeded, Simulator, simulate
from repro.cpu.trace import TraceCollector
from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass


def ooo_matches_golden(program, config=None):
    golden = run_program(program)
    sim = Simulator(program, config)
    sim.run()
    assert sim.registers == golden.registers, "register state diverged"
    # compare every byte either side ever touched
    addresses = (set(golden.memory.touched_addresses())
                 | set(sim.memory.touched_addresses()))
    for address in addresses:
        assert sim.memory.load_byte(address) \
            == golden.memory.load_byte(address), f"memory at 0x{address:x}"
    return sim


class TestBasicExecution:
    def test_sum_loop_matches_golden(self, sum_program):
        ooo_matches_golden(sum_program)

    def test_fp_kernel_matches_golden(self, fp_program):
        ooo_matches_golden(fp_program)

    def test_retires_all_instructions(self, sum_program):
        golden = run_program(sum_program)
        result = simulate(sum_program)
        assert result.retired_instructions == golden.instructions

    def test_ipc_exceeds_one_on_parallel_code(self):
        source = ".text\n" + "\n".join(
            f"addi r{i}, r0, {i}" for i in range(1, 25)) + "\nhalt"
        result = simulate(assemble(source))
        assert result.ipc > 1.5

    def test_dependent_chain_is_serial(self):
        source = ".text\nli r1, 1\n" + "\n".join(
            "add r1, r1, r1" for _ in range(20)) + "\nhalt"
        result = simulate(assemble(source))
        # a 20-deep dependence chain cannot finish in fewer cycles
        assert result.cycles >= 20

    def test_cycle_limit(self, sum_program):
        config = MachineConfig(max_cycles=3)
        with pytest.raises(CycleLimitExceeded):
            Simulator(sum_program, config).run()


class TestSpeculation:
    def test_mispredicted_branch_recovers(self):
        # the loop exit is mispredicted by a warm predictor; wrong-path
        # work must not corrupt architectural state
        program = assemble("""
.data
results: .space 8
.text
    li r1, 20
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    la r3, results
    sw r2, 0(r3)
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1

    def test_wrong_path_stores_never_commit(self):
        # if the not-taken path's store leaked, 'guard' would change
        program = assemble("""
.data
guard: .word 1234
.text
    li r1, 1
    li r2, 1
    beq r1, r2, safe
    la r3, guard
    sw r0, 0(r3)
safe:
    halt
""")
        sim = Simulator(program)
        sim.run()
        assert sim.memory.load_word(program.symbol_address("guard")) == 1234

    def test_wrong_path_halt_does_not_stop_simulation(self):
        # a predicted-taken exit fetches halt speculatively on the first
        # iteration; the machine must keep going after the flush
        program = assemble("""
.text
    li r1, 5
loop:
    addi r1, r1, -1
    beq r1, r0, done
    j loop
done:
    halt
""")
        golden = run_program(program)
        result = simulate(program)
        assert result.retired_instructions == golden.instructions

    def test_squashed_ops_counted(self):
        program = assemble("""
.text
    li r1, 50
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
""")
        result = simulate(program)
        assert result.squashed_ops > 0


class TestMemoryOrdering:
    def test_store_to_load_forwarding(self):
        program = assemble("""
.data
buf: .space 16
.text
    la r1, buf
    li r2, 42
    sw r2, 0(r1)
    lw r3, 0(r1)
    addi r3, r3, 1
    sw r3, 8(r1)
    lw r4, 8(r1)
    halt
""")
        sim = ooo_matches_golden(program)
        assert encoding.to_signed(sim.registers[4]) == 43

    def test_store_overwrite_forwards_youngest(self):
        program = assemble("""
.data
buf: .space 8
.text
    la r1, buf
    li r2, 1
    li r3, 2
    sw r2, 0(r1)
    sw r3, 0(r1)
    lw r4, 0(r1)
    halt
""")
        sim = ooo_matches_golden(program)
        assert encoding.to_signed(sim.registers[4]) == 2

    def test_mixed_width_memory(self):
        program = assemble("""
.data
words: .space 8
dbl: .space 8
.text
    la r1, words
    la r2, dbl
    li r3, 7
    sw r3, 0(r1)
    cvtif f1, r3
    sd f1, 0(r2)
    ld f2, 0(r2)
    lw r4, 0(r1)
    halt
""")
        ooo_matches_golden(program)


class TestStructuralHazards:
    def test_single_multiplier_serialises(self):
        # IMULT is unpipelined with latency 3: eight independent
        # multiplies need at least 8*3 cycles
        source = (".text\nli r1, 3\nli r2, 5\n"
                  + "\n".join(f"mult r{3 + i}, r1, r2" for i in range(8))
                  + "\nhalt")
        result = simulate(assemble(source))
        assert result.cycles >= 24

    def test_issue_width_bounded_by_modules(self, sum_program):
        collector = TraceCollector()
        config = MachineConfig()
        simulate(sum_program, config, listeners=[collector])
        for group in collector.groups:
            assert len(group.ops) <= config.modules(group.fu_class)

    def test_two_ialu_machine(self):
        config = MachineConfig(fu_counts={FUClass.IALU: 2, FUClass.FPAU: 2,
                                          FUClass.IMULT: 1,
                                          FUClass.FPMULT: 1, FUClass.LSU: 1})
        program = assemble(".text\n" + "\n".join(
            f"addi r{1 + (i % 8)}, r0, {i}" for i in range(16)) + "\nhalt")
        collector = TraceCollector([FUClass.IALU])
        simulate(program, config, listeners=[collector])
        assert all(len(g.ops) <= 2 for g in collector.groups)


# ---------------------------------------------------------------------------
# property: OoO execution is architecturally identical to in-order golden
# ---------------------------------------------------------------------------

_INT_OPS = ["add", "sub", "and", "or", "xor", "slt", "sgt", "seq", "sne"]
_FP_OPS = ["fadd", "fsub", "fmul", "fmin", "fmax"]


@st.composite
def straightline_programs(draw):
    """Random straight-line programs seeding registers then mixing
    integer, floating point, memory, and multiplier operations."""
    lines = [".data", "buf: .space 64", ".text"]
    for reg in range(1, 8):
        lines.append(f"li r{reg}, {draw(st.integers(-30000, 30000))}")
        lines.append(f"cvtif f{reg}, r{reg}")
    lines.append("la r14, buf")
    for _ in range(draw(st.integers(3, 25))):
        choice = draw(st.integers(0, 5))
        d = draw(st.integers(1, 7))
        a = draw(st.integers(1, 7))
        b = draw(st.integers(1, 7))
        if choice == 0:
            op = draw(st.sampled_from(_INT_OPS))
            lines.append(f"{op} r{d}, r{a}, r{b}")
        elif choice == 1:
            op = draw(st.sampled_from(_FP_OPS))
            lines.append(f"{op} f{d}, f{a}, f{b}")
        elif choice == 2:
            offset = draw(st.integers(0, 15)) * 4
            lines.append(f"sw r{a}, {offset}(r14)")
        elif choice == 3:
            offset = draw(st.integers(0, 15)) * 4
            lines.append(f"lw r{d}, {offset}(r14)")
        elif choice == 4:
            lines.append(f"mult r{d}, r{a}, r{b}")
        else:
            lines.append(f"addi r{d}, r{a}, {draw(st.integers(-100, 100))}")
    lines.append("halt")
    return "\n".join(lines)


@st.composite
def loopy_programs(draw):
    """Random programs with a countdown loop and a data-dependent skip."""
    trip = draw(st.integers(1, 12))
    body = draw(straightline_programs())
    body_lines = body.splitlines()
    text_at = body_lines.index(".text")
    data = body_lines[:text_at]
    inner = body_lines[text_at + 1:-1]  # drop .text and halt
    lines = data + [".text", f"li r13, {trip}", "loop:"] + inner + [
        f"slti r12, r13, {draw(st.integers(2, 6))}",
        "beq r12, r0, skip",
        f"addi r11, r11, {draw(st.integers(-5, 5))}",
        "skip:",
        "addi r13, r13, -1",
        "bne r13, r0, loop",
        "halt",
    ]
    return "\n".join(lines)


class TestGoldenEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(straightline_programs())
    def test_straightline(self, source):
        ooo_matches_golden(assemble(source))

    @settings(max_examples=25, deadline=None)
    @given(loopy_programs())
    def test_loops_with_speculation(self, source):
        ooo_matches_golden(assemble(source))

    @settings(max_examples=10, deadline=None)
    @given(loopy_programs())
    def test_narrow_machine(self, source):
        config = MachineConfig(fetch_width=2, dispatch_width=2,
                               retire_width=2, rob_entries=8,
                               rs_entries_per_class=2)
        ooo_matches_golden(assemble(source), config)

    @settings(max_examples=10, deadline=None)
    @given(loopy_programs())
    def test_gshare_machine(self, source):
        config = MachineConfig(branch_predictor="gshare")
        ooo_matches_golden(assemble(source), config)

    @settings(max_examples=10, deadline=None)
    @given(loopy_programs())
    def test_determinism(self, source):
        program = assemble(source)
        first = simulate(program)
        second = simulate(program)
        assert first.cycles == second.cycles
        assert first.retired_instructions == second.retired_instructions
