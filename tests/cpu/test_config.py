"""Machine configuration validation tests."""

import pytest

from repro.cpu.config import (DEFAULT_FU_COUNTS, UNPIPELINED_CLASSES,
                              MachineConfig, default_config)
from repro.isa.instructions import FUClass


class TestMachineConfig:
    def test_paper_default_configuration(self):
        config = default_config()
        # the paper: default SimpleScalar, 4 IALUs, 4 FPAUs, 1 integer
        # multiplier, 1 FP multiplier
        assert config.modules(FUClass.IALU) == 4
        assert config.modules(FUClass.FPAU) == 4
        assert config.modules(FUClass.IMULT) == 1
        assert config.modules(FUClass.FPMULT) == 1
        assert config.fetch_width == 4

    def test_multipliers_unpipelined(self):
        assert FUClass.IMULT in UNPIPELINED_CLASSES
        assert FUClass.FPMULT in UNPIPELINED_CLASSES
        assert FUClass.IALU not in UNPIPELINED_CLASSES

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            MachineConfig(fetch_width=0)

    def test_rejects_missing_fu(self):
        counts = dict(DEFAULT_FU_COUNTS)
        counts[FUClass.LSU] = 0
        with pytest.raises(ValueError):
            MachineConfig(fu_counts=counts)

    def test_rejects_tiny_rob(self):
        with pytest.raises(ValueError):
            MachineConfig(rob_entries=2, dispatch_width=4)

    def test_rejects_non_power_of_two_predictor(self):
        with pytest.raises(ValueError):
            MachineConfig(branch_predictor_entries=1000)

    def test_custom_counts_independent_of_default(self):
        config = MachineConfig()
        config.fu_counts[FUClass.IALU] = 2
        assert DEFAULT_FU_COUNTS[FUClass.IALU] == 4
