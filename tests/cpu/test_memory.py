"""Memory subsystem tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.memory import Memory, MemoryError_
from repro.isa.program import DataImage


class TestMemory:
    def test_reads_default_zero(self):
        memory = Memory()
        assert memory.load_word(0x1000) == 0
        assert memory.load_double(0x2000) == 0

    def test_initialised_from_image(self):
        image = DataImage()
        image.store_word(0x100, 0xCAFEBABE)
        memory = Memory(image)
        assert memory.load_word(0x100) == 0xCAFEBABE

    def test_image_not_aliased(self):
        image = DataImage()
        image.store_word(0x100, 1)
        memory = Memory(image)
        memory.store_word(0x100, 2)
        assert image.load_word(0x100) == 1

    def test_unaligned_raises(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.load_word(2)
        with pytest.raises(MemoryError_):
            memory.store_double(4, 0)

    def test_width_dispatch(self):
        memory = Memory()
        memory.store(0, 0x11223344, double=False)
        memory.store(8, 0x1122334455667788, double=True)
        assert memory.load(0, double=False) == 0x11223344
        assert memory.load(8, double=True) == 0x1122334455667788

    def test_adjacent_words_do_not_overlap(self):
        memory = Memory()
        memory.store_word(0, 0xFFFFFFFF)
        memory.store_word(4, 0)
        assert memory.load_word(0) == 0xFFFFFFFF

    def test_touched_bytes(self):
        memory = Memory()
        memory.store_word(0, 1)
        assert memory.touched_bytes() == 4

    @given(st.integers(min_value=0, max_value=2 ** 20 // 4 - 1),
           st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_word_roundtrip(self, index, value):
        memory = Memory()
        memory.store_word(index * 4, value)
        assert memory.load_word(index * 4) == value

    @given(st.integers(min_value=0, max_value=2 ** 20 // 8 - 1),
           st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_double_roundtrip(self, index, value):
        memory = Memory()
        memory.store_double(index * 8, value)
        assert memory.load_double(index * 8) == value
