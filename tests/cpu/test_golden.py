"""Golden in-order interpreter tests."""

import pytest

from repro.cpu.golden import ExecutionLimitExceeded, run_program
from repro.isa import encoding
from repro.isa.assembler import assemble


class TestGoldenModel:
    def test_sum_loop(self, sum_program):
        result = run_program(sum_program)
        assert result.halted
        assert result.int_reg(4) == 5 - 3 + 8 + 1 - 9 + 2 + 7 - 4
        base = sum_program.symbol_address("results")
        assert result.memory.load_word(base) \
            == encoding.wrap_int(result.int_reg(4))

    def test_fp_kernel(self, fp_program):
        result = run_program(fp_program)
        expected = 0.0
        for x in (1.5, -2.25, 0.5, 3.0):
            expected = expected + x * 2.0
        assert result.fp_reg(10) == expected

    def test_r0_stays_zero(self):
        program = assemble(".text\naddi r0, r0, 5\nadd r1, r0, r0\nhalt")
        result = run_program(program)
        assert result.registers[0] == 0
        assert result.int_reg(1) == 0

    def test_instruction_limit(self, sum_program):
        with pytest.raises(ExecutionLimitExceeded):
            run_program(sum_program, max_instructions=3)

    def test_running_off_code_end(self):
        program = assemble(".text\nadd r1, r0, r0")
        result = run_program(program)
        assert not result.halted
        assert result.instructions == 1

    def test_branch_recording(self):
        program = assemble("""
.text
    li r1, 3
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
""")
        result = run_program(program, record_branches=True)
        [(index, outcomes)] = list(result.branch_outcomes.items())
        assert outcomes == [True, True, False]

    def test_observer_sees_operand_values(self, sum_program):
        seen = []

        def observe(instr, op1, op2, has_two):
            if instr.op.name == "add":
                seen.append((op1, op2))

        run_program(sum_program, observer=observe)
        assert len(seen) == 8  # one accumulate per element
        assert seen[0] == (0, 5)

    def test_store_then_load(self):
        program = assemble("""
.data
buf: .space 8
.text
    la r1, buf
    li r2, -77
    sw r2, 4(r1)
    lw r3, 4(r1)
    halt
""")
        result = run_program(program)
        assert result.int_reg(3) == -77

    def test_jump(self):
        program = assemble("""
.text
    j over
    addi r1, r0, 99
over:
    halt
""")
        result = run_program(program)
        assert result.int_reg(1) == 0
