"""Targeted stress tests for the out-of-order engine's corner cases."""

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.golden import run_program
from repro.cpu.simulator import Simulator, simulate
from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass, all_opcodes


def ooo_matches_golden(program, config=None):
    golden = run_program(program)
    sim = Simulator(program, config)
    sim.run()
    assert sim.registers == golden.registers
    addresses = (set(golden.memory.touched_addresses())
                 | set(sim.memory.touched_addresses()))
    for address in addresses:
        assert sim.memory.load_byte(address) \
            == golden.memory.load_byte(address)
    return sim


class TestWrongPathMultiplier:
    def test_squashed_divide_frees_the_unit(self):
        """A wrong-path divide occupies the single unpipelined IMULT;
        the flush must release it or later multiplies deadlock."""
        program = assemble("""
.text
    li r1, 6
    li r2, 7
    li r3, 0
loop:
    addi r1, r1, -1
    beq r1, r0, done       # exit predicted not-taken at first, then
    div r4, r2, r1         # trains taken; wrong-path div each exit miss
    mult r3, r2, r2
    j loop
done:
    mult r5, r2, r2
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.result.branch_mispredictions >= 1
        assert encoding.to_signed(sim.registers[5]) == 49


class TestTinyMachines:
    def test_rob_of_four(self):
        config = MachineConfig(rob_entries=4, dispatch_width=2,
                               fetch_width=2, retire_width=2)
        program = assemble("""
.data
buf: .space 32
.text
    la r1, buf
    li r2, 10
loop:
    mult r3, r2, r2
    sw r3, 0(r1)
    lw r4, 0(r1)
    add r5, r5, r4
    addi r2, r2, -1
    bne r2, r0, loop
    halt
""")
        sim = ooo_matches_golden(program, config)
        expected = sum(i * i for i in range(1, 11))
        assert encoding.to_signed(sim.registers[5]) == expected

    def test_single_rs_entry_per_class(self):
        config = MachineConfig(rs_entries_per_class=1)
        program = assemble("""
.text
    li r1, 8
    li r2, 3
loop:
    mult r3, r2, r2
    add r4, r4, r3
    addi r1, r1, -1
    bne r1, r0, loop
    halt
""")
        sim = ooo_matches_golden(program, config)
        assert encoding.to_signed(sim.registers[4]) == 8 * 9

    def test_one_wide_machine(self):
        config = MachineConfig(fetch_width=1, dispatch_width=1,
                               retire_width=1, rob_entries=4)
        program = assemble("""
.text
    li r1, 5
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
""")
        sim = ooo_matches_golden(program, config)
        result = sim.result
        # a 1-wide machine can never exceed IPC 1
        assert result.ipc <= 1.0


class TestWrongPathHazards:
    def test_wrong_path_fp_divide_by_zero(self):
        program = assemble("""
.data
vals: .double 4.0, 0.0
.text
    la r1, vals
    ld f1, 0(r1)
    ld f2, 8(r1)
    li r2, 1
    li r3, 1
    beq r2, r3, safe
    fdiv f3, f1, f2        # wrong path: divide by zero
    cvtfi r4, f3
safe:
    halt
""")
        ooo_matches_golden(program)

    def test_deep_wrong_path_store_chain(self):
        # mispredicted loop exits repeatedly fetch the store sequence
        program = assemble("""
.data
guard: .word 111
buf: .space 8
.text
    li r1, 30
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    la r2, guard
    lw r3, 0(r2)
    la r4, buf
    sw r3, 0(r4)
    halt
""")
        sim = ooo_matches_golden(program)
        assert sim.memory.load_word(
            sim.program.symbol_address("buf")) == 111


class TestOpcodeCoverage:
    def test_every_computational_opcode_executes(self):
        """One program touching every opcode, checked against golden."""
        source = """
.data
word_data: .word 13, -7
dbl_data: .double 2.25, -8.0
scratch: .space 32
.text
    la   r1, word_data
    lw   r2, 0(r1)
    lw   r3, 4(r1)
    la   r4, dbl_data
    ld   f2, 0(r4)
    ld   f3, 8(r4)
    la   r5, scratch
    add  r6, r2, r3
    sub  r7, r2, r3
    and  r8, r2, r3
    or   r9, r2, r3
    xor  r10, r2, r3
    nor  r11, r2, r3
    sll  r12, r2, r8
    srl  r13, r3, r8
    sra  r14, r3, r8
    slt  r15, r2, r3
    sgt  r16, r2, r3
    sle  r17, r2, r3
    sge  r18, r2, r3
    seq  r19, r2, r3
    sne  r20, r2, r3
    addi r21, r2, -5
    subi r22, r2, 3
    andi r23, r2, 0xFF
    ori  r24, r2, 0x10
    xori r25, r2, 0x3
    slli r26, r2, 2
    srli r27, r3, 2
    srai r28, r3, 2
    slti r29, r2, 50
    sgti r30, r2, 50
    seqi r31, r2, 13
    lui  r6, 0x1234
    snei r6, r2, 13
    mult r7, r2, r3
    div  r8, r3, r2
    rem  r9, r3, r2
    fadd f4, f2, f3
    fsub f5, f2, f3
    fmul f6, f2, f3
    fdiv f7, f2, f3
    fsqrt f8, f2
    fabs f9, f3
    fneg f10, f2
    fmov f11, f2
    fmin f12, f2, f3
    fmax f13, f2, f3
    flt  r10, f2, f3
    fgt  r11, f2, f3
    fle  r12, f2, f3
    fge  r13, f2, f3
    feq  r14, f2, f3
    cvtif f14, r2
    cvtfi r15, f3
    cvtsd f15, f2
    sw   r2, 0(r5)
    sd   f4, 8(r5)
    lw   r16, 0(r5)
    ld   f16, 8(r5)
    beq  r0, r0, taken
    nop
taken:
    bne  r2, r0, t2
    nop
t2:
    blt  r3, r2, t3
    nop
t3:
    bgt  r2, r3, t4
    nop
t4:
    ble  r3, r2, t5
    nop
t5:
    bge  r2, r3, t6
    nop
t6:
    j    end
    nop
end:
    halt
"""
        program = assemble(source)
        used = {instr.op.name for instr in program.instructions}
        missing = {info.name for info in all_opcodes()} - used
        assert not missing, f"opcodes not covered: {missing}"
        ooo_matches_golden(program)
