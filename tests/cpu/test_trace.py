"""Trace layer tests: micro-ops, issue groups, collectors."""

from repro.cpu.simulator import simulate
from repro.cpu.trace import (IssueGroup, ListenerFanout, MicroOp,
                             SimulationResult, TraceCollector)
from repro.isa.instructions import FUClass, opcode


class TestMicroOp:
    def test_swap_exchanges_operands(self):
        op = MicroOp(opcode("add"), 1, 2, static_index=7)
        swapped = op.swap()
        assert (swapped.op1, swapped.op2) == (2, 1)
        assert swapped.swapped and not op.swapped
        assert swapped.static_index == 7

    def test_double_swap_round_trips(self):
        op = MicroOp(opcode("add"), 1, 2)
        assert op.swap().swap() == op

    def test_hardware_swappable(self):
        assert MicroOp(opcode("add"), 1, 2).hardware_swappable
        assert not MicroOp(opcode("sub"), 1, 2).hardware_swappable
        assert not MicroOp(opcode("add"), 1, 0, has_two=False).hardware_swappable
        # immediate forms never swap, the immediate is port 2 by encoding
        assert not MicroOp(opcode("addi"), 1, 2).hardware_swappable


class TestCollectors:
    def test_trace_collector_filters_classes(self, sum_program):
        everything = TraceCollector()
        only_lsu = TraceCollector([FUClass.LSU])
        simulate(sum_program, listeners=[everything, only_lsu])
        assert everything.op_count() > only_lsu.op_count() > 0
        assert all(g.fu_class is FUClass.LSU for g in only_lsu.groups)
        assert only_lsu.op_count() == everything.op_count(FUClass.LSU)

    def test_groups_are_cycle_ordered(self, sum_program):
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        cycles = [g.cycle for g in collector.groups]
        assert cycles == sorted(cycles)

    def test_groups_for(self, sum_program):
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        ialu = list(collector.groups_for(FUClass.IALU))
        assert ialu and all(g.fu_class is FUClass.IALU for g in ialu)

    def test_fanout_delivers_to_all(self):
        received = [[], []]
        fanout = ListenerFanout([received[0].append, received[1].append])
        group = IssueGroup(0, FUClass.IALU, [MicroOp(opcode("add"), 1, 2)])
        fanout(group)
        assert received[0] == [group] and received[1] == [group]


class TestSimulationResult:
    def test_ipc(self):
        result = SimulationResult(name="x", cycles=10,
                                  retired_instructions=25)
        assert result.ipc == 2.5
        assert SimulationResult(name="y").ipc == 0.0

    def test_issue_counts_cover_all_executed_ops(self, sum_program):
        collector = TraceCollector()
        result = simulate(sum_program, listeners=[collector])
        assert sum(result.issue_counts.values()) == result.executed_ops
        assert collector.op_count() == result.executed_ops
