"""Bimodal branch predictor tests."""

import pytest

from repro.cpu.branch import BimodalPredictor


class TestBimodalPredictor:
    def test_initial_prediction_weakly_taken(self):
        assert BimodalPredictor(16).predict(0) is True

    def test_saturating_training(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.update(0, taken=False, predicted=True)
        assert predictor.predict(0) is False
        # one taken outcome is not enough to flip a saturated counter
        predictor.update(0, taken=True, predicted=False)
        assert predictor.predict(0) is False
        predictor.update(0, taken=True, predicted=False)
        assert predictor.predict(0) is True

    def test_loop_branch_learned(self):
        predictor = BimodalPredictor(64)
        mispredicts = 0
        for _ in range(10):  # 10 loop visits: taken 7 times, exit once
            for _ in range(7):
                predicted = predictor.predict(5)
                if not predicted:
                    mispredicts += 1
                predictor.update(5, taken=True, predicted=predicted)
            predicted = predictor.predict(5)
            if predicted:
                mispredicts += 1
            predictor.update(5, taken=False, predicted=predicted)
        # a 2-bit counter should mispredict roughly once per loop exit
        assert mispredicts <= 21

    def test_aliasing_by_index_mask(self):
        predictor = BimodalPredictor(16)
        for _ in range(4):
            predictor.update(3, taken=False, predicted=True)
        # address 19 aliases to the same counter (19 & 15 == 3)
        assert predictor.predict(19) is False

    def test_accuracy_accounting(self):
        predictor = BimodalPredictor(16)
        predicted = predictor.predict(0)
        predictor.update(0, taken=predicted, predicted=predicted)
        predicted = predictor.predict(0)
        predictor.update(0, taken=not predicted, predicted=predicted)
        assert predictor.lookups == 2
        assert predictor.mispredictions == 1
        assert predictor.accuracy == 0.5

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)

    def test_accuracy_with_no_lookups(self):
        assert BimodalPredictor(16).accuracy == 1.0


class TestGShare:
    def test_factory(self):
        from repro.cpu.branch import (BimodalPredictor, GSharePredictor,
                                      make_predictor)
        assert isinstance(make_predictor("bimodal", 16), BimodalPredictor)
        assert isinstance(make_predictor("gshare", 16), GSharePredictor)
        with pytest.raises(ValueError):
            make_predictor("neural", 16)

    def test_geometry_validation(self):
        from repro.cpu.branch import GSharePredictor
        with pytest.raises(ValueError):
            GSharePredictor(entries=100)
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)

    def test_learns_alternating_pattern(self):
        """A strictly alternating branch defeats bimodal but is learned
        by gshare once the history register captures the period."""
        from repro.cpu.branch import BimodalPredictor, GSharePredictor
        gshare = GSharePredictor(256, history_bits=4)
        bimodal = BimodalPredictor(256)
        outcomes = [bool(i % 2) for i in range(400)]
        for predictor in (gshare, bimodal):
            for taken in outcomes:
                predicted = predictor.predict(7)
                predictor.update(7, taken, predicted)
        assert gshare.mispredictions < bimodal.mispredictions

    def test_history_wraps(self):
        from repro.cpu.branch import GSharePredictor
        predictor = GSharePredictor(16, history_bits=2)
        for _ in range(10):
            predicted = predictor.predict(0)
            predictor.update(0, True, predicted)
        assert predictor._history <= 0b11

    def test_simulator_integration(self):
        from repro.cpu import MachineConfig, Simulator
        from repro.cpu.golden import run_program
        from repro.workloads import workload
        program = workload("cc1").build(1)
        golden = run_program(program)
        sim = Simulator(program, MachineConfig(branch_predictor="gshare"))
        sim.run()
        assert sim.registers == golden.registers
