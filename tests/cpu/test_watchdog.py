"""Retirement-progress watchdog and abort diagnostic snapshots."""

import json

import pytest

from repro.cpu.config import MachineConfig
from repro.cpu.simulator import (CycleLimitExceeded, DeadlockDetected,
                                 Simulator)
from repro.workloads import workload


def run_ijpeg(**config_overrides):
    sim = Simulator(workload("ijpeg").build(1),
                    MachineConfig(**config_overrides))
    return sim.run()


class TestWatchdog:
    def test_tight_watchdog_trips(self):
        """Long-latency dependence chains retire slower than a tiny
        threshold — the watchdog aborts instead of spinning to
        max_cycles."""
        with pytest.raises(DeadlockDetected) as exc_info:
            run_ijpeg(watchdog_cycles=6)
        error = exc_info.value
        assert "watchdog_cycles=6" in str(error)
        assert "ijpeg" in str(error)
        assert error.snapshot is not None
        assert error.snapshot.cycles_since_retire >= 6

    def test_default_config_never_trips(self, sum_program):
        """The 100k default dwarfs the worst real retire gap (max FU
        latency 18 + a cache miss), so normal runs are unaffected."""
        result = Simulator(sum_program, MachineConfig()).run()
        assert result.retired_instructions > 0
        result = run_ijpeg()  # the same workload that trips at 6
        assert result.retired_instructions > 0

    def test_zero_disables_the_watchdog(self):
        # with the watchdog off the run spins on to the cycle cap instead
        with pytest.raises(CycleLimitExceeded):
            run_ijpeg(watchdog_cycles=0, max_cycles=60)

    def test_negative_watchdog_rejected(self):
        with pytest.raises(ValueError, match="watchdog_cycles"):
            MachineConfig(watchdog_cycles=-1)


class TestDiagnosticSnapshot:
    def trip(self):
        with pytest.raises(DeadlockDetected) as exc_info:
            run_ijpeg(watchdog_cycles=6)
        return exc_info.value.snapshot

    def test_snapshot_describes_the_stall(self):
        snapshot = self.trip()
        assert snapshot.rob_occupancy > 0
        assert snapshot.rob_limit == MachineConfig().rob_entries
        assert snapshot.oldest_seq is not None
        assert snapshot.oldest_op  # the op name at the ROB head
        assert snapshot.oldest_state in ("dispatched", "issued", "done")
        assert set(snapshot.rs_occupancy) \
            == {"ialu", "imult", "fpau", "fpmult", "lsu"}

    def test_snapshot_is_json_able(self):
        payload = json.dumps(self.trip().to_dict())
        restored = json.loads(payload)
        assert restored["rob_occupancy"] > 0
        assert restored["cycles_since_retire"] >= 6

    def test_format_is_human_readable(self):
        text = self.trip().format()
        assert "ROB" in text
        assert "oldest" in text

    def test_cycle_limit_carries_snapshot_too(self):
        with pytest.raises(CycleLimitExceeded) as exc_info:
            run_ijpeg(max_cycles=100)
        snapshot = exc_info.value.snapshot
        assert snapshot is not None
        assert snapshot.cycle == 100
        assert snapshot.retired_instructions >= 0
