"""Campaign runner: grid expansion, crash isolation, resume semantics.

The failure-path tests drive the real process pool through the chaos
hooks (``REPRO_CAMPAIGN_TEST_*``) documented in ``docs/runner.md``:
workers that crash, hang, or get killed mid-campaign must each leave a
resumable manifest and never take the campaign down with them.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.report import render_campaign
from repro.runner.campaign import (CRASH_ENV, DELAY_ENV, HANG_ENV,
                                   CampaignError, CampaignRunner,
                                   CampaignSpec, execute_task, run_campaign)
from repro.runner.manifest import CampaignManifest

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def small_spec(**overrides):
    base = dict(workloads=("compress", "li"),
                policies=("original", "lut-4"))
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpec:
    def test_grid_expansion_is_deterministic(self):
        spec = small_spec(fault_rates=(0.0, 0.1),
                          configs={"default": {}, "narrow": {"rob_entries": 8}})
        ids = [t.task_id for t in spec.tasks()]
        assert ids == ["compress@s1/default/r0", "compress@s1/default/r0.1",
                       "compress@s1/narrow/r0", "compress@s1/narrow/r0.1",
                       "li@s1/default/r0", "li@s1/default/r0.1",
                       "li@s1/narrow/r0", "li@s1/narrow/r0.1"]
        assert ids == [t.task_id for t in spec.tasks()]

    def test_unknown_config_field_rejected(self):
        with pytest.raises(CampaignError, match="unknown MachineConfig"):
            small_spec(configs={"bad": {"rob_size": 16}})

    def test_empty_grid_rejected(self):
        with pytest.raises(CampaignError, match="workload"):
            CampaignSpec(workloads=())
        with pytest.raises(CampaignError, match="policy"):
            CampaignSpec(workloads=("li",), policies=())

    def test_unknown_policy_rejected_at_build_time(self):
        with pytest.raises(CampaignError, match="registered kinds"):
            small_spec(policies=("original", "lut4"))

    def test_malformed_policy_rejected_at_build_time(self):
        with pytest.raises(CampaignError, match="lut-<bits>"):
            small_spec(policies=("lut-abc",))

    def test_registry_kinds_accepted(self):
        spec = small_spec(policies=("original", "bdd-4", "lut-4"))
        assert spec.policies == ("original", "bdd-4", "lut-4")

    def test_fingerprint_tracks_the_grid(self):
        spec = small_spec()
        assert spec.fingerprint() == small_spec().fingerprint()
        assert spec.fingerprint() != small_spec(seed=1).fingerprint()
        assert spec.fingerprint() \
            != small_spec(fault_rates=(0.0, 0.1)).fingerprint()

    def test_dict_round_trip_preserves_fingerprint(self):
        spec = small_spec(fault_rates=(0.0, 0.05),
                          configs={"deep": {"rob_entries": 64}})
        clone = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.fingerprint() == spec.fingerprint()

    def test_invalid_executor(self, tmp_path):
        with pytest.raises(CampaignError, match="executor"):
            CampaignRunner(small_spec(), tmp_path, executor="thread")


class TestExecuteTask:
    def test_result_shape_and_saving(self):
        task = small_spec().tasks()[0]
        result = execute_task(task)
        assert result["workload"] == "compress"
        assert result["cycles"] > 0 and result["retired"] > 0
        assert result["fault_flips"] == 0
        assert set(result["policies"]) == {"original", "lut-4"}
        assert result["policies"]["original"]["saving"] == 0.0
        assert 0.0 < result["policies"]["lut-4"]["saving"] < 1.0

    def test_faulted_task_reports_flips(self):
        spec = small_spec(workloads=("li",), fault_rates=(0.2,))
        result = execute_task(spec.tasks()[0])
        assert result["fault_flips"] > 0

    def test_cache_off_without_directory(self):
        result = execute_task(small_spec().tasks()[0])
        assert result["trace_cache"] == "off"


class TestCampaignTraceCache:
    def test_cells_sharing_a_stream_hit_the_cache(self, tmp_path):
        # two fault rates over one (workload, config): policy-view
        # faults never alter the published stream, so the second task
        # replays the first task's recording
        spec = small_spec(workloads=("li",), fault_rates=(0.0, 0.2))
        run_campaign(spec, tmp_path, executor="inline")
        manifest = CampaignManifest.load(tmp_path / "manifest.jsonl")
        states = {entry["id"]: entry["result"]["trace_cache"]
                  for entry in manifest.tasks.values()}
        assert states == {"li@s1/default/r0": "miss",
                          "li@s1/default/r0.2": "hit"}
        assert list((tmp_path / "trace-cache").glob("*.trace.gz"))

    def test_hit_and_miss_cells_report_identical_results(self, tmp_path):
        spec = small_spec(workloads=("compress",), fault_rates=(0.0, 0.0001))
        run_campaign(spec, tmp_path, executor="inline")
        cached = CampaignManifest.load(tmp_path / "manifest.jsonl")

        fresh_dir = tmp_path / "fresh"
        run_campaign(spec, fresh_dir, executor="inline", trace_cache=False)
        fresh = CampaignManifest.load(fresh_dir / "manifest.jsonl")

        for task_id, entry in fresh.tasks.items():
            want = dict(entry["result"])
            got = dict(cached.tasks[task_id]["result"])
            state = got.pop("trace_cache")
            want.pop("trace_cache")
            assert state in ("hit", "miss")
            # telemetry carries wall-clock-ish sampling metadata; the
            # physics (cycles, savings, counters) must be identical
            want_tel = want.pop("telemetry", None)
            got_tel = got.pop("telemetry", None)
            assert got == want
            if want_tel is not None:
                assert got_tel["metrics"]["counters"] \
                    == want_tel["metrics"]["counters"]

    def test_trace_cache_disabled_leaves_no_directory(self, tmp_path):
        spec = small_spec(workloads=("li",))
        run_campaign(spec, tmp_path, executor="inline", trace_cache=False)
        manifest = CampaignManifest.load(tmp_path / "manifest.jsonl")
        for entry in manifest.tasks.values():
            assert entry["result"]["trace_cache"] == "off"
        assert not (tmp_path / "trace-cache").exists()

    def test_cache_toggle_does_not_change_spec_fingerprint(self, tmp_path):
        # the cache is an execution detail: disabling it on resume must
        # not invalidate the manifest
        spec = small_spec(workloads=("compress", "li"))
        run_campaign(spec, tmp_path, executor="inline", limit=1)
        result = run_campaign(spec, tmp_path, executor="inline",
                              resume=True, trace_cache=False)
        assert result.complete
        assert result.skipped == 1


class TestInlineRunner:
    def test_full_run_completes(self, tmp_path):
        result = run_campaign(small_spec(), tmp_path, executor="inline")
        assert result.complete
        assert (result.done, result.failed, result.skipped) == (2, 0, 0)
        manifest = CampaignManifest.load(tmp_path / "manifest.jsonl")
        assert sorted(manifest.completed_ids()) \
            == ["compress@s1/default/r0", "li@s1/default/r0"]

    def test_existing_manifest_needs_resume_flag(self, tmp_path):
        run_campaign(small_spec(), tmp_path, executor="inline")
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(small_spec(), tmp_path, executor="inline")

    def test_resume_rejects_different_grid(self, tmp_path):
        run_campaign(small_spec(), tmp_path, executor="inline")
        with pytest.raises(CampaignError, match="fingerprint"):
            run_campaign(small_spec(seed=5), tmp_path, executor="inline",
                         resume=True)

    def test_limit_then_resume_restores_exact_pending_set(self, tmp_path):
        """Deterministic half of the kill-and-resume acceptance: stop
        after N tasks, resume, and the second run must execute exactly
        the complement."""
        spec = small_spec(fault_rates=(0.0, 0.1))  # 4 tasks
        all_ids = {t.task_id for t in spec.tasks()}

        first = run_campaign(spec, tmp_path, executor="inline", limit=1)
        assert not first.complete
        assert first.done == 1 and first.remaining == 3
        done_before = set(
            CampaignManifest.load(tmp_path / "manifest.jsonl")
            .completed_ids())
        assert len(done_before) == 1

        second = run_campaign(spec, tmp_path, executor="inline", resume=True)
        assert second.complete
        assert second.skipped == 1 and second.done == 3
        manifest = CampaignManifest.load(tmp_path / "manifest.jsonl")
        assert set(manifest.completed_ids()) == all_ids
        # the resumed run recorded exactly the complement of the first
        assert {tid for tid in manifest.tasks
                if tid not in done_before} == all_ids - done_before


class TestSimulatorAbortsAreContained:
    def test_deadlock_watchdog_failure_is_journaled(self, tmp_path):
        """A hanging workload trips the retirement watchdog; the task
        fails with the diagnostic snapshot in the manifest and the
        campaign carries on."""
        spec = CampaignSpec(workloads=("ijpeg",),
                            policies=("original", "lut-4"),
                            configs={"default": {},
                                     "tight": {"watchdog_cycles": 6}})
        result = run_campaign(spec, tmp_path, executor="inline", retries=0)
        assert result.complete
        assert result.failed == 1 and result.done == 1
        assert result.tasks["ijpeg@s1/default/r0"]["status"] == "done"

        record = result.tasks["ijpeg@s1/tight/r0"]
        assert record["status"] == "failed"
        error = record["error"]
        assert error["type"] == "DeadlockDetected"
        assert "watchdog" in error["message"]
        snapshot = error["snapshot"]
        assert snapshot["cycles_since_retire"] >= 6
        assert snapshot["rob_occupancy"] > 0
        assert snapshot["oldest_op"]

    def test_cycle_limit_failure_carries_snapshot(self, tmp_path):
        spec = CampaignSpec(workloads=("compress",),
                            policies=("original",),
                            configs={"cap": {"max_cycles": 100}})
        result = run_campaign(spec, tmp_path, executor="inline", retries=0)
        assert result.failed == 1
        error = result.tasks["compress@s1/cap/r0"]["error"]
        assert error["type"] == "CycleLimitExceeded"
        assert error["snapshot"]["cycle"] == 100


class TestProcessPool:
    def test_pool_runs_grid(self, tmp_path):
        result = run_campaign(small_spec(), tmp_path, max_workers=2,
                              task_timeout=120.0)
        assert result.complete
        assert result.done == 2 and result.failed == 0
        lut = result.tasks["compress@s1/default/r0"]["result"]["policies"]
        assert 0.0 < lut["lut-4"]["saving"] < 1.0

    def test_worker_crash_is_isolated(self, tmp_path, monkeypatch):
        """ISSUE acceptance: an injected crash marks one task failed —
        with the exit code — and never kills the campaign."""
        monkeypatch.setenv(CRASH_ENV, "compress@")
        result = run_campaign(small_spec(), tmp_path, max_workers=2,
                              task_timeout=120.0, retries=0)
        assert result.complete
        assert result.failed == 1 and result.done == 1
        error = result.tasks["compress@s1/default/r0"]["error"]
        assert error["type"] == "WorkerCrashed"
        assert str(-signal.SIGKILL) in error["message"]
        assert result.tasks["li@s1/default/r0"]["status"] == "done"

    def test_hanging_task_times_out_retries_then_fails(self, tmp_path,
                                                       monkeypatch):
        """ISSUE acceptance: a task exceeding its timeout is SIGKILLed,
        retried with backoff, and finally marked failed."""
        monkeypatch.setenv(HANG_ENV, "li@")
        spec = small_spec(workloads=("li",))
        start = time.monotonic()
        result = run_campaign(spec, tmp_path, max_workers=1,
                              task_timeout=0.4, retries=1, backoff=0.1)
        elapsed = time.monotonic() - start
        assert result.complete
        assert result.failed == 1 and result.done == 0
        record = result.tasks["li@s1/default/r0"]
        assert record["attempts"] == 2  # first attempt + one retry
        assert record["error"]["type"] == "TaskTimeout"
        assert "timeout" in record["error"]["message"]
        assert elapsed >= 0.8  # two full timeouts actually elapsed

    def test_retry_failed_reruns_and_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "li@")
        run_campaign(small_spec(workloads=("li",)), tmp_path,
                     task_timeout=120.0, retries=0)
        monkeypatch.delenv(CRASH_ENV)
        result = run_campaign(small_spec(workloads=("li",)), tmp_path,
                              executor="inline", resume=True,
                              retry_failed=True)
        assert result.complete and result.done == 1 and result.failed == 0
        manifest = CampaignManifest.load(tmp_path / "manifest.jsonl")
        assert manifest.status_of("li@s1/default/r0") == "done"


class TestKillAndResume:
    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        """ISSUE acceptance: SIGKILL the whole campaign process mid-run;
        the manifest left behind resumes to exactly the pending set."""
        spec = small_spec(fault_rates=(0.0, 0.05))  # 4 tasks
        all_ids = {t.task_id for t in spec.tasks()}
        out_dir = tmp_path / "campaign"
        driver = ("import json, sys\n"
                  "from repro.runner.campaign import CampaignSpec,"
                  " run_campaign\n"
                  "spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))\n"
                  "run_campaign(spec, sys.argv[2], max_workers=1,"
                  " task_timeout=60.0, retries=0)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        env[DELAY_ENV] = "0.6"  # slow each worker so the kill lands mid-grid
        proc = subprocess.Popen(
            [sys.executable, "-c", driver,
             json.dumps(spec.to_dict()), str(out_dir)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        manifest_path = out_dir / "manifest.jsonl"
        try:
            deadline = time.monotonic() + 60.0
            done_before = set()
            while time.monotonic() < deadline:
                if manifest_path.exists():
                    done_before = set(CampaignManifest.load(manifest_path)
                                      .completed_ids())
                    if done_before:
                        break
                time.sleep(0.05)
        finally:
            proc.kill()  # SIGKILL: no cleanup handlers run
            proc.wait(timeout=30)
        # the journal survived the kill with at least one task recorded,
        # and the campaign clearly did not finish
        done_before = set(
            CampaignManifest.load(manifest_path).completed_ids())
        assert done_before and done_before < all_ids

        result = run_campaign(spec, out_dir, executor="inline", resume=True)
        assert result.complete
        assert result.skipped == len(done_before)
        assert result.done == len(all_ids) - len(done_before)
        manifest = CampaignManifest.load(manifest_path)
        assert set(manifest.completed_ids()) == all_ids


class TestReportDegradesGracefully:
    def test_failed_and_pending_cells_render_as_gaps(self):
        tasks = {
            "a": {"status": "done", "attempts": 1,
                  "result": {"cycles": 500, "fault_flips": 3,
                             "policies": {"original": {"saving": 0.0},
                                          "lut-4": {"saving": 0.31}}}},
            "b": {"status": "failed", "attempts": 2,
                  "error": {"type": "TaskTimeout",
                            "message": "exceeded 0.4s task timeout"}},
        }
        text = render_campaign(["original", "lut-4"], tasks, pending=["c"])
        assert "31.0" in text and "faults=3" in text
        assert "FAILED" in text and "TaskTimeout" in text
        assert "not yet run" in text
        assert "2 recorded (1 failed), 1 pending" in text

    def test_empty_campaign_renders(self):
        text = render_campaign(["original"], {}, pending=[])
        assert "0 recorded (0 failed), 0 pending" in text
