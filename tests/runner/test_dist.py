"""Distributed campaign fabric: leases, sharding, workers, recovery.

Unit- and integration-level coverage for ``repro.runner.dist`` — the
lease protocol primitives, the shard plan, worker execution, steal and
quarantine paths, resume — plus the full-jitter backoff satellite.  The
host-loss chaos scenarios (SIGKILL mid-shard, coordinator death,
byte-identity against a single-host reference) live in
``test_dist_chaos.py``.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.runner.campaign import CampaignError, CampaignSpec, task_fingerprint
from repro.runner.dist import (CampaignLayout, DistCoordinator, DistWorker,
                               _LeaseKeeper, lease_expired, read_lease,
                               release_lease, renew_lease, run_distributed,
                               shard_ids, shard_tasks, try_claim_lease)
from repro.runner.manifest import CampaignManifest
from repro.runner.pool import full_jitter_delay


def small_spec(**overrides):
    base = dict(workloads=("compress", "li"),
                policies=("original", "lut-4"))
    base.update(overrides)
    return CampaignSpec(**base)


class TestFullJitterDelay:
    def test_no_jitter_returns_exact_exponential_ceiling(self):
        assert full_jitter_delay(0.5, 1, jitter=False) == 0.5
        assert full_jitter_delay(0.5, 2, jitter=False) == 1.0
        assert full_jitter_delay(0.5, 4, jitter=False) == 4.0

    def test_jitter_is_bounded_by_the_ceiling(self):
        rng = random.Random(7)
        for attempt in (1, 2, 3, 5):
            ceiling = 0.5 * 2 ** (attempt - 1)
            for _ in range(200):
                delay = full_jitter_delay(0.5, attempt, rng=rng)
                assert 0.0 <= delay <= ceiling

    def test_jitter_actually_varies(self):
        rng = random.Random(7)
        draws = {full_jitter_delay(1.0, 3, rng=rng) for _ in range(50)}
        assert len(draws) > 40  # uniform draws, not a constant

    def test_attempt_floor(self):
        # attempt 0 (defensive) behaves like attempt 1
        assert full_jitter_delay(0.5, 0, jitter=False) == 0.5


class TestShardPlan:
    def test_shard_ids_are_stable_and_sorted(self):
        ids = shard_ids(11)
        assert ids[0] == "shard-0000" and ids[-1] == "shard-0010"
        assert ids == sorted(ids)

    def test_sharding_is_deterministic_and_complete(self):
        spec = small_spec(fault_rates=(0.0, 0.1, 0.2))  # 6 tasks
        plan = shard_tasks(spec, 2)
        assert [len(s) for s in plan] == [2, 2, 2]
        flat = [t.task_id for shard in plan for t in shard]
        assert flat == [t.task_id for t in spec.tasks()]
        assert flat == [t.task_id
                        for shard in shard_tasks(spec, 2) for t in shard]

    def test_ragged_tail_shard(self):
        spec = small_spec(fault_rates=(0.0, 0.1, 0.2))  # 6 tasks
        plan = shard_tasks(spec, 4)
        assert [len(s) for s in plan] == [4, 2]

    def test_shard_size_floor(self):
        assert [len(s) for s in shard_tasks(small_spec(), 0)] == [1, 1]


class TestLeaseProtocol:
    def test_exactly_one_claim_wins(self, tmp_path):
        path = tmp_path / "s.lease"
        assert try_claim_lease(path, "s", "w1", "n1", 1, ttl=30)
        assert not try_claim_lease(path, "s", "w2", "n2", 1, ttl=30)
        lease = read_lease(path)
        assert lease["worker"] == "w1" and lease["nonce"] == "n1"
        assert not lease_expired(lease)

    def test_expired_and_torn_leases_are_claimable(self, tmp_path):
        path = tmp_path / "s.lease"
        assert lease_expired(None)
        try_claim_lease(path, "s", "w1", "n1", 1, ttl=-1.0)
        assert lease_expired(read_lease(path))
        path.write_text("{ not json")
        assert lease_expired(read_lease(path))

    def test_renew_extends_only_our_own_lease(self, tmp_path):
        path = tmp_path / "s.lease"
        try_claim_lease(path, "s", "w1", "n1", 1, ttl=0.2)
        before = read_lease(path)["deadline"]
        assert renew_lease(path, "n1", ttl=30)
        assert read_lease(path)["deadline"] > before
        # a stolen lease (different nonce) must refuse to renew
        assert not renew_lease(path, "n-somebody-else", ttl=30)
        path.unlink()
        assert not renew_lease(path, "n1", ttl=30)

    def test_release_checks_the_nonce(self, tmp_path):
        path = tmp_path / "s.lease"
        try_claim_lease(path, "s", "w1", "n1", 1, ttl=30)
        release_lease(path, "wrong-nonce")
        assert path.exists()
        release_lease(path, "n1")
        assert not path.exists()

    def test_keeper_heartbeats_until_stopped(self, tmp_path):
        path = tmp_path / "s.lease"
        try_claim_lease(path, "s", "w1", "n1", 1, ttl=0.5)
        keeper = _LeaseKeeper(path, "n1", ttl=0.5, interval=0.05)
        keeper.start()
        try:
            time.sleep(0.7)  # past the original deadline
            assert not lease_expired(read_lease(path))
            assert not keeper.lost.is_set()
        finally:
            keeper.stop()
            keeper.join(timeout=5)

    def test_keeper_flags_a_stolen_lease(self, tmp_path):
        path = tmp_path / "s.lease"
        try_claim_lease(path, "s", "w1", "n1", 1, ttl=30)
        keeper = _LeaseKeeper(path, "n1", ttl=30, interval=0.05)
        keeper.start()
        try:
            path.unlink()
            try_claim_lease(path, "s", "w2", "n2", 2, ttl=30)
            assert keeper.lost.wait(timeout=5)
        finally:
            keeper.stop()
            keeper.join(timeout=5)


class TestCoordinatorPublish:
    def test_publish_writes_queue_then_campaign_file(self, tmp_path):
        spec = small_spec()
        DistCoordinator(spec, tmp_path, shard_size=1).publish()
        layout = CampaignLayout(tmp_path)
        campaign = json.loads(layout.campaign_file.read_text())
        assert campaign["fingerprint"] == spec.fingerprint()
        assert campaign["shards"] == 2
        shard0 = json.loads(layout.shard_path("shard-0000").read_text())
        assert shard0["tasks"] == ["compress@s1/default/r0"]

    def test_existing_campaign_needs_resume(self, tmp_path):
        DistCoordinator(small_spec(), tmp_path).publish()
        with pytest.raises(CampaignError, match="resume"):
            DistCoordinator(small_spec(), tmp_path).publish()
        DistCoordinator(small_spec(), tmp_path, resume=True).publish()

    def test_resume_rejects_a_different_grid(self, tmp_path):
        DistCoordinator(small_spec(), tmp_path).publish()
        with pytest.raises(CampaignError, match="fingerprint"):
            DistCoordinator(small_spec(seed=9), tmp_path,
                            resume=True).publish()

    def test_invalid_executor(self, tmp_path):
        with pytest.raises(CampaignError, match="executor"):
            DistCoordinator(small_spec(), tmp_path, executor="thread")


class TestWorker:
    def test_worker_times_out_without_a_published_campaign(self, tmp_path):
        worker = DistWorker(tmp_path, worker_id="w", join_timeout=0.2)
        with pytest.raises(CampaignError, match="no campaign published"):
            worker.run()

    def test_single_worker_drains_the_queue(self, tmp_path):
        spec = small_spec()
        coordinator = DistCoordinator(spec, tmp_path, shard_size=1,
                                      executor="inline")
        coordinator.publish()
        outcome = DistWorker(tmp_path, worker_id="w0",
                             poll_interval=0.05).run()
        assert outcome.shards_done == 2
        assert outcome.tasks_done == 2 and outcome.tasks_failed == 0
        assert outcome.shards_stolen == 0

        result = coordinator.merge()
        assert result.complete
        assert result.done == 2 and result.failed == 0
        assert result.counters["dist.tasks.done"] == 2
        assert result.gauges["dist.worker.w0.shards_done"] == 2
        # leases are all released once the queue is drained
        assert not list(CampaignLayout(tmp_path).lease_dir.iterdir())

    def test_merged_manifest_loads_as_campaign_manifest(self, tmp_path):
        spec = small_spec(workloads=("li",))
        result = run_distributed(spec, tmp_path, workers=1, shard_size=1,
                                 executor="inline")
        manifest = CampaignManifest.load(result.manifest_path)
        assert manifest.fingerprint == spec.fingerprint()
        assert manifest.completed_ids() == ["li@s1/default/r0"]

    def test_worker_steals_an_expired_lease(self, tmp_path):
        spec = small_spec(workloads=("li",))
        coordinator = DistCoordinator(spec, tmp_path, shard_size=1,
                                      executor="inline", lease_ttl=20)
        coordinator.publish()
        layout = CampaignLayout(tmp_path)
        # a dead host left an expired lease behind (deadline in the past)
        path = layout.lease_path("shard-0000")
        try_claim_lease(path, "shard-0000", "dead-host", "gone", 1,
                        ttl=-1.0)
        outcome = DistWorker(tmp_path, worker_id="thief",
                             poll_interval=0.05).run()
        assert outcome.shards_stolen == 1
        assert outcome.shards_requeued == 1  # epoch 2 claim
        assert outcome.shards_done == 1
        result = coordinator.merge()
        assert result.complete and result.done == 1
        # the winning record ran under the thief's epoch-2 lease
        ack = json.loads(layout.ack_path("shard-0000").read_text())
        assert ack["worker"] == "thief" and ack["epoch"] == 2

    def test_poison_shard_is_quarantined(self, tmp_path):
        spec = small_spec(workloads=("li",))
        coordinator = DistCoordinator(spec, tmp_path, shard_size=1,
                                      executor="inline", lease_ttl=20,
                                      max_shard_attempts=2, backoff=0.01)
        coordinator.publish()
        layout = CampaignLayout(tmp_path)
        # two prior lease epochs already burned (result journals without
        # completion), so the next claimant must quarantine, not re-run
        for epoch, nonce in ((1, "aaaa"), (2, "bbbb")):
            layout.result_path("shard-0000", epoch, nonce).write_text(
                json.dumps({"event": "shard", "version": 1,
                            "shard": "shard-0000", "worker": "dead",
                            "epoch": epoch}) + "\n")
        outcome = DistWorker(tmp_path, worker_id="w0",
                             poll_interval=0.05).run()
        assert outcome.shards_quarantined == 1
        assert outcome.tasks_done == 0

        result = coordinator.merge()
        assert result.complete
        assert result.shards_quarantined == 1
        assert result.failed == 1 and result.done == 0
        record = result.tasks["li@s1/default/r0"]
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ShardQuarantined"

    def test_quarantine_loses_to_a_real_completion(self, tmp_path):
        """A cell journaled 'done' under some earlier lease outranks the
        synthesized quarantine failure in the merge."""
        spec = small_spec(workloads=("li",))
        coordinator = DistCoordinator(spec, tmp_path, shard_size=1,
                                      executor="inline",
                                      max_shard_attempts=1)
        coordinator.publish()
        layout = CampaignLayout(tmp_path)
        task = spec.tasks()[0]
        done_record = {"event": "task", "id": task.task_id,
                       "cell": task_fingerprint(task), "status": "done",
                       "attempts": 1, "worker": "dead", "epoch": 1,
                       "result": {"cycles": 42}}
        layout.result_path("shard-0000", 1, "aaaa").write_text(
            "\n".join(json.dumps(rec) for rec in (
                {"event": "shard", "version": 1, "shard": "shard-0000",
                 "worker": "dead", "epoch": 1}, done_record)) + "\n")
        DistWorker(tmp_path, worker_id="w0", poll_interval=0.05).run()
        result = coordinator.merge()
        assert result.shards_quarantined == 1
        assert result.tasks[task.task_id]["status"] == "done"

    def test_resume_after_partial_run_completes_the_grid(self, tmp_path):
        spec = small_spec(fault_rates=(0.0, 0.1))  # 4 tasks
        coordinator = DistCoordinator(spec, tmp_path, shard_size=1,
                                      executor="inline")
        coordinator.publish()
        layout = CampaignLayout(tmp_path)
        # simulate a dead fleet: one shard fully acked, rest untouched
        plan = shard_tasks(spec, 1)
        worker = DistWorker(tmp_path, worker_id="first",
                            poll_interval=0.05)
        # run just shard-0000 by pre-acking the others, then un-acking
        for sid in ("shard-0001", "shard-0002", "shard-0003"):
            layout.ack_path(sid).write_text(
                json.dumps({"shard": sid, "status": "done"}))
        worker.run()
        for sid in ("shard-0001", "shard-0002", "shard-0003"):
            layout.ack_path(sid).unlink()
        partial = coordinator.merge()
        assert not partial.complete and partial.done == 1

        # "--resume": republish validates the fingerprint, a fresh
        # worker picks up exactly the outstanding shards
        result = run_distributed(spec, tmp_path, workers=1, shard_size=1,
                                 executor="inline", resume=True)
        assert result.complete
        assert result.done == 4 and result.failed == 0
        assert len(result.tasks) == 4

    def test_worker_rejects_mismatched_campaign_version(self, tmp_path):
        DistCoordinator(small_spec(), tmp_path).publish()
        layout = CampaignLayout(tmp_path)
        campaign = json.loads(layout.campaign_file.read_text())
        campaign["version"] = 99
        layout.campaign_file.write_text(json.dumps(campaign))
        with pytest.raises(CampaignError, match="version"):
            DistWorker(tmp_path, worker_id="w", join_timeout=0.2).run()


class TestRunDistributed:
    def test_two_local_workers_complete_the_grid(self, tmp_path):
        spec = small_spec(fault_rates=(0.0, 0.01))  # 4 tasks
        result = run_distributed(spec, tmp_path, workers=2, shard_size=1,
                                 executor="inline", lease_ttl=20)
        assert result.complete
        assert result.done == 4 and result.failed == 0
        assert result.shards_done == 4
        assert result.counters["dist.shards.completed"] == 4
        # every shard journal carries its completion footer
        layout = CampaignLayout(tmp_path)
        acked_epochs = {}
        for sid in shard_ids(4):
            ack = json.loads(layout.ack_path(sid).read_text())
            acked_epochs[sid] = ack["epoch"]
        for sid, epoch in acked_epochs.items():
            journals = list(layout.results_dir.glob(f"{sid}.e{epoch}.*"))
            assert len(journals) == 1
            assert '"event": "shard-done"' in \
                journals[0].read_text().splitlines()[-1]
