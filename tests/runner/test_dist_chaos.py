"""Chaos harness for the distributed campaign fabric.

The acceptance bar (ISSUE 7): killing any single worker — and the
coordinator — mid-campaign, then resuming, must produce a merged
manifest **bit-identical** to an uninterrupted single-host run, with
every shard executed under exactly one surviving lease.

Worker loss is injected deterministically at chosen task boundaries via
``REPRO_DIST_TEST_KILL`` (the worker SIGKILLs itself — no cleanup
handlers run, exactly like losing the host), and enumerated across the
grid rather than sampled, so every kill point is exercised on every
run.  Coordinator loss SIGKILLs the whole process group of a real
driver subprocess mid-campaign.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runner.campaign import CampaignSpec
from repro.runner.dist import (KILL_ENV, CampaignError, CampaignLayout,
                               run_distributed, shard_ids)
from repro.runner.manifest import CampaignManifest
from repro.runner.pool import DELAY_ENV

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def chaos_spec():
    # 2 workloads x 2 fault rates = 4 tasks -> 4 single-task shards;
    # the pairs sharing a (workload, config) stream also exercise the
    # fleet-wide trace cache on every run
    return CampaignSpec(workloads=("compress", "li"),
                        policies=("original", "lut-4"),
                        fault_rates=(0.0, 0.01))


TASK_IDS = [t.task_id for t in chaos_spec().tasks()]


@pytest.fixture(scope="module")
def reference_manifest(tmp_path_factory):
    """The uninterrupted single-host run every chaos run must match."""
    root = tmp_path_factory.mktemp("reference")
    result = run_distributed(chaos_spec(), root, workers=1, shard_size=1,
                             executor="inline", lease_ttl=30)
    assert result.complete and result.failed == 0
    return result.manifest_path.read_bytes()


def assert_exactly_one_surviving_lease(root):
    """Every shard: one terminal ack, whose (epoch, nonce) journal ran
    to completion (shard-done footer), and no lease left behind."""
    layout = CampaignLayout(root)
    assert not list(layout.lease_dir.iterdir())
    shards = sorted(p.stem for p in layout.queue_dir.glob("*.json"))
    assert shards
    for sid in shards:
        ack = json.loads(layout.ack_path(sid).read_text())
        assert ack["status"] in ("done", "quarantined")
        if ack["status"] != "done":
            continue
        journal = layout.result_path(sid, ack["epoch"], ack["nonce"])
        footer = json.loads(journal.read_text().splitlines()[-1])
        assert footer["event"] == "shard-done"
        assert footer["worker"] == ack["worker"]
        assert footer["epoch"] == ack["epoch"]


def assert_no_temp_droppings(root):
    assert not list(Path(root).rglob("*.tmp"))


class TestWorkerLoss:
    @pytest.mark.parametrize("kill_task", TASK_IDS)
    def test_any_single_worker_killed_mid_shard(self, tmp_path,
                                                monkeypatch, kill_task,
                                                reference_manifest):
        """SIGKILL whichever worker picks up ``kill_task`` (first lease
        epoch only); the survivor steals the shard and the merged
        manifest matches the single-host bytes."""
        monkeypatch.setenv(KILL_ENV, kill_task)
        result = run_distributed(chaos_spec(), tmp_path, workers=2,
                                 shard_size=1, executor="inline",
                                 lease_ttl=2.0, backoff=0.05)
        assert result.complete
        assert result.done == 4 and result.failed == 0
        assert result.counters["dist.shards.stolen"] >= 1
        assert result.manifest_path.read_bytes() == reference_manifest
        assert_exactly_one_surviving_lease(tmp_path)
        assert_no_temp_droppings(tmp_path)

    def test_poison_shard_quarantine_then_resume(self, tmp_path,
                                                 monkeypatch):
        """A shard that kills its host on every lease burns through
        ``max_shard_attempts``; after the fleet dies, --resume
        quarantines it and the campaign still completes with the
        failure explicit."""
        target = TASK_IDS[1]
        monkeypatch.setenv(KILL_ENV, f"{target}#99")  # kill every epoch
        with pytest.raises(CampaignError, match="resume"):
            run_distributed(chaos_spec(), tmp_path, workers=2,
                            shard_size=1, executor="inline",
                            lease_ttl=2.0, max_shard_attempts=2,
                            backoff=0.05)
        monkeypatch.delenv(KILL_ENV)
        result = run_distributed(chaos_spec(), tmp_path, workers=2,
                                 shard_size=1, executor="inline",
                                 lease_ttl=2.0, max_shard_attempts=2,
                                 backoff=0.05, resume=True)
        assert result.complete
        assert result.shards_quarantined == 1
        assert result.done == 3 and result.failed == 1
        record = result.tasks[target]
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ShardQuarantined"
        assert_exactly_one_surviving_lease(tmp_path)


class TestCoordinatorLoss:
    def test_sigkill_coordinator_process_group_then_resume(
            self, tmp_path, reference_manifest):
        """SIGKILL the whole driver process group (coordinator + its
        local worker) mid-campaign; resuming completes the grid and the
        merged manifest is bit-identical to the single-host bytes."""
        driver = ("import json, sys\n"
                  "from repro.runner.campaign import CampaignSpec\n"
                  "from repro.runner.dist import run_distributed\n"
                  "spec = CampaignSpec.from_dict(json.loads(sys.argv[1]))\n"
                  "run_distributed(spec, sys.argv[2], workers=1,"
                  " shard_size=1, executor='process', max_workers=1,"
                  " lease_ttl=3.0, task_timeout=60.0)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        env[DELAY_ENV] = "0.8"  # slow each task so the kill lands mid-grid
        layout = CampaignLayout(tmp_path)
        proc = subprocess.Popen(
            [sys.executable, "-c", driver,
             json.dumps(chaos_spec().to_dict()), str(tmp_path)],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if list(layout.acks_dir.glob("*.json")) if \
                        layout.acks_dir.is_dir() else False:
                    break
                time.sleep(0.05)
        finally:
            # SIGKILL the session: coordinator, worker, and any pool
            # children die together — no cleanup handlers run
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        acked = {p.stem for p in layout.acks_dir.glob("*.json")}
        assert acked and acked < set(shard_ids(4))

        result = run_distributed(chaos_spec(), tmp_path, workers=1,
                                 shard_size=1, executor="inline",
                                 lease_ttl=3.0, resume=True)
        assert result.complete
        assert result.done == 4 and result.failed == 0
        assert result.manifest_path.read_bytes() == reference_manifest
        assert_exactly_one_surviving_lease(tmp_path)
        assert_no_temp_droppings(tmp_path)


class TestInterruptFinalizesShardManifest:
    def test_keyboard_interrupt_mid_shard_flushes_and_releases(
            self, tmp_path, monkeypatch):
        """Satellite: ^C mid-shard must leave the partial shard journal
        finalized on disk (flushed + renamed, no stale temp file) and
        the lease released so a peer can take over immediately."""
        from repro.runner import dist as dist_mod
        spec = chaos_spec()
        real_execute = dist_mod.execute_task
        interrupt_at = TASK_IDS[1]

        def interrupting(task):
            if task.task_id == interrupt_at:
                raise KeyboardInterrupt
            return real_execute(task)

        monkeypatch.setattr(dist_mod, "execute_task", interrupting)
        coordinator = dist_mod.DistCoordinator(
            spec, tmp_path, shard_size=2, executor="inline", lease_ttl=30)
        coordinator.publish()
        with pytest.raises(KeyboardInterrupt):
            dist_mod.DistWorker(tmp_path, worker_id="w0",
                                poll_interval=0.05).run()

        layout = CampaignLayout(tmp_path)
        # the journal for the interrupted shard is a complete, renamed
        # JSONL file holding everything finished before the interrupt
        journals = list(layout.results_dir.glob("shard-0000.e1.*.jsonl"))
        assert len(journals) == 1
        lines = [json.loads(line) for line in
                 journals[0].read_text().splitlines()]
        assert lines[0]["event"] == "shard"
        done_ids = [rec["id"] for rec in lines
                    if rec.get("event") == "task"]
        assert done_ids == [TASK_IDS[0]]
        assert_no_temp_droppings(tmp_path)
        # no ack (the shard is incomplete), and the lease was released
        assert not layout.ack_path("shard-0000").exists()
        assert not layout.lease_path("shard-0000").exists()

        # a surviving peer (or a restart) finishes the shard and the
        # merge keeps the journaled first task from the dead lease's
        # file only if nothing better exists — here the epoch-2 rerun
        # supersedes it, identically
        monkeypatch.setattr(dist_mod, "execute_task", real_execute)
        result = run_distributed(spec, tmp_path, workers=1, shard_size=2,
                                 executor="inline", lease_ttl=2.0,
                                 resume=True)
        assert result.complete and result.done == 4
        assert_exactly_one_surviving_lease(tmp_path)


class TestMergedManifestIsCanonical:
    def test_merged_manifest_resumable_by_single_host_runner(
            self, tmp_path):
        """The merged manifest is a valid CampaignManifest: the classic
        single-host runner can load it and sees nothing left to do."""
        spec = chaos_spec()
        result = run_distributed(spec, tmp_path, workers=2, shard_size=1,
                                 executor="inline", lease_ttl=20)
        assert result.complete
        manifest = CampaignManifest.load(result.manifest_path)
        assert manifest.fingerprint == spec.fingerprint()
        assert sorted(manifest.completed_ids()) == sorted(TASK_IDS)
        assert manifest.dropped_lines == 0
