"""Fault injection: zero-rate purity, determinism, degradation."""

import pytest

from repro.core.statistics import paper_statistics
from repro.core.steering import PolicyEvaluator, make_policy
from repro.cpu.simulator import Simulator, simulate
from repro.cpu.trace import MicroOp, TraceCollector
from repro.isa.instructions import FUClass, opcode
from repro.runner.faults import FaultInjector, fault_sweep


def _lut_evaluator(fault_injector=None):
    stats = paper_statistics(FUClass.IALU)
    policy = make_policy("lut-4", FUClass.IALU, 4, stats=stats)
    return PolicyEvaluator(FUClass.IALU, 4, policy,
                           fault_injector=fault_injector)


class TestZeroRateIsExactNoOp:
    """ISSUE acceptance: fault rate 0.0 is bit-identical to a clean run."""

    def test_evaluator_hook_bit_identical(self, sum_program):
        collector = TraceCollector([FUClass.IALU])
        simulate(sum_program, listeners=[collector])

        clean = _lut_evaluator()
        faulted = _lut_evaluator(fault_injector=FaultInjector(0.0))
        for group in collector.groups:
            clean(group)
            faulted(group)
        assert faulted.totals().switched_bits == clean.totals().switched_bits
        assert faulted.totals().operations == clean.totals().operations

    def test_simulator_hook_bit_identical(self, sum_program):
        baseline = _lut_evaluator()
        sim = Simulator(sum_program)
        sim.add_listener(baseline)
        clean_result = sim.run()

        injected = _lut_evaluator()
        sim = Simulator(sum_program, fault_injector=FaultInjector(0.0))
        sim.add_listener(injected)
        result = sim.run()

        assert result.cycles == clean_result.cycles
        assert injected.totals().switched_bits \
            == baseline.totals().switched_bits

    def test_zero_rate_view_is_same_object(self):
        injector = FaultInjector(0.0)
        ops = [MicroOp(opcode("add"), 1, 2, has_two=True)]
        assert injector.corrupt_view(ops, FUClass.IALU) is ops
        assert injector.flips == 0


class TestInjection:
    def test_rate_one_flips_every_operand(self):
        injector = FaultInjector(1.0, mode="info")
        ops = [MicroOp(opcode("add"), 0, 1 << 31, has_two=True)]
        view = injector.corrupt_view(ops, FUClass.IALU)
        assert view is not ops
        # the caller's list is never mutated: power model sees the truth
        assert ops[0].op1 == 0 and ops[0].op2 == 1 << 31
        # the policy's view has the int info (sign) bit inverted
        assert view[0].op1 == 1 << 31 and view[0].op2 == 0
        assert injector.flips == 2

    def test_info_mode_toggles_fp_nibble(self):
        injector = FaultInjector(1.0, mode="info")
        assert injector._corrupt_image(0b10000, is_float=True) & 0xF
        assert injector._corrupt_image(0b10101, is_float=True) & 0xF == 0

    def test_operand_mode_flips_one_bit(self):
        injector = FaultInjector(1.0, mode="operand", seed=3)
        for _ in range(32):
            flipped = injector._corrupt_image(0, is_float=False)
            assert bin(flipped).count("1") == 1
            assert flipped < (1 << 32)

    def test_in_place_hook_mutates_micro_op(self):
        injector = FaultInjector(1.0, mode="info")
        micro = MicroOp(opcode("add"), 5, 9, has_two=True)
        injector(micro, FUClass.IALU)
        assert micro.op1 == 5 ^ (1 << 31)
        assert micro.op2 == 9 ^ (1 << 31)

    def test_fu_class_filter(self):
        injector = FaultInjector(1.0, fu_classes=[FUClass.FPAU])
        micro = MicroOp(opcode("add"), 5, 9, has_two=True)
        injector(micro, FUClass.IALU)
        assert (micro.op1, micro.op2) == (5, 9)
        assert injector.flips == 0

    def test_same_seed_same_upsets(self, sum_program):
        collector = TraceCollector([FUClass.IALU])
        simulate(sum_program, listeners=[collector])
        totals = []
        for _ in range(2):
            evaluator = _lut_evaluator(
                fault_injector=FaultInjector(0.2, seed=7))
            for group in collector.groups:
                evaluator(group)
            totals.append(evaluator.totals().switched_bits)
        assert totals[0] == totals[1]

    def test_reset_restores_rng(self):
        injector = FaultInjector(0.5, mode="operand", seed=11)
        first = [injector._corrupt_image(0, False) for _ in range(8)]
        injector.flips = 99
        injector.reset()
        assert injector.flips == 0
        assert [injector._corrupt_image(0, False) for _ in range(8)] == first

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(-0.1)
        with pytest.raises(ValueError, match="mode"):
            FaultInjector(0.1, mode="gamma-ray")


class TestFaultSweep:
    def test_savings_degrade_monotonically(self):
        """ISSUE acceptance: sweeping 0 -> 0.1 produces a monotone
        degradation of the steering savings."""
        rates = (0.0, 0.02, 0.05, 0.1)
        curve = fault_sweep("compress", rates, fu_class=FUClass.IALU,
                            policy_kind="lut-4", seed=0)
        assert set(curve) == set(rates)
        savings = [curve[r] for r in rates]
        # strictly worse at the endpoints, weakly monotone in between
        # (tiny tolerance: adjacent rates may tie on short streams)
        assert savings[-1] < savings[0]
        for lo, hi in zip(savings[1:], savings):
            assert lo <= hi + 0.01
        assert savings[0] > 0.2  # the clean point is the real lut-4 saving
