"""Atomic-write helpers and the campaign manifest journal."""

import json
import os

import pytest

from repro.runner.atomic import (atomic_append_jsonl, atomic_write_json,
                                 atomic_write_text)
from repro.runner.manifest import CampaignManifest, ManifestError


class TestAtomicWrites:
    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "report.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"rows": list(range(100))})
        atomic_write_text(path, "replaced")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["data.json"]

    def test_failure_cleans_temp(self, tmp_path):
        class Unserialisable:
            pass

        path = tmp_path / "bad.json"
        with pytest.raises(TypeError):
            atomic_write_json(path, {"x": Unserialisable()})
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_jsonl_rewrites_whole_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        atomic_append_jsonl(path, [{"a": 1}, {"b": 2}])
        atomic_append_jsonl(path, [{"a": 1}])
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {"a": 1}


class TestManifest:
    def test_create_flush_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = CampaignManifest.create(path, "f" * 16, {"workloads": []})
        manifest.record_done("a", 1, 0.5, {"cycles": 10})
        manifest.record_failed("b", 2, 1.0, {"type": "TaskTimeout",
                                             "message": "too slow"})

        loaded = CampaignManifest.load(path)
        assert loaded.fingerprint == "f" * 16
        assert loaded.dropped_lines == 0
        assert loaded.completed_ids() == ["a"]
        assert loaded.failed_ids() == ["b"]
        assert loaded.status_of("a") == "done"
        assert loaded.status_of("b") == "failed"
        assert loaded.status_of("c") is None
        assert loaded.tasks["a"]["result"]["cycles"] == 10
        assert loaded.tasks["b"]["error"]["type"] == "TaskTimeout"

    def test_every_flush_is_a_complete_journal(self, tmp_path):
        """Each task record lands via a full atomic rewrite — the file on
        disk is always parseable in its entirety."""
        path = tmp_path / "manifest.jsonl"
        manifest = CampaignManifest.create(path, "abcd", {})
        for n in range(5):
            manifest.record_done(f"t{n}", 1, 0.1, {})
            records = [json.loads(line)
                       for line in path.read_text().splitlines()]
            assert records[0]["event"] == "campaign"
            assert len(records) == n + 2

    def test_load_drops_corrupt_trailing_line(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = CampaignManifest.create(path, "abcd", {})
        manifest.record_done("a", 1, 0.1, {})
        with open(path, "a") as handle:
            handle.write('{"event": "task", "id": "b", "stat')  # torn write
        loaded = CampaignManifest.load(path)
        assert loaded.dropped_lines == 1
        assert loaded.completed_ids() == ["a"]
        assert loaded.status_of("b") is None

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "notamanifest.jsonl"
        path.write_text('{"event": "task", "id": "a", "status": "done"}\n')
        with pytest.raises(ManifestError, match="header"):
            CampaignManifest.load(path)

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"event": "campaign", "version": 99,
                                    "fingerprint": "x", "spec": {}}) + "\n")
        with pytest.raises(ManifestError, match="version"):
            CampaignManifest.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            CampaignManifest.load(tmp_path / "absent.jsonl")

    def test_forget_allows_retry(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = CampaignManifest.create(path, "abcd", {})
        manifest.record_failed("a", 2, 0.1, {"type": "X", "message": ""})
        manifest.forget("a")
        assert manifest.status_of("a") is None

    def test_no_temp_files_next_to_manifest(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        manifest = CampaignManifest.create(path, "abcd", {})
        for n in range(3):
            manifest.record_done(f"t{n}", 1, 0.1, {})
        assert os.listdir(tmp_path) == ["manifest.jsonl"]
