"""Property tests for the distributed-manifest merge.

The merge is the correctness keystone of the fabric: workers journal
at-least-once (stolen shards can complete twice), and the coordinator
must fold any pile of per-shard JSONL manifests into one byte-stable
campaign manifest.  Hypothesis drives the two load-bearing properties:

* **permutation invariance** — any ordering of any interleaving of the
  shard files (including duplicated records from a
  stolen-then-completed shard) merges to the byte-identical output;
* **last-write-wins by cell fingerprint** — ``done`` beats ``failed``,
  then the higher lease epoch wins, and the winner never depends on
  which file it arrived in.
"""

import json

from hypothesis import given, strategies as st

from repro.runner.manifest import (ShardManifest, canonical_task_record,
                                   merge_task_records, read_shard_records,
                                   write_merged_manifest)

# a small universe of cells so generated records collide on purpose
CELLS = [f"cell-{i:02d}" for i in range(6)]


def record_strategy():
    status = st.sampled_from(["done", "failed"])
    return st.builds(
        lambda cell, stat, epoch, attempts, value: {
            "event": "task",
            "id": f"task/{cell}",
            "cell": cell,
            "status": stat,
            "epoch": epoch,
            "attempts": attempts,
            "worker": f"w{epoch}",
            "elapsed": value / 7.0,          # volatile, must not matter
            **({"result": {"cycles": value,
                           "trace_cache": "hit" if value % 2 else "miss"}}
               if stat == "done" else
               {"error": {"type": "Boom", "message": f"m{value}",
                          "traceback": "tb"}}),
        },
        st.sampled_from(CELLS), status, st.integers(1, 4),
        st.integers(1, 3), st.integers(0, 20))


records_lists = st.lists(record_strategy(), min_size=0, max_size=24)


def merged_bytes(records):
    merged = merge_task_records(records)
    return "".join(json.dumps(rec, sort_keys=True) + "\n"
                   for rec in sorted(merged.values(),
                                     key=lambda r: r["id"]))


class TestMergeProperties:
    @given(records_lists, st.randoms(use_true_random=False))
    def test_any_permutation_merges_identically(self, records, rnd):
        baseline = merged_bytes(records)
        shuffled = list(records)
        rnd.shuffle(shuffled)
        assert merged_bytes(shuffled) == baseline

    @given(records_lists, st.data())
    def test_duplicates_from_stolen_shards_change_nothing(self, records,
                                                          data):
        baseline = merged_bytes(records)
        if records:
            dupes = data.draw(st.lists(st.sampled_from(records),
                                       min_size=1, max_size=8))
            assert merged_bytes(records + dupes) == baseline

    @given(records_lists)
    def test_done_beats_failed_for_a_cell(self, records):
        merged = merge_task_records(records)
        for cell, winner in merged.items():
            statuses = {r["status"] for r in records
                        if r.get("cell") == cell}
            if "done" in statuses:
                assert winner["status"] == "done"

    @given(records_lists)
    def test_among_done_records_the_highest_epoch_wins(self, records):
        merged = merge_task_records(records)
        for cell, winner in merged.items():
            if winner["status"] != "done":
                continue
            best_epoch = max(r["epoch"] for r in records
                             if r.get("cell") == cell
                             and r["status"] == "done")
            candidates = [canonical_task_record(r) for r in records
                          if r.get("cell") == cell
                          and r["status"] == "done"
                          and r["epoch"] == best_epoch]
            assert winner in candidates

    @given(records_lists)
    def test_canonical_records_carry_no_volatile_fields(self, records):
        for record in merge_task_records(records).values():
            assert set(record) <= {"event", "id", "cell", "status",
                                   "result", "error"}
            if record["status"] == "done":
                assert "trace_cache" not in record["result"]

    @given(records_lists)
    def test_every_cell_surfaces_exactly_once(self, records):
        merged = merge_task_records(records)
        assert set(merged) == {r["cell"] for r in records}


class TestMergeThroughFiles:
    """The same invariants via real shard-manifest files on disk."""

    def _write_shards(self, directory, assignment):
        """assignment: list of (worker, epoch, [records])."""
        for index, (worker, epoch, records) in enumerate(assignment):
            manifest = ShardManifest.create(
                directory / f"shard-{index:04d}.e{epoch}.n{index}.jsonl",
                shard=f"shard-{index:04d}", fingerprint="fp",
                worker=worker, epoch=epoch)
            for rec in records:
                if rec["status"] == "done":
                    manifest.record_done(rec["id"], rec["cell"],
                                         rec["attempts"], rec["elapsed"],
                                         rec["result"])
                else:
                    manifest.record_failed(rec["id"], rec["cell"],
                                           rec["attempts"], rec["elapsed"],
                                           rec["error"])
            manifest.finalize()

    @given(records=records_lists, rnd=st.randoms(use_true_random=False))
    def test_file_partitioning_never_changes_the_output(self,
                                                        tmp_path_factory,
                                                        records, rnd):
        # a record's epoch is fixed by the lease that produced it, and
        # one (shard, epoch) journal holds each task id at most once —
        # so the on-disk model is one file per epoch, unique (id,
        # epoch) pairs.  Write the same record set twice with different
        # within-file orderings; the merged manifest bytes must match.
        unique = {}
        for rec in records:
            unique.setdefault((rec["id"], rec["epoch"]), rec)
        by_epoch = {}
        for rec in unique.values():
            by_epoch.setdefault(rec["epoch"], []).append(rec)
        outputs = []
        for round_index in range(2):
            directory = tmp_path_factory.mktemp(f"round{round_index}")
            assignment = []
            for epoch in rnd.sample(sorted(by_epoch), len(by_epoch)):
                bucket = list(by_epoch[epoch])
                rnd.shuffle(bucket)
                assignment.append((f"w{round_index}-{epoch}", epoch,
                                   bucket))
            self._write_shards(directory, assignment)
            merged = merge_task_records(read_shard_records(directory))
            out = directory / "manifest.jsonl"
            write_merged_manifest(out, "fp", {"spec": True}, merged)
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]

    def test_reader_skips_garbage_and_foreign_events(self, tmp_path):
        good = {"event": "task", "id": "a", "cell": "c", "status": "done",
                "attempts": 1, "epoch": 1, "result": {}}
        (tmp_path / "ok.jsonl").write_text(
            json.dumps({"event": "shard"}) + "\n"
            + json.dumps(good) + "\n"
            + "{torn line\n"
            + json.dumps({"event": "shard-done"}) + "\n"
            + json.dumps(["not", "a", "dict"]) + "\n")
        (tmp_path / "empty.jsonl").write_text("")
        records = list(read_shard_records(tmp_path))
        assert records == [good]

    def test_missing_results_dir_yields_nothing(self, tmp_path):
        assert list(read_shard_records(tmp_path / "nope")) == []
