"""The runnable examples must actually run (the fast ones, verbatim)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "reduction:" in output
        assert "dot product = -1654" in output

    def test_custom_workload(self, capsys):
        output = run_example("custom_workload.py", capsys)
        assert "golden check passed" in output
        assert "compiler pass swapped" in output

    def test_extensions(self, capsys):
        output = run_example("extensions.py", capsys)
        assert "static (VLIW)" in output
        assert "58 gates / 6 levels (paper: 58 / 6)" in output
        assert "module steer_lut" in output

    def test_all_examples_present(self):
        names = {path.name for path in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "custom_workload.py", "design_space.py",
                "paper_reproduction.py", "extensions.py"} <= names
