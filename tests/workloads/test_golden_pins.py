"""Pinned kernel results.

Every experiment in this repository is a function of the kernels'
operand streams.  These pins freeze each kernel's dynamic instruction
count and result words at scale 1, so an accidental change to a kernel
(data generator, loop bound, instruction selection) shows up as a test
failure instead of silently shifting the reproduced tables and figures.

If a kernel is changed *deliberately*, re-pin with::

    python -c "from tests.workloads.test_golden_pins import print_pins; print_pins()"
"""

from repro.cpu.golden import run_program
from repro.workloads import all_workloads, workload

import pytest

# (dynamic instructions, first four words at the 'results' symbol)
PINS = {
    "applu": (14714, [3418162797, 1074267337, 0, 0]),
    "apsi": (9624, [1035093556, 1086576251, 0, 0]),
    "cc1": (2217, [1715088904, 0, 0, 0]),
    "compress": (3770, [3865913753, 219, 0, 0]),
    "fpppp": (2469, [22857287, 1114638424, 3132159959, 1154982750]),
    "go": (11794, [140, 384, 0, 0]),
    "hydro2d": (13025, [4008003829, 1079710194, 0, 0]),
    "ijpeg": (20697, [40, 0, 0, 0]),
    "li": (2129, [4294965520, 268436216, 0, 0]),
    "m88ksim": (6110, [246063630, 0, 0, 0]),
    "mgrid": (6762, [666391924, 1080631334, 0, 0]),
    "perl": (2626, [2954945523, 0, 0, 0]),
    "swim": (8915, [0, 1080827904, 0, 0]),
    "tomcatv": (10189, [152347114, 1080394221, 2040570164, 1080373100]),
    "turb3d": (2144, [3716837910, 1078235822, 2455498803, 1081331072]),
    "vortex": (2457, [150, 51776, 0, 0]),
    "wave5": (8098, [0, 1078231384, 0, 3224776999]),
}


def _measure(name):
    program = workload(name).build(1)
    result = run_program(program)
    base = program.symbol_address("results")
    words = [result.memory.load_word(base + 4 * i) for i in range(4)]
    return result.instructions, words


def print_pins():  # pragma: no cover - re-pinning helper
    for load in all_workloads():
        print(f'    "{load.name}": {_measure(load.name)},')


def test_every_workload_is_pinned():
    assert set(PINS) == {w.name for w in all_workloads()}, \
        "new kernel? add a pin (see module docstring)"


@pytest.mark.parametrize("name", sorted(PINS))
def test_pinned_result(name):
    instructions, words = _measure(name)
    expected_instructions, expected_words = PINS[name]
    assert instructions == expected_instructions, \
        f"{name}: dynamic instruction count drifted"
    assert words == expected_words, f"{name}: result words drifted"
