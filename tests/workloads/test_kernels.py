"""Workload kernel tests: every kernel validates against its Python
golden computation on both the in-order and out-of-order engines."""

import pytest

from repro.cpu.golden import run_program
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads, float_suite, integer_suite, workload
from repro.workloads.base import Workload, register

ALL_NAMES = [w.name for w in all_workloads()]


class TestRegistry:
    def test_expected_suites(self):
        assert {w.name for w in integer_suite()} == {
            "compress", "li", "ijpeg", "go", "perl", "cc1", "m88ksim",
            "vortex"}
        assert {w.name for w in float_suite()} == {
            "swim", "mgrid", "applu", "hydro2d", "wave5", "turb3d",
            "apsi", "fpppp", "tomcatv"}

    def test_lookup(self):
        assert workload("compress").kind == "int"
        with pytest.raises(ValueError, match="unknown workload"):
            workload("doom")

    def test_every_workload_names_spec_analogue(self):
        for load in all_workloads():
            assert load.spec_analogue
            assert load.description

    def test_register_rejects_duplicates(self):
        existing = workload("compress")
        with pytest.raises(ValueError, match="duplicate"):
            register(existing)

    def test_register_rejects_bad_kind(self):
        bogus = Workload(name="x", kind="quantum", spec_analogue="",
                         description="", build_source=lambda s: "",
                         check=lambda p, r, s: None)
        with pytest.raises(ValueError, match="kind"):
            register(bogus)

    def test_build_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            workload("compress").build(0)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestKernelCorrectness:
    def test_golden_model(self, name):
        load = workload(name)
        program = load.build(1)
        result = run_program(program)
        assert result.halted
        load.check(program, result, 1)

    def test_out_of_order(self, name):
        load = workload(name)
        program = load.build(1)
        sim = Simulator(program)
        sim.run()

        class Shim:
            memory = sim.memory

        load.check(program, Shim, 1)

    def test_scales_change_work(self, name):
        load = workload(name)
        small = run_program(load.build(1)).instructions
        big = run_program(load.build(2)).instructions
        assert big > small


class TestKernelCharacter:
    """Each kernel must actually exercise the FU classes it claims to."""

    def _issue_counts(self, name):
        load = workload(name)
        sim = Simulator(load.build(1))
        return sim.run().issue_counts

    def test_fp_kernels_use_fpau(self):
        for load in float_suite():
            counts = self._issue_counts(load.name)
            assert counts[FUClass.FPAU] > 0, load.name

    def test_turb3d_is_multiplier_heavy(self):
        counts = self._issue_counts("turb3d")
        assert counts[FUClass.FPMULT] > 100

    def test_applu_uses_divider(self):
        # LU factorisation divides by the pivot
        counts = self._issue_counts("applu")
        assert counts[FUClass.FPMULT] > 0

    def test_ijpeg_uses_integer_multiplier(self):
        counts = self._issue_counts("ijpeg")
        assert counts[FUClass.IMULT] > 500

    def test_wave5_mixes_conversions(self):
        # wave5's particle push runs cvtif/cvtfi on the FPAU
        load = workload("wave5")
        program = load.build(1)
        names = {instr.op.name for instr in program.instructions}
        assert "cvtif" in names and "cvtfi" in names

    def test_int_kernels_have_signed_traffic(self):
        """The integer suites must produce both operand sign values,
        otherwise the steering experiment degenerates (section 4.2)."""
        from repro.analysis.bit_patterns import BitPatternCollector
        collector = BitPatternCollector(FUClass.IALU)
        for load in integer_suite():
            sim = Simulator(load.build(1))
            sim.add_listener(collector)
            sim.run()
        negative_fraction = sum(
            collector.case_frequency(case) for case in (0b01, 0b10, 0b11))
        assert negative_fraction > 0.05
