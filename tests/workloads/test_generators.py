"""Statistical stream generator tests: calibration against Table 1/2."""

import pytest

from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.module_usage import ModuleUsageCollector
from repro.core.info_bits import CASES
from repro.core.statistics import paper_statistics
from repro.isa import encoding
from repro.isa.instructions import FUClass
from repro.workloads.generators import (OperandModel, SyntheticStream,
                                        paper_bit_probs)


class TestOperandModel:
    @pytest.mark.parametrize("fu_class", [FUClass.IALU, FUClass.FPAU])
    @pytest.mark.parametrize("mode", ["iid", "structured"])
    def test_info_bits_always_match_case(self, fu_class, mode):
        import random
        model = OperandModel(fu_class, mode=mode)
        rng = random.Random(3)
        from repro.core.info_bits import scheme_for
        scheme = scheme_for(fu_class)
        for case in CASES:
            for _ in range(50):
                op1 = model.draw(rng, case, 0)
                op2 = model.draw(rng, case, 1)
                assert scheme.case_of(op1, op2) == case

    def test_iid_matches_target_bit_probability(self):
        import random
        model = OperandModel(FUClass.IALU, mode="iid")
        rng = random.Random(7)
        target = paper_bit_probs(FUClass.IALU)[(0b10, 0)]
        ones = sum(encoding.popcount(model.draw(rng, 0b10, 0))
                   for _ in range(3000))
        measured = ones / (3000 * 32)
        assert measured == pytest.approx(target, abs=0.02)

    def test_structured_integers_sign_extended(self):
        import random
        model = OperandModel(FUClass.IALU, mode="structured")
        rng = random.Random(1)
        # structured negatives have long runs of leading ones
        leading = [encoding.leading_sign_bits(model.draw(rng, 0b10, 0))
                   for _ in range(200)]
        assert sum(leading) / len(leading) > 12

    def test_structured_mantissas_trailing_zeros(self):
        import random
        model = OperandModel(FUClass.FPAU, mode="structured")
        rng = random.Random(2)
        trailing = [encoding.trailing_zeros(encoding.mantissa(
            model.draw(rng, 0b00, 0)), 52) for _ in range(200)]
        assert sum(trailing) / len(trailing) > 30

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            OperandModel(FUClass.IALU, mode="chaotic")

    def test_no_paper_probs_for_multipliers(self):
        with pytest.raises(ValueError):
            paper_bit_probs(FUClass.IMULT)


class TestSyntheticStream:
    def test_deterministic_by_seed(self, ialu_stats):
        first = [g.ops[0].op1 for g in
                 SyntheticStream(ialu_stats, seed=9).groups(50)]
        second = [g.ops[0].op1 for g in
                  SyntheticStream(ialu_stats, seed=9).groups(50)]
        assert first == second
        third = [g.ops[0].op1 for g in
                 SyntheticStream(ialu_stats, seed=10).groups(50)]
        assert first != third

    def test_group_widths_bounded(self, ialu_stats):
        for group in SyntheticStream(ialu_stats, num_modules=4,
                                     seed=0).groups(500):
            assert 1 <= len(group.ops) <= 4

    def test_reproduces_case_frequencies(self, ialu_stats):
        """Round trip: generate from Table 1, measure, recover Table 1."""
        collector = BitPatternCollector(FUClass.IALU)
        for group in SyntheticStream(ialu_stats, seed=4).groups(8000):
            collector(group)
        for case in CASES:
            assert collector.case_frequency(case) \
                == pytest.approx(ialu_stats.case_freq(case), abs=0.02)

    def test_reproduces_usage_distribution(self, fpau_stats):
        collector = ModuleUsageCollector()
        for group in SyntheticStream(fpau_stats, seed=4).groups(8000):
            collector(group)
        measured = collector.distribution(FUClass.FPAU)
        expected = fpau_stats.usage_distribution(4)
        for width in range(1, 5):
            assert measured[width] == pytest.approx(expected[width],
                                                    abs=0.02)

    def test_reproduces_bit_probabilities(self, ialu_stats):
        collector = BitPatternCollector(FUClass.IALU)
        for group in SyntheticStream(ialu_stats, seed=4).groups(8000):
            collector(group)
        probs = paper_bit_probs(FUClass.IALU)
        for case in CASES:
            assert collector.merged_bit_prob(case, 0) \
                == pytest.approx(probs[(case, 0)], abs=0.03)
