"""Report rendering and Figure 1 tests."""

import pytest

from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.energy import run_figure4_synthetic
from repro.analysis.figure1 import evaluate_figure1
from repro.analysis.module_usage import ModuleUsageCollector
from repro.analysis.multiplier import run_multiplier_experiment
from repro.analysis.report import (render_figure4,
                                   render_multiplier_swapping,
                                   render_table1, render_table2,
                                   render_table3)
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import workload


@pytest.fixture(scope="module")
def collected():
    ialu = BitPatternCollector(FUClass.IALU)
    fpau = BitPatternCollector(FUClass.FPAU)
    usage = ModuleUsageCollector()
    for name in ("compress", "swim"):
        sim = Simulator(workload(name).build(1))
        for listener in (ialu, fpau, usage):
            sim.add_listener(listener)
        sim.run()
    return ialu, fpau, usage


class TestFigure1:
    def test_alternative_routing_saves_energy(self):
        result = evaluate_figure1()
        assert result.optimal_energy < result.default_energy
        # the paper's chosen alternative saves 57%; the optimum with
        # router swapping is at least that good
        assert result.saving >= 0.57

    def test_without_swap_still_beats_default(self):
        result = evaluate_figure1(allow_swap=False)
        assert 0.0 < result.saving < evaluate_figure1().saving

    def test_modules_distinct(self):
        result = evaluate_figure1()
        assert len(set(result.optimal_modules)) == len(result.optimal_modules)


class TestRendering:
    def test_table1_contains_all_rows(self, collected):
        ialu, fpau, _ = collected
        text = render_table1({FUClass.IALU: ialu, FUClass.FPAU: fpau})
        assert "Table 1" in text
        assert text.count("Yes") == 4
        assert text.count("No") == 4
        assert "(paper)" in text

    def test_table1_without_paper_columns(self, collected):
        ialu, _, _ = collected
        text = render_table1({FUClass.IALU: ialu}, compare_paper=False)
        assert "paper" not in text

    def test_table2(self, collected):
        _, _, usage = collected
        text = render_table2(usage)
        assert "IALU" in text and "FPAU" in text
        assert "Num(I)=4" in text

    def test_table3_and_swapping(self):
        results = run_multiplier_experiment(
            workloads=[workload("ijpeg"), workload("turb3d")], scale=1)
        table = render_table3(results)
        assert "Table 3" in table and "00" in table
        swapping = render_multiplier_swapping(results)
        assert "01 swappable" in swapping

    def test_figure4_render(self):
        panel = run_figure4_synthetic(FUClass.IALU, cycles=500,
                                      schemes=("lut-4", "original"))
        text = render_figure4(panel)
        assert "lut-4" in text
        assert "original" in text
        assert "IALU" in text
