"""Table 1/3 collector tests."""

import pytest

from repro.analysis.bit_patterns import BitPatternCollector
from repro.core.info_bits import CASES
from repro.cpu.trace import IssueGroup, MicroOp
from repro.isa import encoding
from repro.isa.instructions import FUClass, opcode

NEG = encoding.to_unsigned(-1)


def ialu_group(ops, cycle=0):
    return IssueGroup(cycle, FUClass.IALU, ops)


class TestBitPatternCollector:
    def test_classifies_cases_and_commutativity(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([
            MicroOp(opcode("add"), 1, 2),      # case 00, commutative
            MicroOp(opcode("sub"), 1, NEG),    # case 01, non-commutative
            MicroOp(opcode("add"), NEG, NEG),  # case 11, commutative
        ]))
        assert collector.frequency(0b00, True) == pytest.approx(1 / 3)
        assert collector.frequency(0b01, False) == pytest.approx(1 / 3)
        assert collector.frequency(0b11, True) == pytest.approx(1 / 3)
        assert collector.total_ops == 3

    def test_immediate_forms_count_as_non_commutative(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([MicroOp(opcode("addi"), 1, 2)]))
        assert collector.frequency(0b00, False) == 1.0

    def test_bit_probabilities(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([MicroOp(opcode("add"), 0xFFFF, 0)]))
        assert collector.bit_prob(0b00, True, 0) == pytest.approx(16 / 32)
        assert collector.bit_prob(0b00, True, 1) == 0.0

    def test_fp_probabilities_use_mantissa_width(self):
        collector = BitPatternCollector(FUClass.FPAU)
        bits = encoding.make_double(0, 1023, (1 << 52) - 1)
        collector(IssueGroup(0, FUClass.FPAU,
                             [MicroOp(opcode("fadd"), bits, bits)]))
        assert collector.bit_prob(0b11, True, 0) == pytest.approx(1.0)

    def test_single_source_op2_reads_zero(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([MicroOp(opcode("lui"), NEG, 0,
                                      has_two=False)]))
        assert collector.frequency(0b10, False) == 1.0

    def test_ignores_other_classes(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(IssueGroup(0, FUClass.FPAU,
                             [MicroOp(opcode("fadd"), 1, 2)]))
        assert collector.total_ops == 0

    def test_speculative_filter(self):
        strict = BitPatternCollector(FUClass.IALU,
                                     include_speculative=False)
        wrong_path = MicroOp(opcode("add"), 1, 2, speculative=True)
        strict(ialu_group([wrong_path]))
        assert strict.total_ops == 0

    def test_merge(self):
        a = BitPatternCollector(FUClass.IALU)
        b = BitPatternCollector(FUClass.IALU)
        a(ialu_group([MicroOp(opcode("add"), 1, 2)]))
        b(ialu_group([MicroOp(opcode("add"), NEG, NEG)]))
        a.merge(b)
        assert a.total_ops == 2
        assert a.case_frequency(0b11) == 0.5

    def test_merge_rejects_other_class(self):
        a = BitPatternCollector(FUClass.IALU)
        b = BitPatternCollector(FUClass.FPAU)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_table_rows_layout(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([MicroOp(opcode("add"), 1, 2)]))
        rows = collector.table_rows()
        assert len(rows) == 8  # 4 cases x commutativity
        op1, op2, comm, freq, p1, p2 = rows[0]
        assert (op1, op2, comm) == ("0", "0", "Yes")
        assert freq == pytest.approx(100.0)

    def test_to_statistics(self):
        collector = BitPatternCollector(FUClass.IALU)
        collector(ialu_group([MicroOp(opcode("add"), 1, 2)]))
        stats = collector.to_statistics({1: 1.0})
        assert stats.case_freq(0b00) == 1.0
        assert stats.fu_class is FUClass.IALU

    def test_empty_collector_safe(self):
        collector = BitPatternCollector(FUClass.IALU)
        assert collector.frequency(0b00, True) == 0.0
        assert collector.merged_bit_prob(0b00, 0) == 0.0
        for case in CASES:
            assert collector.case_frequency(case) == 0.0
