"""Multiplier swapping experiment tests (Table 3 / section 4.4)."""

import pytest

from repro.analysis.multiplier import run_multiplier_experiment
from repro.isa.instructions import FUClass
from repro.workloads import workload


@pytest.fixture(scope="module")
def results():
    loads = [workload("ijpeg"), workload("turb3d"), workload("perl")]
    return run_multiplier_experiment(workloads=loads, scale=1)


class TestMultiplierExperiment:
    def test_both_multipliers_reported(self, results):
        assert FUClass.IMULT in results and FUClass.FPMULT in results
        assert results[FUClass.IMULT].operations > 0
        assert results[FUClass.FPMULT].operations > 0

    def test_case_fractions_sum_to_one(self, results):
        for result in results.values():
            total = sum(result.case_fraction(case) for case in
                        (0b00, 0b01, 0b10, 0b11))
            assert total == pytest.approx(1.0)

    def test_swappable_fraction_bounded_by_case01(self, results):
        for result in results.values():
            assert result.swappable_01_fraction \
                <= result.case_fraction(0b01) + 1e-9

    def test_popcount_swap_minimises_shift_add_counts(self):
        # exact popcount swapping minimises the shift-add count per op,
        # so under the shift-add activity model (use_booth=False) the
        # aggregate cannot be worse than no swapping
        loads = [workload("ijpeg"), workload("turb3d")]
        shift_add = run_multiplier_experiment(workloads=loads, scale=1,
                                              use_booth=False)
        for result in shift_add.values():
            assert result.adds_reduction("popcount") >= -1e-9

    def test_booth_mode_minimises_booth_adds(self):
        loads = [workload("ijpeg")]
        booth_results = run_multiplier_experiment(workloads=loads, scale=1,
                                                  use_booth=True)
        result = booth_results[FUClass.IMULT]
        assert result.adds_reduction("booth") >= -1e-9
        assert result.adds_reduction("booth") \
            >= result.adds_reduction("info-bit") - 1e-9

    def test_activity_modes_present(self, results):
        for result in results.values():
            assert set(result.activity) \
                == {"none", "info-bit", "popcount", "booth"}

    def test_empty_result_fractions(self):
        from repro.analysis.multiplier import MultiplierExperimentResult
        empty = MultiplierExperimentResult(
            fu_class=FUClass.IMULT, operations=0, case_counts={},
            swappable_01=0,
            activity={m: (0, 0) for m in ("none", "info-bit", "popcount",
                                          "booth")})
        assert empty.case_fraction(0b00) == 0.0
        assert empty.swappable_01_fraction == 0.0
        assert empty.adds_reduction("popcount") == 0.0
