"""Section 4.2 derived value statistics tests."""

import pytest

from repro.analysis.value_stats import (ValueStatsCollector,
                                        render_value_stats)
from repro.core.statistics import paper_statistics
from repro.cpu.trace import IssueGroup, MicroOp
from repro.isa import encoding
from repro.isa.instructions import FUClass, opcode
from repro.workloads import SyntheticStream
from repro.workloads.generators import OperandModel


def int_group(*values):
    ops = [MicroOp(opcode("add"), a, b) for a, b in values]
    return IssueGroup(0, FUClass.IALU, ops)


class TestCollector:
    def test_integer_match_probability(self):
        collector = ValueStatsCollector(FUClass.IALU)
        # +20: sign 0, 30 zero bits of 32 -> match 30/32
        # -20: sign 1, bits are 0xFFFFFFEC -> 29 ones of 32
        collector(int_group((encoding.to_unsigned(20),
                             encoding.to_unsigned(-20))))
        assert collector.match_probability(0) == pytest.approx(30 / 32)
        assert collector.match_probability(1) == pytest.approx(29 / 32)
        assert collector.total_operands == 2

    def test_fp_info_fraction(self):
        collector = ValueStatsCollector(FUClass.FPAU)
        round_bits = encoding.float_to_bits(2.0)      # low4 == 0
        dense_bits = encoding.float_to_bits(2.0000000001)
        group = IssueGroup(0, FUClass.FPAU,
                           [MicroOp(opcode("fadd"), round_bits, dense_bits)])
        collector(group)
        assert collector.info_bit_fraction(0) == 0.5
        assert collector.fp_accidental_full_precision() \
            == pytest.approx(0.5 / 15)

    def test_single_source_counts_one_operand(self):
        collector = ValueStatsCollector(FUClass.IALU)
        group = IssueGroup(0, FUClass.IALU,
                           [MicroOp(opcode("lui"), 5, 0, has_two=False)])
        collector(group)
        assert collector.total_operands == 1

    def test_fp_only_helper_guarded(self):
        with pytest.raises(ValueError):
            ValueStatsCollector(FUClass.IALU).fp_accidental_full_precision()

    def test_empty_safe(self):
        collector = ValueStatsCollector(FUClass.IALU)
        assert collector.match_probability(0) == 0.0
        assert collector.info_bit_fraction(1) == 0.0


class TestAgainstPaperCalibration:
    """On a structured stream calibrated to Table 1, the section 4.2
    qualitative claims must hold."""

    def _collect(self, fu_class):
        stats = paper_statistics(fu_class)
        model = OperandModel(fu_class, mode="structured")
        collector = ValueStatsCollector(fu_class)
        for group in SyntheticStream(stats, operand_model=model,
                                     seed=8).groups(4000):
            collector(group)
        return collector

    def test_integer_sign_predicts_majority(self):
        collector = self._collect(FUClass.IALU)
        # paper: 91.2% and 63.7% — both decisively above chance
        assert collector.match_probability(0) > 0.8
        assert collector.match_probability(1) > 0.6

    def test_fp_low4_zero_predicts_zeros(self):
        collector = self._collect(FUClass.FPAU)
        assert collector.match_probability(0) > 0.7  # paper: 86.5%
        assert 0.0 < collector.fp_genuine_trailing_zero_fraction() \
            < collector.info_bit_fraction(0)

    def test_render(self):
        text = render_value_stats(self._collect(FUClass.IALU),
                                  self._collect(FUClass.FPAU))
        assert "91.2%" in text and "86.5%" in text
