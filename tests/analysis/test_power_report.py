"""Absolute power report tests."""

import pytest

from repro.analysis.energy import run_figure4_synthetic
from repro.analysis.power_report import (absolute_power_rows,
                                         average_power_watts,
                                         render_power_report,
                                         saved_power_watts)
from repro.core.power import PowerParameters
from repro.isa.instructions import FUClass


@pytest.fixture(scope="module")
def panel():
    return run_figure4_synthetic(FUClass.IALU, cycles=1500,
                                 schemes=("lut-4", "original"),
                                 swap_modes=("none", "hw"))


class TestAbsolutePower:
    def test_rows_cover_all_cells(self, panel):
        rows = absolute_power_rows(panel)
        assert len(rows) == len(panel.cells)
        schemes = {(row.scheme, row.swap) for row in rows}
        assert ("original", "none") in schemes

    def test_energy_scales_with_bits(self, panel):
        params = PowerParameters(vdd=1.0, capacitance_per_bit_f=2e-15)
        for row in absolute_power_rows(panel, params):
            expected = 0.5 * 1.0 * 2e-15 * row.switched_bits
            assert row.energy_joules == pytest.approx(expected)
            assert row.energy_per_op_joules > 0

    def test_reductions_match_panel(self, panel):
        rows = {(r.scheme, r.swap): r for r in absolute_power_rows(panel)}
        assert rows[("lut-4", "none")].reduction \
            == pytest.approx(panel.reduction("lut-4", "none"))

    def test_average_and_saved_power(self, panel):
        baseline = average_power_watts(panel, cycles=10_000)
        assert baseline > 0
        saved = saved_power_watts(panel, cycles=10_000,
                                  scheme="lut-4", swap="hw")
        assert 0 < saved < baseline
        assert saved / baseline \
            == pytest.approx(panel.reduction("lut-4", "hw"))

    def test_render(self, panel):
        text = render_power_report(panel, cycles=10_000)
        assert "Absolute power" in text
        assert "lut-4" in text and "mW" in text

    def test_doubling_frequency_doubles_power(self, panel):
        slow = PowerParameters(frequency_hz=1e9)
        fast = PowerParameters(frequency_hz=2e9)
        assert average_power_watts(panel, 1000, params=fast) \
            == pytest.approx(2 * average_power_watts(panel, 1000,
                                                     params=slow))
