"""Per-module load analysis tests."""

import pytest

from repro.analysis.module_load import (LoadTrackingPowerModel, ModuleLoad,
                                        attach_load_tracking, module_load,
                                        render_module_load)
from repro.core import make_policy, paper_statistics
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream


class TestLoadTrackingModel:
    def test_tracks_per_module(self):
        model = LoadTrackingPowerModel(FUClass.IALU, 2)
        model.account(0, 0xF, 0)
        model.account(1, 0x3, 0)
        model.account(0, 0xF, 0)
        assert model.per_module_ops == [2, 1]
        assert model.per_module_bits == [4, 2]
        assert model.switched_bits == 6  # parent accounting intact


class TestModuleLoad:
    def test_shares(self):
        load = ModuleLoad("p", operations=[3, 1], switched_bits=[30, 10])
        assert load.operation_share(0) == 0.75
        assert load.bits_share(1) == 0.25
        assert load.max_bits_share == 0.75
        assert load.imbalance() == pytest.approx(1.5)

    def test_empty(self):
        load = ModuleLoad("p", operations=[0, 0], switched_bits=[0, 0])
        assert load.operation_share(0) == 0.0
        assert load.imbalance() == 1.0


class TestEndToEnd:
    def test_steering_concentrates_activity(self, ialu_stats):
        """The LUT lowers total switching but concentrates it on home
        modules — the redistribution this analysis exists to expose."""
        lut_eval = attach_load_tracking(PolicyEvaluator(
            FUClass.IALU, 4,
            make_policy("lut-4", FUClass.IALU, 4, stats=ialu_stats)))
        fcfs_eval = attach_load_tracking(PolicyEvaluator(
            FUClass.IALU, 4, OriginalPolicy()))
        for group in SyntheticStream(ialu_stats, seed=15).groups(4000):
            lut_eval(group)
            fcfs_eval(group)
        lut = module_load(lut_eval)
        fcfs = module_load(fcfs_eval)
        assert lut.total_bits < fcfs.total_bits          # saves energy
        assert lut.total_operations == fcfs.total_operations
        # FCFS already concentrates ops on module 0 (most cycles are
        # narrow); steering spreads ops by case but keeps coherent
        # streams — verify the analysis exposes a real difference
        assert lut.operations != fcfs.operations

    def test_requires_tracking_model(self, ialu_stats):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        with pytest.raises(TypeError):
            module_load(evaluator)

    def test_render(self, ialu_stats):
        evaluator = attach_load_tracking(PolicyEvaluator(
            FUClass.IALU, 4, OriginalPolicy()))
        for group in SyntheticStream(ialu_stats, seed=3).groups(200):
            evaluator(group)
        text = render_module_load([module_load(evaluator)])
        assert "Per-module activity" in text
        assert "hottest" in text
