"""Figure 4 experiment driver tests (reduced scale)."""

import pytest

from repro.analysis.energy import (chip_level_estimate, measure_statistics,
                                   run_figure4, run_figure4_synthetic)
from repro.core.statistics import paper_statistics
from repro.isa.instructions import FUClass
from repro.workloads import workload


@pytest.fixture(scope="module")
def ialu_panel():
    # two small integer workloads keep the test quick
    loads = [workload("compress"), workload("cc1")]
    return run_figure4(FUClass.IALU, workloads=loads, scale=1,
                       schemes=("1bit-ham", "lut-4", "original"),
                       swap_modes=("none", "hw", "hw+compiler"))


class TestRunFigure4:
    def test_baseline_zero_reduction(self, ialu_panel):
        assert ialu_panel.reduction("original", "none") == 0.0
        assert ialu_panel.baseline_bits > 0

    def test_steering_reduces_energy(self, ialu_panel):
        assert ialu_panel.reduction("lut-4", "none") > 0.0
        assert ialu_panel.reduction("1bit-ham", "none") > 0.0

    def test_onebit_ham_bounds_lut(self, ialu_panel):
        assert ialu_panel.reduction("1bit-ham", "hw") \
            >= ialu_panel.reduction("lut-4", "hw") - 0.02

    def test_all_requested_cells_present(self, ialu_panel):
        for scheme in ("1bit-ham", "lut-4", "original"):
            for mode in ("none", "hw", "hw+compiler"):
                assert (scheme, mode) in ialu_panel.cells

    def test_operation_counts_match_across_cells(self, ialu_panel):
        ops = {cell.operations for key, cell in ialu_panel.cells.items()
               if key[1] in ("none", "hw")}
        assert len(ops) == 1  # every policy saw the same stream

    def test_grid_rows(self, ialu_panel):
        rows = dict(ialu_panel.grid())
        assert "lut-4" in rows
        assert "none" in rows["lut-4"]

    def test_invalid_stats_source(self):
        with pytest.raises(ValueError):
            run_figure4(FUClass.IALU, workloads=[workload("cc1")],
                        stats_source="vibes")


class TestSimulateOnce:
    """The tentpole invariant: exactly one ``Simulator.run()`` per
    program version, however many evaluator sets the panel needs."""

    @pytest.fixture
    def counting(self, monkeypatch):
        import repro.streams as streams_module
        from repro.cpu.simulator import Simulator

        runs = []

        class CountingSimulator(Simulator):
            def run(self):
                runs.append(self.program.name)
                return super().run()

        monkeypatch.setattr(streams_module, "Simulator", CountingSimulator)
        return runs

    def test_one_simulation_per_program_version(self, counting):
        loads = [workload("compress"), workload("li")]
        panel = run_figure4(FUClass.IALU, workloads=loads, scale=1,
                            schemes=("original", "lut-4"),
                            swap_modes=("none", "hw"))
        assert sorted(counting) == ["compress", "li"]
        assert panel.simulations == 2

    def test_compiler_swapped_versions_are_distinct(self, counting):
        loads = [workload("compress")]
        panel = run_figure4(
            FUClass.IALU, workloads=loads, scale=1,
            schemes=("original", "lut-4"),
            swap_modes=("none", "hw", "compiler", "hw+compiler"))
        # the rewritten program is its own version: two sims, not four
        assert len(counting) == 2
        assert sorted(counting) == ["compress", "compress+cswap"]
        assert panel.simulations == 2


class TestTraceCache:
    def test_second_run_simulates_nothing(self, tmp_path, monkeypatch):
        import repro.streams as streams_module
        from repro.cpu.simulator import Simulator

        loads = [workload("compress")]
        kwargs = dict(workloads=loads, scale=1,
                      schemes=("original", "lut-4"),
                      swap_modes=("none", "hw"),
                      trace_cache_dir=str(tmp_path))
        cold = run_figure4(FUClass.IALU, **kwargs)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        assert cold.simulations == 1

        class ExplodingSimulator(Simulator):
            def run(self):
                raise AssertionError("cache hit must not simulate")

        monkeypatch.setattr(streams_module, "Simulator", ExplodingSimulator)
        warm = run_figure4(FUClass.IALU, **kwargs)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)
        assert warm.simulations == 0
        assert warm.cells == cold.cells
        assert warm.per_workload == cold.per_workload

    def test_cache_off_by_default(self, monkeypatch):
        panel = run_figure4(FUClass.IALU, workloads=[workload("compress")],
                            scale=1, schemes=("original",),
                            swap_modes=("none",))
        assert panel.cache_hits == 0
        assert panel.cache_misses == 0
        assert panel.simulations == 1


class TestMeasureStatistics:
    def test_measured_statistics_well_formed(self):
        program = workload("compress").build(1)
        stats, patterns, usage = measure_statistics([program], FUClass.IALU)
        assert sum(stats.case_comm_freq.values()) == pytest.approx(1.0)
        assert sum(stats.usage.values()) == pytest.approx(1.0)
        assert patterns.total_ops > 0
        assert usage.busy_cycles(FUClass.IALU) > 0


class TestSyntheticFigure4:
    def test_paper_calibrated_shape(self):
        panel = run_figure4_synthetic(
            FUClass.IALU, cycles=4000,
            schemes=("full-ham", "lut-4", "lut-2", "original"))
        assert panel.reduction("lut-4") > 0.05
        assert panel.reduction("lut-4") >= panel.reduction("lut-2") - 0.02
        assert panel.reduction("full-ham", "hw") >= panel.reduction("lut-4")

    def test_fpau_swapping_is_weak(self):
        # Figure 4(b): "the FPAU does not benefit much from swapping"
        panel = run_figure4_synthetic(FUClass.FPAU, cycles=4000,
                                      schemes=("lut-4", "original"),
                                      swap_modes=("none", "hw"))
        gain = (panel.reduction("lut-4", "hw")
                - panel.reduction("lut-4", "none"))
        assert abs(gain) < 0.05

    def test_compiler_mode_rejected(self):
        with pytest.raises(ValueError, match="compiler"):
            run_figure4_synthetic(FUClass.IALU,
                                  swap_modes=("none", "hw+compiler"))


class TestChipEstimate:
    def test_blends_by_baseline_weight(self):
        ialu = run_figure4_synthetic(FUClass.IALU, cycles=2000,
                                     schemes=("lut-4", "original"),
                                     swap_modes=("none", "hw"))
        fpau = run_figure4_synthetic(FUClass.FPAU, cycles=2000,
                                     schemes=("lut-4", "original"),
                                     swap_modes=("none", "hw"))
        estimate = chip_level_estimate(ialu, fpau)
        assert 0.0 < estimate < 0.22
        # the paper lands around 4% of total chip power
        assert estimate == pytest.approx(0.04, abs=0.03)


class TestPerWorkloadBreakdown:
    def test_breakdown_sums_to_totals(self, ialu_panel):
        for key, cell in ialu_panel.cells.items():
            total = sum(cells.get(key, 0)
                        for cells in ialu_panel.per_workload.values())
            assert total == cell.switched_bits, key

    def test_workload_reduction(self, ialu_panel):
        for name in ialu_panel.per_workload:
            value = ialu_panel.workload_reduction(name, "lut-4", "hw")
            assert -1.0 < value < 1.0

    def test_render_per_workload(self, ialu_panel):
        from repro.analysis.report import render_figure4_per_workload
        text = render_figure4_per_workload(ialu_panel)
        assert "Per-workload" in text
        for name in ialu_panel.per_workload:
            assert name in text
