"""Table 2 collector tests."""

import pytest

from repro.analysis.module_usage import ModuleUsageCollector
from repro.cpu.trace import IssueGroup, MicroOp
from repro.isa.instructions import FUClass, opcode


def group(width, fu_class=FUClass.IALU, cycle=0):
    ops = [MicroOp(opcode("add"), 1, 2) for _ in range(width)]
    return IssueGroup(cycle, fu_class, ops)


class TestModuleUsageCollector:
    def test_counts_busy_cycles_by_width(self):
        collector = ModuleUsageCollector()
        collector(group(1))
        collector(group(1, cycle=1))
        collector(group(3, cycle=2))
        distribution = collector.distribution(FUClass.IALU)
        assert distribution[1] == pytest.approx(2 / 3)
        assert distribution[3] == pytest.approx(1 / 3)
        assert collector.busy_cycles(FUClass.IALU) == 3

    def test_idle_cycles_not_counted(self):
        collector = ModuleUsageCollector()
        collector(IssueGroup(0, FUClass.IALU, []))
        assert collector.busy_cycles(FUClass.IALU) == 0

    def test_class_filter(self):
        collector = ModuleUsageCollector([FUClass.FPAU])
        collector(group(2, FUClass.IALU))
        collector(group(1, FUClass.FPAU))
        assert collector.busy_cycles(FUClass.IALU) == 0
        assert collector.busy_cycles(FUClass.FPAU) == 1

    def test_overflow_folds_into_max_width(self):
        collector = ModuleUsageCollector()
        collector(group(6))
        assert collector.distribution(FUClass.IALU, max_width=4)[4] == 1.0

    def test_empty_distribution(self):
        collector = ModuleUsageCollector()
        distribution = collector.distribution(FUClass.IALU)
        assert all(value == 0.0 for value in distribution.values())

    def test_merge(self):
        a = ModuleUsageCollector()
        b = ModuleUsageCollector()
        a(group(1))
        b(group(1))
        b(group(2, cycle=1))
        a.merge(b)
        assert a.busy_cycles(FUClass.IALU) == 3
        assert a.distribution(FUClass.IALU)[1] == pytest.approx(2 / 3)

    def test_distribution_sums_to_one(self):
        collector = ModuleUsageCollector()
        for width in (1, 2, 3, 4, 2, 1):
            collector(group(width))
        assert sum(collector.distribution(FUClass.IALU).values()) \
            == pytest.approx(1.0)
