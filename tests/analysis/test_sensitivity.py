"""Profile-transfer sensitivity tests."""

import pytest

from repro.analysis.sensitivity import (SensitivityResult,
                                        profile_transfer_study,
                                        run_sensitivity_suite)
from repro.isa.instructions import FUClass


class TestProfileTransfer:
    @pytest.fixture(scope="class")
    def result(self):
        return profile_transfer_study("m88ksim", FUClass.IALU,
                                      train_scale=1, test_scale=2)

    def test_fields(self, result):
        assert result.workload == "m88ksim"
        assert result.baseline_bits > 0
        assert result.train_scale == 1 and result.test_scale == 2

    def test_swapping_adds_over_steering(self, result):
        # both swap variants should not lose to plain steering by much
        assert result.self_profiled_reduction \
            >= result.unswapped_reduction - 0.02
        assert result.cross_profiled_reduction \
            >= result.unswapped_reduction - 0.02

    def test_transfer_penalty_small(self, result):
        """The paper says cross-input behaviour 'will vary somewhat' —
        it should degrade gracefully, not collapse."""
        assert abs(result.transfer_penalty) < 0.1

    def test_self_profile_at_same_scale_is_zero_penalty(self):
        result = profile_transfer_study("cc1", FUClass.IALU,
                                        train_scale=2, test_scale=2)
        assert result.transfer_penalty == pytest.approx(0.0, abs=1e-12)

    def test_suite_runner(self):
        results = run_sensitivity_suite(FUClass.IALU,
                                        names=["cc1", "perl"],
                                        train_scale=1, test_scale=2)
        assert set(results) <= {"cc1", "perl"}
        for result in results.values():
            assert isinstance(result, SensitivityResult)
