"""CLI smoke tests: every subcommand runs and prints what it promises."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, output


class TestCli:
    def test_workloads(self, capsys):
        code, output = run_cli(capsys, "workloads")
        assert code == 0
        assert "compress" in output and "fpppp" in output

    def test_simulate(self, capsys):
        code, output = run_cli(capsys, "simulate", "li")
        assert code == 0
        assert "architectural check: passed" in output
        assert "IPC" in output

    def test_table1(self, capsys):
        code, output = run_cli(capsys, "table1", "--workloads", "compress",
                               "swim")
        assert code == 0
        assert "Table 1" in output and "(paper)" in output

    def test_table2_no_paper(self, capsys):
        code, output = run_cli(capsys, "table2", "--workloads", "compress",
                               "swim", "--no-paper")
        assert code == 0
        assert "Table 2" in output and "paper" not in output

    def test_table3(self, capsys):
        code, output = run_cli(capsys, "table3", "--workloads", "ijpeg",
                               "turb3d")
        assert code == 0
        assert "Table 3" in output

    def test_figure1(self, capsys):
        code, output = run_cli(capsys, "figure1")
        assert code == 0
        assert "57%" in output

    def test_figure4_synthetic(self, capsys):
        code, output = run_cli(capsys, "figure4", "ialu", "--synthetic",
                               "--cycles", "800")
        assert code == 0
        assert "lut-4" in output

    def test_multiplier(self, capsys):
        code, output = run_cli(capsys, "multiplier", "--workloads", "ijpeg")
        assert code == 0
        assert "swappable" in output

    def test_gates(self, capsys):
        code, output = run_cli(capsys, "gates", "--vector-bits", "4",
                               "--rs-entries", "8")
        assert code == 0
        assert "58 gates, 6 levels" in output

    def test_policies_lists_registered_families(self, capsys):
        code, output = run_cli(capsys, "policies")
        assert code == 0
        for family in ("original", "round-robin", "full-ham", "1bit-ham",
                       "lut-<bits>", "bdd-<bits>"):
            assert family in output
        assert "default CLI policies" in output
        assert "figure-4 grid" in output

    def test_figure4_policies_override(self, capsys):
        code, output = run_cli(capsys, "figure4", "ialu", "--synthetic",
                               "--cycles", "2000",
                               "--policies", "original", "bdd-4")
        assert code == 0
        assert "bdd-4" in output
        assert "lut-8" not in output

    def test_unknown_policy_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "whatever.trace", "--policies", "nope"])
        assert excinfo.value.code == 2
        assert "registered kinds" in capsys.readouterr().err

    def test_trace_and_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "t.gz")
        code, output = run_cli(capsys, "trace", "li", "-o", trace,
                               "--fu", "ialu")
        assert code == 0
        assert "issue groups" in output
        code, output = run_cli(capsys, "replay", trace,
                               "--policies", "original", "lut-4")
        assert code == 0
        assert "original" in output and "lut-4" in output

    def test_asm(self, capsys, tmp_path):
        source = tmp_path / "prog.s"
        source.write_text(".text\nli r1, 41\naddi r1, r1, 1\n"
                          "cvtif f1, r1\nhalt\n")
        code, output = run_cli(capsys, "asm", str(source))
        assert code == 0
        assert "r1  =           42" in output
        assert "42.0" in output

    def test_unknown_fu_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure4", "vpu"])

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("table1", "figure4", "replay", "gates"):
            assert command in help_text

    def test_verilog(self, capsys, tmp_path):
        out = tmp_path / "router.v"
        code, output = run_cli(capsys, "verilog", "--vector-bits", "4",
                               "-o", str(out))
        assert code == 0
        text = out.read_text()
        assert "module steer_lut (" in text
        assert text.count("endmodule") == 3

    def test_value_stats(self, capsys):
        code, output = run_cli(capsys, "value-stats", "--workloads",
                               "compress", "swim")
        assert code == 0
        assert "91.2%" in output  # paper reference column

    def test_sensitivity(self, capsys):
        code, output = run_cli(capsys, "sensitivity", "--workloads",
                               "cc1", "--test-scale", "2")
        assert code == 0
        assert "penalty" in output

    def test_figure4_per_workload(self, capsys):
        code, output = run_cli(capsys, "figure4", "ialu", "--scale", "1",
                               "--per-workload")
        assert code == 0
        assert "Per-workload energy reduction" in output
        assert "compress" in output

    def test_campaign_inline(self, capsys, tmp_path):
        out_dir = tmp_path / "camp"
        code, output = run_cli(capsys, "campaign", "--dir", str(out_dir),
                               "--workloads", "compress", "li",
                               "--policies", "original", "lut-4",
                               "--inline")
        assert code == 0
        assert "2 done, 0 failed" in output
        assert "compress@s1/default/r0" in output
        # every artifact is journaled next to the manifest
        assert (out_dir / "manifest.jsonl").exists()
        assert "Campaign results" in (out_dir / "report.txt").read_text()
        results = json.loads((out_dir / "results.json").read_text())
        assert set(results["tasks"]) == {"compress@s1/default/r0",
                                         "li@s1/default/r0"}

    def test_campaign_resume_skips_journaled_tasks(self, capsys, tmp_path):
        out_dir = tmp_path / "camp"
        argv = ["campaign", "--dir", str(out_dir), "--workloads", "li",
                "--policies", "original", "lut-4", "--inline"]
        code, _ = run_cli(capsys, *argv)
        assert code == 0
        # same grid without --resume refuses to clobber the manifest
        code, _ = run_cli(capsys, *argv)
        assert code == 2
        code, output = run_cli(capsys, *argv, "--resume")
        assert code == 0
        assert "1 already journaled" in output

    def test_campaign_failed_task_sets_exit_code(self, capsys, tmp_path):
        out_dir = tmp_path / "camp"
        code, output = run_cli(capsys, "campaign", "--dir", str(out_dir),
                               "--workloads", "ijpeg",
                               "--policies", "original",
                               "--watchdog", "6", "--retries", "0",
                               "--inline")
        assert code == 1
        assert "FAILED" in output and "DeadlockDetected" in output

    def test_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_record_and_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "compress.trace.gz")
        code, output = run_cli(capsys, "record", "compress", "-o", trace,
                               "--fu", "ialu")
        assert code == 0
        assert "issue groups" in output
        assert "trace v2" in output and "config" in output
        code, output = run_cli(capsys, "replay", trace,
                               "--policies", "original", "lut-4")
        assert code == 0
        assert "original" in output and "lut-4" in output

    def test_figure4_cache_dir_second_run_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        argv = ("figure4", "ialu", "--scale", "1",
                "--workloads", "compress", "--cache-dir", cache)
        code = main(list(argv))
        first = capsys.readouterr()
        assert code == 0
        assert "misses" in first.err and "0 hits" in first.err

        code = main(list(argv))
        second = capsys.readouterr()
        assert code == 0
        # cache stats live on stderr; stdout is byte-identical
        assert "0 misses" in second.err and "0 simulations" in second.err
        assert second.out == first.out

    def test_campaign_no_trace_cache(self, capsys, tmp_path):
        out_dir = tmp_path / "camp"
        code, output = run_cli(capsys, "campaign", "--dir", str(out_dir),
                               "--workloads", "li",
                               "--policies", "original",
                               "--inline", "--no-trace-cache")
        assert code == 0
        assert not (out_dir / "trace-cache").exists()
        results = json.loads((out_dir / "results.json").read_text())
        record = results["tasks"]["li@s1/default/r0"]
        assert record["result"]["trace_cache"] == "off"

    def test_stats(self, capsys):
        code, output = run_cli(capsys, "stats", "--workload", "li",
                               "--interval", "200",
                               "--policies", "original", "lut-4")
        assert code == 0
        assert "retired" in output and "steer.ialu.original.ops" in output
        assert "samples" in output

    def test_stats_jsonl(self, capsys, tmp_path):
        series = tmp_path / "series.jsonl"
        code, output = run_cli(capsys, "stats", "--workload", "li",
                               "--interval", "100",
                               "--jsonl", str(series))
        assert code == 0
        rows = [json.loads(line) for line in
                series.read_text().strip().splitlines()]
        assert len(rows) >= 2
        assert rows[0]["cycle"] == 100
        assert all("ipc" in row for row in rows[1:])

    def test_trace_export(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        code, output = run_cli(capsys, "trace-export", "--workload", "li",
                               "-o", str(out), "--interval", "100")
        assert code == 0
        assert "perfetto" in output.lower()
        from repro.telemetry import validate_chrome_trace
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "M", "C"} <= phases

    def test_faultsweep(self, capsys, tmp_path):
        out = tmp_path / "curve.json"
        code, output = run_cli(capsys, "faultsweep", "li",
                               "--rates", "0.0", "0.1",
                               "-o", str(out))
        assert code == 0
        assert "fault rate" in output.lower()
        curve = json.loads(out.read_text())["curve"]
        assert set(curve) == {"0.0", "0.1"}
