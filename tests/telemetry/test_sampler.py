"""Time-series sampler: deltas, derived rates, JSONL output."""

import io
import json

import pytest

from repro.telemetry import TimeSeriesSampler
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.session import TelemetrySession


class TestSampling:
    def test_rows_carry_cumulative_and_delta(self):
        sampler = TimeSeriesSampler(10)
        sampler.sample(10, {"retired": 25})
        row = sampler.sample(20, {"retired": 40})
        assert row["retired"] == 40
        assert row["d_retired"] == 15
        assert row["ipc"] == pytest.approx(1.5)

    def test_wrong_path_fraction(self):
        sampler = TimeSeriesSampler(10)
        sampler.sample(10, {"executed": 100, "squashed": 0})
        row = sampler.sample(20, {"executed": 300, "squashed": 50})
        assert row["wrong_path_frac"] == pytest.approx(0.25)

    def test_case_share_swap_rate_and_module_shares(self):
        sampler = TimeSeriesSampler(5)
        counters = {
            "steer.ialu.lut.ops": 80,
            "steer.ialu.lut.case00": 40,
            "steer.ialu.lut.case11": 8,
            "steer.ialu.lut.swaps": 16,
            "steer.ialu.lut.module.0.bits": 300,
            "steer.ialu.lut.module.1.bits": 100,
        }
        row = sampler.sample(5, counters)
        assert row["steer.ialu.lut.case00_share"] == pytest.approx(0.5)
        assert row["steer.ialu.lut.case11_share"] == pytest.approx(0.1)
        assert row["steer.ialu.lut.swap_rate"] == pytest.approx(0.2)
        assert row["steer.ialu.lut.module.0.bits_share"] == \
            pytest.approx(0.75)
        assert row["steer.ialu.lut.module.1.bits_share"] == \
            pytest.approx(0.25)

    def test_shares_use_interval_deltas_not_cumulatives(self):
        sampler = TimeSeriesSampler(5)
        sampler.sample(5, {"p.ops": 100, "p.case00": 100})
        row = sampler.sample(10, {"p.ops": 200, "p.case00": 120})
        # over the second interval only 20 of 100 ops were case 00
        assert row["p.case00_share"] == pytest.approx(0.2)

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)

    def test_gauges_pass_through(self):
        sampler = TimeSeriesSampler(5)
        row = sampler.sample(5, {}, {"rob": 42, "rs.ialu": 3})
        assert row["rob"] == 42
        assert row["rs.ialu"] == 3


class TestJsonl:
    def test_live_stream_writes_one_json_line_per_row(self):
        stream = io.StringIO()
        sampler = TimeSeriesSampler(10, stream=stream)
        sampler.sample(10, {"retired": 5})
        sampler.sample(20, {"retired": 9})
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["d_retired"] == 4

    def test_write_jsonl_file(self, tmp_path):
        sampler = TimeSeriesSampler(10)
        sampler.sample(10, {"retired": 5})
        sampler.sample(20, {"retired": 9})
        path = tmp_path / "series.jsonl"
        assert sampler.write_jsonl(path) == 2
        rows = [json.loads(line) for line in
                path.read_text().strip().splitlines()]
        assert [row["cycle"] for row in rows] == [10, 20]


class TestSessionPlumbing:
    def test_collectors_feed_samples_and_summary(self):
        session = TelemetrySession(TelemetryConfig(sample_interval=10))
        session.registry.inc("own", 3)
        session.add_collector(lambda: {"pulled": 7})
        row = session.take_sample(10)
        assert row["own"] == 3 and row["pulled"] == 7
        summary = session.summary()
        assert summary["metrics"]["counters"] == {"own": 3, "pulled": 7}
        assert summary["sample_count"] == 1

    def test_disabled_session_has_null_registry_and_no_sampler(self):
        session = TelemetrySession(TelemetryConfig(metrics=False))
        assert session.enabled is False
        assert session.take_sample(10) is None
        assert session.registry.enabled is False

    def test_chrome_trace_requires_trace_events(self):
        session = TelemetrySession(TelemetryConfig())
        with pytest.raises(ValueError):
            session.chrome_trace()

    def test_config_validation_and_round_trip(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval=-1)
        with pytest.raises(ValueError):
            TelemetryConfig(trace_buffer=0)
        config = TelemetryConfig(sample_interval=50, trace_events=True)
        assert TelemetryConfig.from_dict(config.to_dict()) == config
        assert config.enabled
        assert not TelemetryConfig(metrics=False).enabled
