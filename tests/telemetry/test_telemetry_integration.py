"""Telemetry wired through the simulator, steering, and campaign layers."""

import json

import pytest

from repro.core.steering import (OriginalPolicy, PolicyEvaluator,
                                 RoundRobinPolicy,
                                 SharedEvaluationCoordinator)
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import DiagnosticSnapshot, Simulator
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass
from repro.runner.campaign import TaskSpec, execute_task
from repro.telemetry import (MetricsRegistry, TelemetryConfig,
                             TelemetrySession, validate_chrome_trace)
from repro.workloads import workload

FULL = TelemetryConfig(metrics=True, sample_interval=50,
                       trace_events=True, trace_buffer=1024)


def run_workload(name="compress", scale=40, telemetry=None, config=None):
    sim = Simulator(workload(name).build(scale), config=config,
                    telemetry=telemetry)
    coordinator = SharedEvaluationCoordinator(FUClass.IALU)
    coordinator.add(PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy(),
                                    telemetry=telemetry))
    coordinator.add(PolicyEvaluator(FUClass.IALU, 4, RoundRobinPolicy(),
                                    telemetry=telemetry))
    sim.add_listener(coordinator)
    result = sim.run()
    coordinator.finalize()
    return sim, result, coordinator


class TestBitIdentical:
    def test_simulation_identical_with_telemetry_on_vs_off(self):
        """Recording must never perturb the simulated machine: same
        cycles, same architectural state, same issue stream, same
        policy energy accounting."""
        sim_off, off, coord_off = run_workload()
        session = TelemetrySession(FULL)
        sim_on, on, coord_on = run_workload(telemetry=session)

        assert off.cycles == on.cycles
        assert off.retired_instructions == on.retired_instructions
        assert off.issue_counts == on.issue_counts
        assert off.squashed_ops == on.squashed_ops
        assert off.branch_mispredictions == on.branch_mispredictions
        assert sim_off.registers == sim_on.registers
        for t_off, t_on in zip(coord_off.totals(), coord_on.totals()):
            assert t_off.switched_bits == t_on.switched_bits
            assert t_off.operations == t_on.operations

    def test_config_knob_builds_session(self):
        config = MachineConfig(telemetry=TelemetryConfig(sample_interval=64))
        sim = Simulator(workload("compress").build(20), config=config)
        sim.run()
        assert sim.telemetry is not None
        assert sim.telemetry.samples
        assert sim.telemetry.samples[0]["cycle"] == 64

    def test_disabled_telemetry_config_leaves_sim_bare(self):
        config = MachineConfig(telemetry=TelemetryConfig(metrics=False))
        sim = Simulator(workload("compress").build(10), config=config)
        assert sim.telemetry is None


class TestRunRecording:
    def test_counters_samples_and_trace(self):
        session = TelemetrySession(FULL)
        _sim, result, _coord = run_workload(telemetry=session)

        counters = session.collect_counters()
        assert counters["retired"] == result.retired_instructions
        assert counters["executed"] == result.executed_ops
        assert counters["squashed"] == result.squashed_ops
        assert counters["issue.ialu"] == result.issue_counts[FUClass.IALU]
        assert counters["sim.cycles"] == result.cycles

        # per-evaluator steering counters: case mix sums to ops seen
        ops = counters["steer.ialu.original.ops"]
        cases = sum(counters[f"steer.ialu.original.case{c}"]
                    for c in ("00", "01", "10", "11"))
        assert ops == cases > 0
        # per-module bits sum to the evaluator's switched-bit total
        module_bits = sum(v for k, v in counters.items()
                          if k.startswith("steer.ialu.original.module.")
                          and k.endswith(".bits"))
        assert module_bits == counters["steer.ialu.original.bits"]

        # time series: final row matches the final counters exactly
        last = session.samples[-1]
        assert last["retired"] == result.retired_instructions
        assert 0 < last["ipc"] < 4.0

        # the trace exports valid Chrome JSON straight from a real run
        payload = session.chrome_trace("compress")
        assert validate_chrome_trace(payload) == []
        json.dumps(payload)

    def test_trace_ring_keeps_newest_closed_spans(self):
        session = TelemetrySession(TelemetryConfig(trace_events=True,
                                                   trace_buffer=64))
        run_workload(scale=20, telemetry=session)
        tracer = session.tracer
        assert len(tracer.spans) == 64
        assert tracer.dropped_spans > 0
        seqs = tracer.span_seqs()
        assert len(set(seqs)) == 64
        # the ring holds spans in close order: end cycles never go back
        ends = [span[7] for span in tracer.spans]
        assert ends == sorted(ends)

    def test_issue_width_histogram_observes_only_issuing_cycles(self):
        session = TelemetrySession(TelemetryConfig())
        _sim, result, _ = run_workload(telemetry=session, scale=20)
        hist = session.registry.histogram("issue.ialu.width",
                                          (1, 2, 3, 4, 6, 8))
        assert hist.sum == result.issue_counts[FUClass.IALU]
        assert hist.counts[-1] == 0  # never wider than the machine


class TestSnapshotFromGauges:
    def test_snapshot_and_gauges_agree(self):
        sim = Simulator(workload("compress").build(10))
        gauges = sim.pipeline_gauges(0)
        snapshot = DiagnosticSnapshot.from_gauges(gauges)
        assert snapshot.to_dict() == sim._snapshot(0).to_dict()

    def test_snapshot_shape_unchanged(self):
        """The JSON shape journaled by the campaign runner is stable."""
        sim = Simulator(workload("compress").build(10))
        payload = sim._snapshot(123, 100).to_dict()
        assert set(payload) == {
            "cycle", "retired_instructions", "cycles_since_retire",
            "rob_occupancy", "rob_limit", "oldest_seq", "oldest_op",
            "oldest_state", "oldest_address", "oldest_waiting_tags",
            "store_queue_depth", "rs_occupancy", "module_busy_until",
            "events_pending", "pc", "fetch_stalled_until"}
        assert set(payload["rs_occupancy"]) == {
            "ialu", "imult", "fpau", "fpmult", "lsu"}
        assert payload["cycle"] == 123
        assert payload["cycles_since_retire"] == 23

    def test_mid_run_snapshot_sees_oldest_entry(self):
        program = assemble(".text\nmult r1, r2, r3\nhalt")
        sim = Simulator(program)
        # dispatch only: run zero cycles by snapshotting fresh state,
        # then step the machine manually through its public run loop by
        # using a tiny watchdog-free config is overkill — instead verify
        # the gauges reflect live ROB content after a failed run
        gauges = sim.pipeline_gauges(0)
        assert gauges["rob_occupancy"] == 0
        assert "oldest_op" not in gauges


class TestCampaignTelemetry:
    def task(self, task_id="t", workload_name="compress"):
        return TaskSpec(task_id=task_id, workload=workload_name, scale=10,
                        config_name="default", config={},
                        policies=("original", "round-robin"))

    def test_execute_task_carries_telemetry_summary(self):
        outcome = execute_task(self.task())
        summary = outcome["telemetry"]
        assert summary["config"]["metrics"] is True
        counters = summary["metrics"]["counters"]
        assert counters["retired"] == outcome["retired"]
        assert counters["sim.cycles"] == outcome["cycles"]
        assert counters["steer.ialu.original.ops"] > 0
        assert 0.0 <= outcome["wrong_path_frac"] < 1.0
        json.dumps(outcome)  # manifest-safe

    def test_task_summaries_merge_across_processes(self):
        """Fold two workers' summaries exactly as an aggregator would:
        through JSON text, in either order, counters add."""
        a = execute_task(self.task("a"))["telemetry"]["metrics"]
        b = execute_task(self.task("b", "go"))["telemetry"]["metrics"]
        a = json.loads(json.dumps(a))
        b = json.loads(json.dumps(b))
        ab = MetricsRegistry.merge_all([a, b]).to_dict()
        ba = MetricsRegistry.merge_all([b, a]).to_dict()
        assert ab == ba
        assert ab["counters"]["retired"] == (a["counters"]["retired"]
                                             + b["counters"]["retired"])
