"""Metrics registry: counters, gauges, histograms, merge semantics."""

import itertools
import json

import pytest

from repro.telemetry import (DEFAULT_BUCKETS, MetricsRegistry, NULL_REGISTRY,
                             NullRegistry, format_metrics)


def make_registry(counter_values, gauge_values=(), hist_values=()):
    registry = MetricsRegistry()
    for name, value in counter_values:
        registry.counter(name).inc(value)
    for name, value in gauge_values:
        registry.gauge(name).high_water(value)
    for value in hist_values:
        registry.histogram("h", (1, 2, 4)).observe(value)
    return registry


class TestCountersAndGauges:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(5)
        assert registry.counter_values() == {"a.b": 6}

    def test_counter_identity_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_gauge_set_and_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.high_water(3)   # lower: ignored
        assert gauge.value == 7
        gauge.high_water(11)
        assert gauge.value == 11

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")
        with pytest.raises(ValueError):
            registry.histogram("n")


class TestHistogramBuckets:
    def test_edges_are_inclusive_upper_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1, 2, 4))
        # bucket 0: x <= 1; bucket 1: 1 < x <= 2; bucket 2: 2 < x <= 4;
        # bucket 3 (overflow): x > 4
        for value in (0, 1):
            hist.observe(value)
        hist.observe(2)
        for value in (3, 4):
            hist.observe(value)
        for value in (5, 100):
            hist.observe(value)
        assert hist.counts == [2, 1, 2, 2]
        assert hist.total == 7
        assert hist.sum == 115
        assert hist.mean == pytest.approx(115 / 7)

    def test_exact_edge_values_land_in_their_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", (1, 2, 4))
        for edge in (1, 2, 4):
            hist.observe(edge)
        assert hist.counts == [1, 1, 1, 0]

    def test_edges_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", (1, 1, 2))
        with pytest.raises(ValueError):
            registry.histogram("bad2", (4, 2))
        with pytest.raises(ValueError):
            registry.histogram("bad3", ())

    def test_reregistration_with_other_edges_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 2, 3))
        assert registry.histogram("h", (1, 2)).edges == (1, 2)

    def test_default_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.edges == DEFAULT_BUCKETS
        assert len(hist.counts) == len(DEFAULT_BUCKETS) + 1


class TestMergeSemantics:
    def payloads(self):
        a = make_registry([("c", 1), ("only_a", 5)], [("g", 3)],
                          [0, 2]).to_dict()
        b = make_registry([("c", 10)], [("g", 9)], [1, 5]).to_dict()
        c = make_registry([("c", 100), ("only_c", 7)], [("g", 6)],
                          [4]).to_dict()
        return a, b, c

    def test_merge_adds_counters_max_gauges_adds_buckets(self):
        a, b, _ = self.payloads()
        merged = MetricsRegistry.merge_all([a, b]).to_dict()
        assert merged["counters"] == {"c": 11, "only_a": 5}
        assert merged["gauges"] == {"g": 9}
        assert merged["histograms"]["h"]["counts"] == [2, 1, 0, 1]
        assert merged["histograms"]["h"]["total"] == 4
        assert merged["histograms"]["h"]["sum"] == 8

    def test_merge_associative_and_commutative_any_order(self):
        """Campaign aggregation may fold worker payloads in any grouping
        and order; every permutation and grouping must agree."""
        payloads = self.payloads()
        reference = MetricsRegistry.merge_all(payloads).to_dict()
        for perm in itertools.permutations(payloads):
            # left fold
            left = MetricsRegistry()
            for payload in perm:
                left.merge(payload)
            assert left.to_dict() == reference
            # right-heavy grouping: a + (b + c)
            right_inner = MetricsRegistry.merge_all(perm[1:])
            right = MetricsRegistry.merge_all([perm[0],
                                               right_inner.to_dict()])
            assert right.to_dict() == reference

    def test_merge_across_json_round_trip(self):
        """Exactly what multi-process campaigns do: summaries travel
        as JSON text through the manifest, then merge."""
        payloads = [json.loads(json.dumps(p)) for p in self.payloads()]
        merged = MetricsRegistry.merge_all(payloads).to_dict()
        assert merged["counters"]["c"] == 111
        assert merged["gauges"]["g"] == 9

    def test_merge_registry_objects_directly(self):
        a = make_registry([("c", 2)])
        b = make_registry([("c", 3)])
        assert a.merge(b).counter_values() == {"c": 5}

    def test_merge_mismatched_histogram_edges_rejected(self):
        a = make_registry([], hist_values=[1])
        bad = {"histograms": {"h": {"edges": [10, 20], "counts": [0, 0, 0],
                                    "total": 0, "sum": 0}}}
        with pytest.raises(ValueError):
            a.merge(bad)

    def test_from_dict_round_trip(self):
        original = make_registry([("c", 4)], [("g", 2)], [1, 3])
        clone = MetricsRegistry.from_dict(original.to_dict())
        assert clone.to_dict() == original.to_dict()


class TestNullRegistry:
    def test_null_sink_records_nothing(self):
        null = NullRegistry()
        null.counter("c").inc(100)
        null.gauge("g").set(5)
        null.gauge("g").high_water(5)
        null.histogram("h").observe(3)
        null.inc("c2", 7)
        payload = null.to_dict()
        assert payload == {"counters": {}, "gauges": {}, "histograms": {}}
        assert null.enabled is False

    def test_shared_null_registry_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True

    def test_null_merge_is_noop(self):
        null = NullRegistry()
        null.merge({"counters": {"c": 5}})
        assert null.counter_values() == {}


class TestFormatting:
    def test_format_metrics_renders_every_kind(self):
        registry = make_registry([("ops", 12)], [("rob", 30)], [1, 5])
        text = format_metrics(registry, extra_counters={"extra": 9},
                              title="t")
        assert "ops" in text and "12" in text
        assert "rob" in text and "30" in text
        assert "extra" in text
        assert "n=2" in text
