"""Pipeline tracer ring buffer and Chrome trace-event export."""

import json

import pytest

from repro.telemetry import (FLUSHED, INFLIGHT, PipelineTracer, RETIRED,
                             chrome_trace, ensure_valid_chrome_trace,
                             validate_chrome_trace)


def record_op(tracer, seq, fu_index=0, dispatch=0):
    tracer.dispatched(seq, "add", 100 + seq, fu_index, dispatch)
    tracer.issued(seq, dispatch + 1)
    tracer.completed(seq, dispatch + 2)
    tracer.retired(seq, dispatch + 3)


class TestRingBuffer:
    def test_eviction_keeps_newest_in_order(self):
        """Capacity 4, six spans: the two oldest are evicted, retained
        spans stay in close order, and the drop counter is exact."""
        tracer = PipelineTracer(capacity=4)
        for seq in range(6):
            record_op(tracer, seq, dispatch=seq)
        assert tracer.span_seqs() == [2, 3, 4, 5]
        assert tracer.dropped_spans == 2
        assert len(tracer) == 4

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            PipelineTracer(capacity=0)

    def test_span_records_all_stage_cycles(self):
        tracer = PipelineTracer(capacity=8)
        tracer.dispatched(7, "mult", 42, 1, 10)
        tracer.issued(7, 12)
        tracer.completed(7, 15)
        tracer.retired(7, 16)
        (seq, name, address, fu_index, dispatch, issue, complete, end,
         state) = tracer.spans[0]
        assert (seq, name, address, fu_index) == (7, "mult", 42, 1)
        assert (dispatch, issue, complete, end) == (10, 12, 15, 16)
        assert state == RETIRED

    def test_flushed_and_inflight_states(self):
        tracer = PipelineTracer(capacity=8)
        tracer.dispatched(0, "add", 1, 0, 0)
        tracer.flushed(0, 4)
        tracer.dispatched(1, "sub", 2, 0, 2)
        tracer.finish(9)
        states = {span[0]: span[8] for span in tracer.spans}
        assert states == {0: FLUSHED, 1: INFLIGHT}

    def test_finish_closes_in_seq_order(self):
        tracer = PipelineTracer(capacity=8)
        for seq in (5, 1, 3):
            tracer.dispatched(seq, "op", None, 0, 0)
        tracer.finish(10)
        assert tracer.span_seqs() == [1, 3, 5]

    def test_unknown_seq_hooks_ignored(self):
        tracer = PipelineTracer(capacity=4)
        tracer.issued(99, 1)
        tracer.completed(99, 2)
        tracer.retired(99, 3)
        assert len(tracer) == 0

    def test_module_assignment_events_ring(self):
        tracer = PipelineTracer(capacity=2)
        for cycle in range(3):
            tracer.module_assigned(cycle, "ialu", "lut-4bit",
                                   (0, 1), (False, True))
        assert tracer.dropped_events == 1
        assert [e["cycle"] for e in tracer.events] == [1, 2]
        assert tracer.events[0]["swapped"] == [False, True]


class TestChromeExport:
    def build(self):
        tracer = PipelineTracer(capacity=16)
        tracer.fu_names = ("ialu", "imult")
        record_op(tracer, 0, fu_index=0, dispatch=0)
        record_op(tracer, 1, fu_index=0, dispatch=1)  # overlaps seq 0
        record_op(tracer, 2, fu_index=1, dispatch=5)
        tracer.dispatched(3, "beq", 200, 0, 6)
        tracer.flushed(3, 8)
        tracer.module_assigned(1, "ialu", "lut-4bit", (2, 0), (False, False))
        return tracer

    def test_export_is_schema_valid_and_json_serialisable(self):
        payload = chrome_trace(self.build(), "unit",
                               samples=[{"cycle": 4, "ipc": 1.5, "rob": 9}])
        assert validate_chrome_trace(payload) == []
        ensure_valid_chrome_trace(payload)
        json.dumps(payload)  # must be pure JSON data

    def test_overlapping_spans_get_distinct_lanes(self):
        payload = chrome_trace(self.build())
        slices = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e["pid"] == 1]
        by_seq = {e["args"]["seq"]: e for e in slices}
        assert by_seq[0]["tid"] != by_seq[1]["tid"]

    def test_flushed_span_has_instant_marker(self):
        payload = chrome_trace(self.build())
        instants = [e for e in payload["traceEvents"]
                    if e["ph"] == "i" and e["name"] == "flush"]
        assert len(instants) == 1
        assert instants[0]["args"]["seq"] == 3

    def test_steering_and_counter_tracks_present(self):
        payload = chrome_trace(self.build(),
                               samples=[{"cycle": 4, "ipc": 1.5, "rob": 9}])
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "M", "i", "C"} <= phases
        steer = [e for e in payload["traceEvents"]
                 if e.get("cat") == "steer"]
        assert steer and steer[0]["args"]["modules"] == [2, 0]

    def test_metadata_names_processes(self):
        payload = chrome_trace(self.build())
        names = {e["pid"]: e["args"]["name"]
                 for e in payload["traceEvents"] if e["ph"] == "M"}
        assert names[1] == "FU ialu"
        assert names[2] == "FU imult"

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["'traceEvents' must be a list"]
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 1, "pid": 1, "tid": 0},  # no dur
            {"name": "x", "ph": "Q", "ts": 1, "pid": 1, "tid": 0},  # phase
            {"name": "x", "ph": "i", "ts": -4, "pid": 1, "tid": 0},  # ts
            {"name": "x", "ph": "C", "ts": 1, "pid": 1, "tid": 0},  # args
            {"ph": "i", "ts": 1, "pid": "p", "tid": 0},  # name + pid
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 6
        with pytest.raises(ValueError):
            ensure_valid_chrome_trace(bad)
