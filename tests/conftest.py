"""Shared fixtures for the test suite."""

import pytest
from hypothesis import HealthCheck, settings

from repro.core.statistics import paper_statistics
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass

# deterministic property testing: same examples on every run
settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


SUM_LOOP = """
.data
arr: .word 5, -3, 8, 1, -9, 2, 7, -4
results: .space 8
.text
main:
    la   r2, arr
    li   r1, 8
    li   r4, 0
loop:
    lw   r3, 0(r2)
    add  r4, r4, r3
    addi r2, r2, 4
    addi r1, r1, -1
    bne  r1, r0, loop
    la   r5, results
    sw   r4, 0(r5)
    halt
"""

FP_KERNEL = """
.data
xs: .double 1.5, -2.25, 0.5, 3.0
consts: .double 2.0
results: .space 8
.text
main:
    la   r2, xs
    la   r3, consts
    ld   f2, 0(r3)
    li   r4, 4
loop:
    ld   f1, 0(r2)
    fmul f3, f1, f2
    fadd f10, f10, f3
    addi r2, r2, 8
    addi r4, r4, -1
    bne  r4, r0, loop
    la   r5, results
    sd   f10, 0(r5)
    halt
"""


@pytest.fixture
def sum_program():
    return assemble(SUM_LOOP, name="sum-loop")


@pytest.fixture
def fp_program():
    return assemble(FP_KERNEL, name="fp-kernel")


@pytest.fixture
def ialu_stats():
    return paper_statistics(FUClass.IALU)


@pytest.fixture
def fpau_stats():
    return paper_statistics(FUClass.FPAU)
