"""Packed-sidecar persistence: refusal, degradation, round-trip.

Mirrors the trace reader's contract: unknown *future* pack versions
are refused outright, truncation and corruption raise
:class:`PackFormatError` (never crash with anything else), and the
engine layer degrades every such failure to a streaming re-pack.
"""

import struct

import pytest
from hypothesis import given, settings

from repro.batch import (MAGIC, PACK_VERSION, PackFormatError, batch_drive,
                         load_sidecar, pack_stream, packed_cached,
                         sidecar_path, write_sidecar)
from repro.batch.sidecar import _PREFIX
from repro.cpu.config import MachineConfig
from repro.streams import LiveSource, capture
from repro.workloads import workload
from tests.batch.test_pack_roundtrip import (_assert_streams_equal,
                                             random_streams)


def _packed_compress():
    memory = capture(LiveSource(workload("compress").build(1)))
    return list(memory.groups())


@pytest.fixture(scope="module")
def compress_groups():
    return _packed_compress()


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(random_streams())
    def test_disk_round_trip_every_field(self, tmp_path_factory, groups):
        path = tmp_path_factory.mktemp("packs") / "stream.pack"
        write_sidecar(path, pack_stream(groups), config_fingerprint="cfg")
        loaded = load_sidecar(path, expected_config="cfg")
        _assert_streams_equal(groups, list(loaded.iter_groups()))

    def test_mmap_and_copy_loads_agree(self, tmp_path, compress_groups):
        path = tmp_path / "compress.pack"
        write_sidecar(path, pack_stream(compress_groups))
        mapped = load_sidecar(path, use_mmap=True)
        copied = load_sidecar(path, use_mmap=False)
        _assert_streams_equal(list(mapped.iter_groups()),
                              list(copied.iter_groups()))


class TestRefusal:
    def _write(self, path, groups):
        write_sidecar(path, pack_stream(groups), config_fingerprint="cfg")
        return path.read_bytes()

    def test_future_version_refused(self, tmp_path, compress_groups):
        path = tmp_path / "future.pack"
        raw = self._write(path, compress_groups)
        _, _, header_len = _PREFIX.unpack(raw[:_PREFIX.size])
        path.write_bytes(_PREFIX.pack(MAGIC, PACK_VERSION + 1, header_len)
                         + raw[_PREFIX.size:])
        with pytest.raises(PackFormatError, match="unsupported pack version"):
            load_sidecar(path)

    def test_bad_magic_refused(self, tmp_path, compress_groups):
        path = tmp_path / "foreign.pack"
        raw = self._write(path, compress_groups)
        path.write_bytes(b"NOPE" + raw[4:])
        with pytest.raises(PackFormatError, match="bad magic"):
            load_sidecar(path)

    def test_truncations_always_packformaterror(self, tmp_path,
                                               compress_groups):
        path = tmp_path / "trunc.pack"
        raw = self._write(path, compress_groups)
        # every prefix of the file must fail loudly but cleanly
        for cut in (0, 3, _PREFIX.size, _PREFIX.size + 10,
                    len(raw) // 2, len(raw) - 1):
            path.write_bytes(raw[:cut])
            with pytest.raises(PackFormatError):
                load_sidecar(path)

    def test_corrupt_header_refused(self, tmp_path, compress_groups):
        path = tmp_path / "corrupt.pack"
        raw = self._write(path, compress_groups)
        body = bytearray(raw)
        body[_PREFIX.size] ^= 0xFF  # first header byte
        path.write_bytes(bytes(body))
        with pytest.raises(PackFormatError):
            load_sidecar(path)

    def test_stale_config_refused(self, tmp_path, compress_groups):
        path = tmp_path / "stale.pack"
        self._write(path, compress_groups)
        with pytest.raises(PackFormatError, match="stale sidecar"):
            load_sidecar(path, expected_config="other-config")

    def test_missing_file_is_oserror_or_packformaterror(self, tmp_path):
        with pytest.raises((PackFormatError, OSError)):
            load_sidecar(tmp_path / "never-written.pack")


class TestEngineDegradation:
    """A damaged sidecar must never sink an experiment: the engine
    re-packs from the JSON trace and rewrites the sidecar."""

    def _seed_cache(self, cache_dir):
        program = workload("compress").build(1)
        config = MachineConfig()
        packed, hit = packed_cached(program, config, cache_dir)
        assert not hit
        return program, config, packed

    def _trace_path(self, cache_dir):
        traces = list(cache_dir.glob("*.trace.gz"))
        assert len(traces) == 1
        return traces[0]

    def test_hit_uses_sidecar(self, tmp_path):
        program, config, first = self._seed_cache(tmp_path)
        side = sidecar_path(self._trace_path(tmp_path))
        assert side.exists()
        packed, hit = packed_cached(program, config, tmp_path)
        assert hit
        _assert_streams_equal(list(first.iter_groups()),
                              list(packed.iter_groups()))

    @pytest.mark.parametrize("damage", ["truncate", "corrupt", "future",
                                        "delete"])
    def test_damaged_sidecar_repacks(self, tmp_path, damage):
        program, config, first = self._seed_cache(tmp_path)
        side = sidecar_path(self._trace_path(tmp_path))
        raw = side.read_bytes()
        if damage == "truncate":
            side.write_bytes(raw[:len(raw) // 2])
        elif damage == "corrupt":
            body = bytearray(raw)
            body[_PREFIX.size + 2] ^= 0xFF
            side.write_bytes(bytes(body))
        elif damage == "future":
            _, _, header_len = _PREFIX.unpack(raw[:_PREFIX.size])
            side.write_bytes(
                _PREFIX.pack(MAGIC, PACK_VERSION + 7, header_len)
                + raw[_PREFIX.size:])
        else:
            side.unlink()
        packed, hit = packed_cached(program, config, tmp_path)
        assert hit  # the *trace* cache still hits; only the sidecar died
        _assert_streams_equal(list(first.iter_groups()),
                              list(packed.iter_groups()))
        # and the sidecar was healed for the next run
        healed = load_sidecar(side, expected_config=config.fingerprint())
        _assert_streams_equal(list(first.iter_groups()),
                              list(healed.iter_groups()))
