"""Bit-identity between the object and batch evaluation engines.

The object path (:func:`repro.streams.drive` over reconstructed
``IssueGroup`` objects) is the reference oracle; the fused columnar
kernels must accumulate *exactly* the same ``EvaluationTotals`` and
telemetry counters for every steering scheme, both hardware-swap
regimes, and both speculative settings, on random programs.
"""

from hypothesis import given, settings

from repro.batch import batch_drive, pack_stream
from repro.core.info_bits import scheme_for
from repro.core.statistics import paper_statistics
from repro.core.steering import PolicyEvaluator, make_policy
from repro.core.swapping import HardwareSwapper, choose_swap_case
from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.module_usage import ModuleUsageCollector
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass
from repro.streams import LiveSource, capture, drive
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.workloads import workload
from tests.cpu.test_simulator import loopy_programs

SCHEME_KINDS = ("original", "round-robin", "full-ham", "1bit-ham",
                "lut-4", "lut-2")
NUM_MODULES = 4


def _evaluator_set(telemetry=None, fu_class=FUClass.IALU,
                   num_modules=NUM_MODULES):
    stats = paper_statistics(fu_class)
    scheme = scheme_for(fu_class)
    swap_case = choose_swap_case(stats)
    evaluators = {}
    for kind in SCHEME_KINDS:
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        evaluators[kind] = PolicyEvaluator(fu_class, num_modules, policy,
                                           telemetry=telemetry)
    # hardware swapping, in both of the paper's forms: integrated into
    # the cost matrix for the Hamming matchers, case-triggered pre-swap
    # for everything else
    for kind in SCHEME_KINDS:
        if kind in ("full-ham", "1bit-ham"):
            policy = make_policy(kind, fu_class, num_modules, stats=stats,
                                 allow_swap=True)
            pre_swapper = None
        else:
            policy = make_policy(kind, fu_class, num_modules, stats=stats)
            pre_swapper = HardwareSwapper(scheme, swap_case)
        evaluators[f"{kind}/hw"] = PolicyEvaluator(
            fu_class, num_modules, policy, pre_swapper=pre_swapper,
            telemetry=telemetry)
    # deferred wrong-path accounting (include_speculative=False)
    for kind in ("original", "lut-4", "full-ham"):
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        evaluators[f"{kind}/no-spec"] = PolicyEvaluator(
            fu_class, num_modules, policy, include_speculative=False)
    return evaluators


def _assert_identical(reference, batch):
    assert set(reference) == set(batch)
    for kind in reference:
        assert batch[kind].totals() == reference[kind].totals(), kind


def _run_both(memory, fu_class=FUClass.IALU, num_modules=NUM_MODULES):
    reference = _evaluator_set(fu_class=fu_class, num_modules=num_modules)
    drive(memory, list(reference.values()))
    batch = _evaluator_set(fu_class=fu_class, num_modules=num_modules)
    batch_drive(pack_stream(memory.groups()), list(batch.values()))
    _assert_identical(reference, batch)


class TestEngineParity:
    @settings(max_examples=8, deadline=None)
    @given(loopy_programs())
    def test_random_programs_all_schemes(self, source):
        _run_both(capture(LiveSource(assemble(source))))

    @settings(max_examples=4, deadline=None)
    @given(loopy_programs())
    def test_random_programs_two_modules(self, source):
        # a narrower machine exercises the clamp in every kernel
        _run_both(capture(LiveSource(assemble(source))), num_modules=2)

    def test_integer_workload(self):
        _run_both(capture(LiveSource(workload("compress").build(1))))

    def test_float_workload(self):
        # the FP scheme and 52-bit mantissa mask go down different
        # kernel constants than the integer path
        memory = capture(LiveSource(workload("swim").build(1)))
        _run_both(memory, fu_class=FUClass.FPAU)

    def test_round_robin_state_carries_across_streams(self):
        # the rotation pointer must advance identically when one policy
        # instance sees two streams back to back
        first = capture(LiveSource(workload("compress").build(1)))
        second = capture(LiveSource(workload("li").build(1)))
        stats = paper_statistics(FUClass.IALU)

        def one_path(runner):
            policy = make_policy("round-robin", FUClass.IALU, NUM_MODULES,
                                 stats=stats)
            ev = PolicyEvaluator(FUClass.IALU, NUM_MODULES, policy)
            runner(first, ev)
            runner(second, ev)
            return ev.totals(), policy._next

        ref = one_path(lambda mem, ev: drive(mem, [ev]))
        batch = one_path(
            lambda mem, ev: batch_drive(pack_stream(mem.groups()), [ev]))
        assert batch == ref


class TestTelemetryParity:
    def test_counters_match_object_session(self):
        memory = capture(LiveSource(workload("compress").build(1)))

        ref_session = TelemetrySession(TelemetryConfig(metrics=True))
        reference = _evaluator_set(telemetry=ref_session)
        drive(memory, list(reference.values()))

        batch_session = TelemetrySession(TelemetryConfig(metrics=True))
        batch = _evaluator_set(telemetry=batch_session)
        batch_drive(pack_stream(memory.groups()), list(batch.values()))

        _assert_identical(reference, batch)
        ref_counters = ref_session.collect_counters()
        batch_counters = batch_session.collect_counters()
        assert set(ref_counters) == set(batch_counters)
        for name, value in ref_counters.items():
            assert batch_counters[name] == value, name


class TestCollectorParity:
    def test_statistics_collectors_match(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        packed = pack_stream(memory.groups())
        for include_spec in (True, False):
            ref_patterns = BitPatternCollector(
                FUClass.IALU, include_speculative=include_spec)
            ref_usage = ModuleUsageCollector()
            drive(memory, [ref_patterns, ref_usage])

            batch_patterns = BitPatternCollector(
                FUClass.IALU, include_speculative=include_spec)
            batch_usage = ModuleUsageCollector()
            batch_drive(packed, [batch_patterns, batch_usage])

            assert batch_patterns.total_ops == ref_patterns.total_ops
            for key, row in ref_patterns.rows.items():
                mine = batch_patterns.rows[key]
                assert (mine.count, mine.ones_op1, mine.ones_op2) == \
                    (row.count, row.ones_op1, row.ones_op2), key
            assert batch_usage.counts == ref_usage.counts

    def test_filtered_usage_collector_matches(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        ref = ModuleUsageCollector([FUClass.IALU])
        drive(memory, [ref])
        batch = ModuleUsageCollector([FUClass.IALU])
        batch_drive(pack_stream(memory.groups()), [batch])
        assert batch.counts == ref.counts


class TestFallbackPath:
    def test_unknown_consumer_sees_object_stream(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        seen = []
        batch_drive(pack_stream(memory.groups()), [seen.append])
        groups = list(memory.groups())
        assert len(seen) == len(groups)
        for mine, theirs in zip(seen, groups):
            assert mine.cycle == theirs.cycle
            assert mine.fu_class is theirs.fu_class
