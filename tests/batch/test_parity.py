"""Bit-identity between the object and batch evaluation engines.

The object path (:func:`repro.streams.drive` over reconstructed
``IssueGroup`` objects) is the reference oracle; the fused columnar
kernels — in *both* kernel backends, pure-Python and NumPy — must
accumulate *exactly* the same ``EvaluationTotals`` and telemetry
counters for every steering scheme, both hardware-swap regimes, and
both speculative settings, on random programs.  The NumPy leg is
skipped transparently when numpy is absent.
"""

import pytest
from hypothesis import given, settings

from repro.batch import NUMPY_AVAILABLE, batch_drive, pack_stream
from repro.core.info_bits import scheme_for
from repro.core.statistics import paper_statistics
from repro.core.steering import PolicyEvaluator, make_policy
from repro.core.swapping import HardwareSwapper, choose_swap_case
from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.module_usage import ModuleUsageCollector
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass
from repro.streams import LiveSource, capture, drive
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.workloads import workload
from tests.cpu.test_simulator import loopy_programs

SCHEME_KINDS = ("original", "round-robin", "full-ham", "1bit-ham",
                "lut-4", "lut-2", "bdd-4")
NUM_MODULES = 4

# every kernel backend available in this interpreter; the object path
# is always the oracle they are compared against
KERNEL_BACKENDS = ("python", "np") if NUMPY_AVAILABLE else ("python",)


def _evaluator_set(telemetry=None, fu_class=FUClass.IALU,
                   num_modules=NUM_MODULES):
    stats = paper_statistics(fu_class)
    scheme = scheme_for(fu_class)
    swap_case = choose_swap_case(stats)
    evaluators = {}
    for kind in SCHEME_KINDS:
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        evaluators[kind] = PolicyEvaluator(fu_class, num_modules, policy,
                                           telemetry=telemetry)
    # hardware swapping, in both of the paper's forms: integrated into
    # the cost matrix for the Hamming matchers, case-triggered pre-swap
    # for everything else
    for kind in SCHEME_KINDS:
        if kind in ("full-ham", "1bit-ham"):
            policy = make_policy(kind, fu_class, num_modules, stats=stats,
                                 allow_swap=True)
            pre_swapper = None
        else:
            policy = make_policy(kind, fu_class, num_modules, stats=stats)
            pre_swapper = HardwareSwapper(scheme, swap_case)
        evaluators[f"{kind}/hw"] = PolicyEvaluator(
            fu_class, num_modules, policy, pre_swapper=pre_swapper,
            telemetry=telemetry)
    # deferred wrong-path accounting (include_speculative=False)
    for kind in ("original", "lut-4", "full-ham"):
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        evaluators[f"{kind}/no-spec"] = PolicyEvaluator(
            fu_class, num_modules, policy, include_speculative=False)
    return evaluators


def _assert_identical(reference, batch):
    assert set(reference) == set(batch)
    for kind in reference:
        assert batch[kind].totals() == reference[kind].totals(), kind


def _run_both(memory, fu_class=FUClass.IALU, num_modules=NUM_MODULES):
    reference = _evaluator_set(fu_class=fu_class, num_modules=num_modules)
    drive(memory, list(reference.values()))
    packed = pack_stream(memory.groups())
    for backend in KERNEL_BACKENDS:
        batch = _evaluator_set(fu_class=fu_class, num_modules=num_modules)
        batch_drive(packed, list(batch.values()), backend=backend)
        _assert_identical(reference, batch)


class TestEngineParity:
    @settings(max_examples=8, deadline=None)
    @given(loopy_programs())
    def test_random_programs_all_schemes(self, source):
        _run_both(capture(LiveSource(assemble(source))))

    @settings(max_examples=4, deadline=None)
    @given(loopy_programs())
    def test_random_programs_two_modules(self, source):
        # a narrower machine exercises the clamp in every kernel
        _run_both(capture(LiveSource(assemble(source))), num_modules=2)

    def test_integer_workload(self):
        _run_both(capture(LiveSource(workload("compress").build(1))))

    def test_float_workload(self):
        # the FP scheme and 52-bit mantissa mask go down different
        # kernel constants than the integer path
        memory = capture(LiveSource(workload("swim").build(1)))
        _run_both(memory, fu_class=FUClass.FPAU)

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_round_robin_state_carries_across_streams(self, backend):
        # the rotation pointer must advance identically when one policy
        # instance sees two streams back to back
        first = capture(LiveSource(workload("compress").build(1)))
        second = capture(LiveSource(workload("li").build(1)))
        stats = paper_statistics(FUClass.IALU)

        def one_path(runner):
            policy = make_policy("round-robin", FUClass.IALU, NUM_MODULES,
                                 stats=stats)
            ev = PolicyEvaluator(FUClass.IALU, NUM_MODULES, policy)
            runner(first, ev)
            runner(second, ev)
            return ev.totals(), policy._next

        ref = one_path(lambda mem, ev: drive(mem, [ev]))
        batch = one_path(
            lambda mem, ev: batch_drive(pack_stream(mem.groups()), [ev],
                                        backend=backend))
        assert batch == ref


class TestTelemetryParity:
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_counters_match_object_session(self, backend):
        memory = capture(LiveSource(workload("compress").build(1)))

        ref_session = TelemetrySession(TelemetryConfig(metrics=True))
        reference = _evaluator_set(telemetry=ref_session)
        drive(memory, list(reference.values()))

        batch_session = TelemetrySession(TelemetryConfig(metrics=True))
        batch = _evaluator_set(telemetry=batch_session)
        batch_drive(pack_stream(memory.groups()), list(batch.values()),
                    backend=backend)

        _assert_identical(reference, batch)
        ref_counters = ref_session.collect_counters()
        batch_counters = batch_session.collect_counters()
        assert set(ref_counters) == set(batch_counters)
        for name, value in ref_counters.items():
            assert batch_counters[name] == value, name


class TestCollectorParity:
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_statistics_collectors_match(self, backend):
        memory = capture(LiveSource(workload("compress").build(1)))
        packed = pack_stream(memory.groups())
        for include_spec in (True, False):
            ref_patterns = BitPatternCollector(
                FUClass.IALU, include_speculative=include_spec)
            ref_usage = ModuleUsageCollector()
            drive(memory, [ref_patterns, ref_usage])

            batch_patterns = BitPatternCollector(
                FUClass.IALU, include_speculative=include_spec)
            batch_usage = ModuleUsageCollector()
            batch_drive(packed, [batch_patterns, batch_usage],
                        backend=backend)

            assert batch_patterns.total_ops == ref_patterns.total_ops
            for key, row in ref_patterns.rows.items():
                mine = batch_patterns.rows[key]
                assert (mine.count, mine.ones_op1, mine.ones_op2) == \
                    (row.count, row.ones_op1, row.ones_op2), key
            assert batch_usage.counts == ref_usage.counts

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_filtered_usage_collector_matches(self, backend):
        memory = capture(LiveSource(workload("compress").build(1)))
        ref = ModuleUsageCollector([FUClass.IALU])
        drive(memory, [ref])
        batch = ModuleUsageCollector([FUClass.IALU])
        batch_drive(pack_stream(memory.groups()), [batch], backend=backend)
        assert batch.counts == ref.counts


class TestBackendDispatch:
    def test_resolve_backend(self):
        from repro.batch import resolve_backend
        expected = "np" if NUMPY_AVAILABLE else "python"
        assert resolve_backend(None) == expected
        assert resolve_backend("auto") == expected
        assert resolve_backend("python") == "python"
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_resolve_engine(self):
        from repro.batch import resolve_engine
        assert resolve_engine("auto") == (
            "batch-np" if NUMPY_AVAILABLE else "batch")
        assert resolve_engine("object") == "object"
        assert resolve_engine("batch") == "batch"
        with pytest.raises(ValueError):
            resolve_engine("warp")

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="requires numpy")
    def test_run_figure4_engines_identical(self, tmp_path):
        from repro.analysis.energy import run_figure4
        from repro.workloads import workload as load

        def cells(result):
            return {key: (cell.switched_bits, cell.operations,
                          cell.hardware_swaps)
                    for key, cell in result.cells.items()}

        results = {}
        for engine in ("object", "batch", "batch-np"):
            results[engine] = run_figure4(
                FUClass.IALU, workloads=[load("compress")],
                schemes=("original", "lut-4"), swap_modes=("none", "hw"),
                trace_cache_dir=tmp_path, engine=engine)
        reference = results["object"]
        for engine in ("batch", "batch-np"):
            assert cells(results[engine]) == cells(reference), engine
            assert repr(results[engine].statistics) == \
                repr(reference.statistics), engine


class TestBDDFallThrough:
    """The bdd family registers a fused python kernel only: the np
    backend must fall through to it via the registry (not crash, not
    silently diverge), and a scheme mismatch must fall through to the
    object path."""

    def _bdd_evaluator(self, stats):
        policy = make_policy("bdd-4", FUClass.IALU, NUM_MODULES, stats=stats)
        return PolicyEvaluator(FUClass.IALU, NUM_MODULES, policy)

    def test_no_np_kernel_registered(self):
        from repro.core.registry import REGISTRY
        stats = paper_statistics(FUClass.IALU)
        policy = make_policy("bdd-4", FUClass.IALU, NUM_MODULES, stats=stats)
        assert REGISTRY.kernel_factory(policy, "np") is None
        assert REGISTRY.kernel_factory(policy, "python") is not None

    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_engines_identical_for_bdd(self, backend):
        memory = capture(LiveSource(workload("compress").build(1)))
        stats = paper_statistics(FUClass.IALU)
        reference = self._bdd_evaluator(stats)
        drive(memory, [reference])
        batch = self._bdd_evaluator(stats)
        batch_drive(pack_stream(memory.groups()), [batch], backend=backend)
        assert batch.totals() == reference.totals()

    def test_scheme_mismatch_falls_through_to_object_path(self):
        # an FP-scheme bdd policy over an integer stream: the fused
        # kernel's guard declines and the object path must still agree
        memory = capture(LiveSource(workload("compress").build(1)))
        stats = paper_statistics(FUClass.IALU)

        def build():
            policy = make_policy("bdd-4", FUClass.IALU, NUM_MODULES,
                                 stats=stats, scheme=scheme_for(FUClass.FPAU))
            return PolicyEvaluator(FUClass.IALU, NUM_MODULES, policy)

        reference = build()
        drive(memory, [reference])
        for backend in KERNEL_BACKENDS:
            batch = build()
            batch_drive(pack_stream(memory.groups()), [batch],
                        backend=backend)
            assert batch.totals() == reference.totals(), backend


class TestFallbackPath:
    def test_unknown_consumer_sees_object_stream(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        seen = []
        batch_drive(pack_stream(memory.groups()), [seen.append])
        groups = list(memory.groups())
        assert len(seen) == len(groups)
        for mine, theirs in zip(seen, groups):
            assert mine.cycle == theirs.cycle
            assert mine.fu_class is theirs.fu_class
