"""Property tests for every popcount in the batch layer.

All three implementations — the :data:`POPCOUNT16` table walker, the
native ``int.bit_count`` shortcut, and the vectorized NumPy twin —
must agree with one shared reference oracle on random 64-bit values
and on the boundary values where a lane-split popcount would break.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import NUMPY_AVAILABLE, POPCOUNT16
from repro.batch.kernels import _bit_count, _table_bit_count


def oracle(value: int) -> int:
    """Reference popcount, independent of every implementation under
    test (``bin`` string walk, cross-checked against ``int.bit_count``
    where the interpreter has it)."""
    expected = bin(value).count("1")
    if hasattr(int, "bit_count"):
        assert value.bit_count() == expected
    return expected


BOUNDARIES = (0, 1, 2**16 - 1, 2**16, 2**32 - 1, 2**32, 2**63,
              2**64 - 1)


class TestPopcountTable:
    def test_table_is_complete_and_correct(self):
        assert len(POPCOUNT16) == 1 << 16
        # spot-exhaustive: every entry against the oracle
        for value in range(1 << 16):
            assert POPCOUNT16[value] == oracle(value)

    @pytest.mark.parametrize("value", BOUNDARIES)
    def test_boundaries(self, value):
        assert _table_bit_count(value) == oracle(value)
        assert _bit_count(value) == oracle(value)

    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_random_64_bit_values(self, value):
        assert _table_bit_count(value) == oracle(value)
        assert _bit_count(value) == oracle(value)


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="requires numpy")
class TestPopcount64Vector:
    def test_boundaries(self):
        import numpy as np

        from repro.batch import popcount64
        values = np.array(BOUNDARIES, dtype=np.uint64)
        assert popcount64(values).tolist() == \
            [oracle(v) for v in BOUNDARIES]

    def test_empty(self):
        import numpy as np

        from repro.batch import popcount64
        assert popcount64(np.zeros(0, dtype=np.uint64)).tolist() == []

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=1, max_size=64))
    def test_random_64_bit_vectors(self, values):
        import numpy as np

        from repro.batch import popcount64
        array = np.array(values, dtype=np.uint64)
        assert popcount64(array).tolist() == [oracle(v) for v in values]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=1, max_size=64))
    def test_matches_scalar_table_walker(self, values):
        import numpy as np

        from repro.batch import popcount64
        array = np.array(values, dtype=np.uint64)
        assert popcount64(array).tolist() == \
            [_table_bit_count(v) for v in values]
