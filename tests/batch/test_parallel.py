"""Parallel figure generation: byte-stability and failure loudness.

``figure4 --jobs N`` must produce an identical ``Figure4Result`` for
every N (and for the serial driver), because partials are integer sums
merged in workload order — never arrival order.
"""

import pytest

from repro.analysis import run_figure4
from repro.analysis.parallel import ParallelFigureRunner
from repro.isa.instructions import FUClass
from repro.runner.pool import CRASH_ENV
from repro.workloads import workload

WORKLOADS = ("compress", "li")


def _run(jobs, cache_dir, **kwargs):
    return run_figure4(FUClass.IALU,
                       workloads=[workload(w) for w in WORKLOADS],
                       scale=1, jobs=jobs, trace_cache_dir=cache_dir,
                       **kwargs)


def _flat(result):
    """Everything the rendered figure is built from, as one structure."""
    return {
        "workloads": result.workload_names,
        "cells": {key: (cell.switched_bits, cell.operations,
                        cell.hardware_swaps)
                  for key, cell in result.cells.items()},
        "order": list(result.cells),
        "per_workload": result.per_workload,
        "stats": repr(result.statistics),
        "grid": result.grid(),
    }


class TestByteStability:
    def test_identical_for_any_job_count(self, tmp_path):
        serial = _run(1, tmp_path)
        two = _run(2, tmp_path)
        three = _run(3, tmp_path)
        assert _flat(two) == _flat(serial)
        assert _flat(three) == _flat(serial)

    def test_engines_agree_under_parallelism(self, tmp_path):
        batch = _run(2, tmp_path, engine="batch")
        obj = _run(2, tmp_path, engine="object")
        assert _flat(batch) == _flat(obj)

    def test_paper_stats_source(self, tmp_path):
        serial = _run(1, tmp_path, stats_source="paper")
        par = _run(2, tmp_path, stats_source="paper")
        assert _flat(par) == _flat(serial)

    def test_warm_cache_reports_all_hits(self, tmp_path):
        _run(1, tmp_path)
        warm = _run(2, tmp_path)
        assert warm.cache_misses == 0
        assert warm.cache_hits == 4  # two workloads + their rewrites
        assert warm.simulations == 0


class TestFailurePath:
    def test_failed_workload_names_surface(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "li")
        runner = ParallelFigureRunner(jobs=2, retries=0)
        with pytest.raises(RuntimeError, match="li"):
            runner.run_figure4(FUClass.IALU,
                               workloads=[workload(w) for w in WORKLOADS],
                               scale=1, trace_cache_dir=tmp_path)

    def test_bad_engine_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="engine"):
            _run(2, tmp_path, engine="vectorised")
        with pytest.raises(ValueError, match="engine"):
            _run(1, tmp_path, engine="vectorised")
