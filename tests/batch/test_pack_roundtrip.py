"""Pack → unpack round-trips every MicroOp field on randomized traces.

:meth:`PackedTrace.iter_groups` must reconstruct the original object
stream exactly — cycle numbers, global group order across FU classes,
opcodes, both operand images, and every flag — because it both feeds
consumers that have no columnar kernel and anchors the parity tests.
"""

from hypothesis import given, settings, strategies as st

from repro.batch import (F_HW_SWAP, F_SPEC, PackedTrace, pack_stream)
from repro.cpu.trace import IssueGroup, MicroOp
from repro.isa.instructions import FUClass, all_opcodes
from repro.streams import LiveSource, capture
from repro.workloads import workload

_BY_CLASS = {}
for info in all_opcodes():
    _BY_CLASS.setdefault(info.fu_class, []).append(info)


@st.composite
def random_streams(draw):
    """Adversarial issue streams: mixed FU classes, every flag, wide
    groups, 64-bit operand images, missing second operands."""
    classes = [fu for fu in FUClass if fu in _BY_CLASS]
    n_groups = draw(st.integers(min_value=0, max_value=12))
    groups = []
    cycle = 0
    for _ in range(n_groups):
        cycle += draw(st.integers(min_value=0, max_value=3))
        fu_class = draw(st.sampled_from(classes))
        ops = []
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            info = draw(st.sampled_from(_BY_CLASS[fu_class]))
            has_two = draw(st.booleans())
            ops.append(MicroOp(
                info,
                draw(st.integers(min_value=0, max_value=(1 << 64) - 1)),
                (draw(st.integers(min_value=0, max_value=(1 << 64) - 1))
                 if has_two else 0),
                has_two=has_two,
                static_index=draw(st.integers(min_value=-1, max_value=500)),
                speculative=draw(st.booleans()),
                swapped=draw(st.booleans()),
                critical=draw(st.booleans())))
        groups.append(IssueGroup(cycle, fu_class, ops))
    return groups


def _assert_streams_equal(originals, rebuilt):
    assert len(rebuilt) == len(originals)
    for mine, theirs in zip(rebuilt, originals):
        assert mine.cycle == theirs.cycle
        assert mine.fu_class is theirs.fu_class
        assert len(mine.ops) == len(theirs.ops)
        for a, b in zip(mine.ops, theirs.ops):
            assert a.op is b.op
            assert a.op1 == b.op1
            assert a.op2 == b.op2
            assert a.has_two == b.has_two
            assert a.static_index == b.static_index
            assert a.speculative == b.speculative
            assert a.swapped == b.swapped
            assert a.critical == b.critical


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(random_streams())
    def test_every_field_round_trips(self, groups):
        packed = pack_stream(groups)
        _assert_streams_equal(groups, list(packed.iter_groups()))
        # a second iteration must be identical (re-drivable source)
        _assert_streams_equal(groups, list(packed.groups()))

    def test_simulated_stream_round_trips(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        groups = list(memory.groups())
        packed = pack_stream(groups)
        _assert_streams_equal(groups, list(packed.iter_groups()))

    def test_class_filter_matches_trace_writer(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        groups = list(memory.groups())
        packed = pack_stream(groups, fu_classes=(FUClass.IALU,))
        wanted = [g for g in groups if g.fu_class is FUClass.IALU]
        _assert_streams_equal(wanted, list(packed.iter_groups()))


class TestPackedFlags:
    def test_case_and_flags_agree_with_scheme(self):
        memory = capture(LiveSource(workload("compress").build(1)))
        packed = pack_stream(memory.groups())
        for cols in packed.classes.values():
            case_fn = cols.scheme.case_of
            i = 0
            for group in memory.groups():
                if group.fu_class is not cols.fu_class:
                    continue
                for op in group.ops:
                    op2 = op.op2 if op.has_two else 0
                    assert cols.case[i] == case_fn(op.op1, op2)
                    assert bool(cols.flags[i] & F_SPEC) == op.speculative
                    assert bool(cols.flags[i] & F_HW_SWAP) == \
                        op.hardware_swappable
                    i += 1
            assert i == cols.n_ops

    def test_unconventional_missing_operand_detected(self):
        info = next(op for op in all_opcodes()
                    if op.fu_class is FUClass.IALU)
        op = MicroOp(info, 1, 99, has_two=False)
        packed = PackedTrace()
        packed.add_group(IssueGroup(0, FUClass.IALU, [op]))
        assert not packed.classes[FUClass.IALU].conventional
        rebuilt = next(packed.iter_groups()).ops[0]
        assert rebuilt.op2 == 99 and not rebuilt.has_two
