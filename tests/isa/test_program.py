"""Program and DataImage representation tests."""

import pytest

from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, opcode
from repro.isa.program import DataImage, Program, ProgramError


class TestDataImage:
    def test_word_roundtrip_little_endian(self):
        image = DataImage()
        image.store_word(0, 0x12345678)
        assert image.load_byte(0) == 0x78
        assert image.load_byte(3) == 0x12
        assert image.load_word(0) == 0x12345678

    def test_double_roundtrip(self):
        image = DataImage()
        bits = encoding.float_to_bits(-2.5)
        image.store_double(8, bits)
        assert image.load_double(8) == bits

    def test_unaligned_rejected(self):
        image = DataImage()
        with pytest.raises(ProgramError):
            image.store_word(2, 0)
        with pytest.raises(ProgramError):
            image.load_double(4)

    def test_unwritten_reads_zero(self):
        assert DataImage().load_word(0x1000) == 0

    def test_copy_is_independent(self):
        image = DataImage()
        image.store_word(0, 1)
        clone = image.copy()
        clone.store_word(0, 2)
        assert image.load_word(0) == 1

    def test_value_helpers(self):
        image = DataImage()
        image.store_int_value(0, -7)
        image.store_float_value(8, 0.5)
        assert image.load_word(0) == encoding.wrap_int(-7)
        assert image.load_double(8) == encoding.float_to_bits(0.5)


class TestProgram:
    def test_addresses_assigned_in_order(self):
        program = assemble(".text\nnop\nnop\nhalt")
        assert [i.address for i in program.instructions] == [0, 1, 2]

    def test_label_index(self):
        program = assemble(".text\nmain:\nnop\nhalt")
        assert program.label_index("main") == 0
        with pytest.raises(ProgramError):
            program.label_index("missing")

    def test_validate_rejects_unresolved_branch(self):
        branch = Instruction(opcode("beq"), src1=1, src2=2)
        program = Program([branch, Instruction(opcode("halt"))])
        with pytest.raises(ProgramError, match="unresolved"):
            program.validate()

    def test_validate_rejects_out_of_range_target(self):
        jump = Instruction(opcode("j"), target=99)
        program = Program([jump, Instruction(opcode("halt"))])
        with pytest.raises(ProgramError, match="out of range"):
            program.validate()

    def test_listing_contains_labels(self):
        program = assemble(".text\nmain:\nadd r1, r2, r3\nhalt")
        listing = program.listing()
        assert "main:" in listing
        assert "add r1, r2, r3" in listing

    def test_len(self):
        assert len(assemble(".text\nnop\nhalt")) == 2
