"""Assembler tests: syntax, pseudo expansion, data layout, errors."""

import pytest

from repro.isa import encoding
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.program import DATA_BASE


class TestBasicAssembly:
    def test_three_register_form(self):
        program = assemble(".text\nadd r1, r2, r3\nhalt")
        instr = program.instructions[0]
        assert instr.op.name == "add"
        assert (instr.dest, instr.src1, instr.src2) == (1, 2, 3)

    def test_immediate_form_sign_extended(self):
        program = assemble(".text\naddi r1, r0, -5\nhalt")
        assert program.instructions[0].imm == encoding.wrap_int(-5)

    def test_logical_immediate_zero_extended(self):
        program = assemble(".text\nori r1, r0, 0xFFFF\nhalt")
        assert program.instructions[0].imm == 0xFFFF

    def test_comments_and_blank_lines(self):
        program = assemble("""
.text
# full line comment
main:   ; alternative comment marker
    add r1, r2, r3   # trailing
    halt
""")
        assert len(program.instructions) == 2

    def test_fp_registers(self):
        program = assemble(".text\nfadd f1, f2, f3\nhalt")
        instr = program.instructions[0]
        assert instr.dest == 32 + 1
        assert instr.src1 == 32 + 2

    def test_cross_bank_operands(self):
        program = assemble(".text\ncvtif f1, r2\ncvtfi r3, f4\n"
                           "flt r5, f6, f7\nhalt")
        cvtif, cvtfi, flt, _ = program.instructions
        assert cvtif.dest == 33 and cvtif.src1 == 2
        assert cvtfi.dest == 3 and cvtfi.src1 == 36
        assert flt.dest == 5 and flt.src1 == 38 and flt.src2 == 39

    def test_memory_operands(self):
        program = assemble(".text\nlw r1, 8(r2)\nsw r3, -4(r2)\nhalt")
        load, store, _ = program.instructions
        assert load.dest == 1 and load.src1 == 2 and load.imm == 8
        assert store.src1 == 2 and store.src2 == 3
        assert store.imm == encoding.wrap_int(-4)


class TestControlFlow:
    def test_branch_targets_resolved(self):
        program = assemble("""
.text
main:
    beq r1, r2, out
    add r3, r3, r3
out:
    halt
""")
        assert program.instructions[0].target == 2
        assert program.instructions[0].label == "out"

    def test_forward_and_backward_jumps(self):
        program = assemble("""
.text
start:
    j end
middle:
    j start
end:
    halt
""")
        assert program.instructions[0].target == 2
        assert program.instructions[1].target == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble(".text\nj nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble(".text\na:\nhalt\na:\nhalt")


class TestPseudoInstructions:
    def test_li_small_is_one_instruction(self):
        program = assemble(".text\nli r1, 100\nhalt")
        assert len(program.instructions) == 2
        assert program.instructions[0].op.name == "addi"

    def test_li_large_expands_to_lui_ori(self):
        program = assemble(".text\nli r1, 0x12345678\nhalt")
        names = [i.op.name for i in program.instructions]
        assert names == ["lui", "ori", "halt"]

    def test_li_negative(self):
        program = assemble(".text\nli r1, -42\nhalt")
        assert program.instructions[0].imm == encoding.wrap_int(-42)

    def test_la_resolves_symbol(self):
        program = assemble(".data\nbuf: .space 8\n.text\nla r1, buf\nhalt")
        # DATA_BASE needs lui+ori (or lui alone when low half is zero)
        assert program.instructions[0].op.name == "lui"

    def test_la_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined data symbol"):
            assemble(".text\nla r1, ghost\nhalt")

    def test_mov_and_nop(self):
        program = assemble(".text\nmov r1, r2\nnop\nhalt")
        mov, nop, _ = program.instructions
        assert mov.op.name == "add" and mov.src2 == 0
        assert nop.dest == 0


class TestDataSection:
    def test_word_layout(self):
        program = assemble(".data\nxs: .word 1, -2, 3\n.text\nhalt")
        base = program.symbol_address("xs")
        assert base == DATA_BASE
        assert program.data.load_word(base) == 1
        assert program.data.load_word(base + 4) == encoding.wrap_int(-2)
        assert program.data.load_word(base + 8) == 3

    def test_double_alignment(self):
        program = assemble(""".data
pad: .word 1
vals: .double 1.5
.text
halt""")
        address = program.symbol_address("vals")
        assert address % 8 == 0
        assert program.data.load_double(address) \
            == encoding.float_to_bits(1.5)

    def test_space_and_align(self):
        program = assemble(""".data
a: .space 12
.align 4
b: .word 7
.text
halt""")
        assert program.symbol_address("b") % 16 == 0

    def test_duplicate_symbol(self):
        with pytest.raises(AssemblerError, match="duplicate data symbol"):
            assemble(".data\nx: .word 1\nx: .word 2\n.text\nhalt")

    def test_bare_label_binds_to_next_allocation(self):
        program = assemble(".data\nmark:\n.word 9\n.text\nhalt")
        assert program.data.load_word(program.symbol_address("mark")) == 9


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(".text\nfrobnicate r1, r2\nhalt")

    def test_wrong_register_bank(self):
        with pytest.raises(AssemblerError, match="floating point register"):
            assemble(".text\nfadd f1, r2, f3\nhalt")
        with pytest.raises(AssemblerError, match="integer register"):
            assemble(".text\nadd r1, f2, r3\nhalt")

    def test_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 3 operands"):
            assemble(".text\nadd r1, r2\nhalt")

    def test_immediate_range(self):
        with pytest.raises(AssemblerError, match="immediate"):
            assemble(".text\naddi r1, r0, 70000\nhalt")
        with pytest.raises(AssemblerError, match="shift amount"):
            assemble(".text\nslli r1, r2, 32\nhalt")

    def test_bad_register_number(self):
        with pytest.raises(AssemblerError):
            assemble(".text\nadd r1, r2, r32\nhalt")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="bad memory operand"):
            assemble(".text\nlw r1, r2\nhalt")

    def test_error_carries_line_number(self):
        try:
            assemble(".text\nnop\nbogus r1\nhalt")
        except AssemblerError as error:
            assert error.line_number == 3
        else:
            pytest.fail("expected AssemblerError")
