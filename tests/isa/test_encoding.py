"""Unit and property tests for bit-level encodings."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import encoding


int_images = st.integers(min_value=0, max_value=encoding.INT_MASK)
signed_ints = st.integers(min_value=encoding.INT_MIN, max_value=encoding.INT_MAX)
double_images = st.integers(min_value=0, max_value=encoding.FLOAT_MASK)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)


class TestIntegerEncoding:
    def test_paper_example_positive(self):
        # decimal 20 sign-extends to 0x00000014 with 27 leading zeros
        bits = encoding.to_unsigned(20)
        assert bits == 0x00000014
        assert encoding.leading_sign_bits(bits) == 27

    def test_paper_example_negative(self):
        # decimal -20 is 0xFFFFFFEC with 27 leading ones
        bits = encoding.to_unsigned(-20)
        assert bits == 0xFFFFFFEC
        assert encoding.leading_sign_bits(bits) == 27

    def test_sign_bit(self):
        assert encoding.int_sign_bit(encoding.to_unsigned(-1)) == 1
        assert encoding.int_sign_bit(encoding.to_unsigned(1)) == 0
        assert encoding.int_sign_bit(0) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(encoding.EncodingError):
            encoding.to_unsigned(1 << 33)
        with pytest.raises(encoding.EncodingError):
            encoding.to_signed(-1)
        with pytest.raises(encoding.EncodingError):
            encoding.to_signed(1 << 32)

    def test_wrap_int_modular(self):
        assert encoding.wrap_int(1 << 32) == 0
        assert encoding.wrap_int(-1) == encoding.INT_MASK
        assert encoding.wrap_int((1 << 32) + 5) == 5

    @given(signed_ints)
    def test_signed_roundtrip(self, value):
        assert encoding.to_signed(encoding.to_unsigned(value)) == value

    @given(int_images)
    def test_unsigned_roundtrip(self, bits):
        assert encoding.to_unsigned(encoding.to_signed(bits)) == bits

    @given(int_images)
    def test_leading_sign_bits_at_least_one(self, bits):
        assert 1 <= encoding.leading_sign_bits(bits) <= 32


class TestFloatEncoding:
    def test_seven_has_fifty_trailing_zeros(self):
        # the paper's example: 7.0 stores mantissa 11 -> 50 trailing zeros
        bits = encoding.float_to_bits(7.0)
        assert encoding.trailing_zeros(encoding.mantissa(bits), 52) == 50

    def test_mantissa_and_exponent_fields(self):
        bits = encoding.make_double(1, 1023, 0x8000000000000)
        assert encoding.float_sign_bit(bits) == 1
        assert encoding.exponent(bits) == 1023
        assert encoding.mantissa(bits) == 0x8000000000000
        assert encoding.bits_to_float(bits) == -1.5

    def test_field_validation(self):
        with pytest.raises(encoding.EncodingError):
            encoding.make_double(2, 0, 0)
        with pytest.raises(encoding.EncodingError):
            encoding.make_double(0, 1 << 11, 0)
        with pytest.raises(encoding.EncodingError):
            encoding.make_double(0, 0, 1 << 52)

    def test_is_finite(self):
        assert encoding.is_finite_bits(encoding.float_to_bits(1.0))
        assert not encoding.is_finite_bits(encoding.float_to_bits(float("inf")))
        assert not encoding.is_finite_bits(encoding.float_to_bits(float("nan")))

    @given(finite_floats)
    def test_float_roundtrip(self, value):
        assert encoding.bits_to_float(encoding.float_to_bits(value)) == value

    @given(double_images)
    def test_bits_roundtrip(self, bits):
        value = encoding.bits_to_float(bits)
        if not math.isnan(value):
            assert encoding.float_to_bits(value) == bits

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_int_cast_trailing_zeros(self, value):
        # ints up to 2^31 fit in 31 mantissa bits -> at least 21 trailing
        # zeros after the cast, the effect section 4.2 exploits
        bits = encoding.cast_int_to_double_bits(value)
        mantissa = encoding.mantissa(bits)
        assert encoding.trailing_zeros(mantissa, 52) >= 21

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e30, max_value=1e30))
    def test_single_widening_trailing_zeros(self, value):
        bits = encoding.cast_single_to_double_bits(value)
        if encoding.is_finite_bits(bits):
            assert encoding.trailing_zeros(encoding.mantissa(bits), 52) >= 29


class TestHamming:
    def test_identity(self):
        assert encoding.hamming(0xDEADBEEF, 0xDEADBEEF) == 0

    def test_known_distance(self):
        assert encoding.hamming(0b1010, 0b0101) == 4
        assert encoding.hamming_int(0, encoding.INT_MASK) == 32

    def test_mantissa_masks_exponent(self):
        a = encoding.make_double(0, 1023, 0)
        b = encoding.make_double(1, 1040, 0)
        assert encoding.hamming_mantissa(a, b) == 0

    @given(int_images, int_images)
    def test_symmetry(self, a, b):
        assert encoding.hamming_int(a, b) == encoding.hamming_int(b, a)

    @given(int_images, int_images, int_images)
    def test_triangle_inequality(self, a, b, c):
        assert (encoding.hamming_int(a, c)
                <= encoding.hamming_int(a, b) + encoding.hamming_int(b, c))

    @given(int_images)
    def test_popcount_vs_hamming_zero(self, a):
        assert encoding.hamming_int(a, 0) == encoding.popcount(a)


class TestMisc:
    def test_trailing_zeros_of_zero(self):
        assert encoding.trailing_zeros(0, 52) == 52

    def test_bit_string(self):
        assert encoding.bit_string(5, 4) == "0101"
        with pytest.raises(encoding.EncodingError):
            encoding.bit_string(16, 4)

    def test_ulp_round(self):
        assert encoding.ulp_round(0.3, 2) == 0.25
        assert encoding.ulp_round(float("inf"), 2) == float("inf")

    def test_popcount_negative_rejected(self):
        with pytest.raises(encoding.EncodingError):
            encoding.popcount(-1)

    def test_trailing_zeros_negative_rejected(self):
        # -2 has infinitely many high ones in two's complement; the
        # primitive is only defined on non-negative images
        with pytest.raises(encoding.EncodingError):
            encoding.trailing_zeros(-2, 32)

    def test_trailing_zeros_width_clamp(self):
        assert encoding.trailing_zeros(1 << 8, 32) == 8
        assert encoding.trailing_zeros(0, 32) == 32


class TestDoctests:
    def test_module_doctests_pass(self):
        # pytest does not collect doctests (no --doctest-modules in the
        # project config), so the examples in encoding's docstrings are
        # executed here to keep them honest
        import doctest

        results = doctest.testmod(encoding)
        assert results.attempted > 0
        assert results.failed == 0
