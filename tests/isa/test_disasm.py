"""Disassembler round-trip tests."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disasm import instruction_text, program_to_source
from repro.workloads import all_workloads, workload


def assert_programs_equivalent(original, rebuilt):
    assert len(rebuilt) == len(original)
    for a, b in zip(original.instructions, rebuilt.instructions):
        assert a.op.name == b.op.name
        assert (a.dest, a.src1, a.src2) == (b.dest, b.src1, b.src2)
        assert a.imm == b.imm
        assert a.target == b.target
    # data symbols resolve to identical addresses
    assert original.symbols == {name: rebuilt.symbols[name]
                                for name in original.symbols}
    # byte-exact data image over the original's touched range
    for address in original.data.bytes_:
        assert rebuilt.data.load_byte(address) \
            == original.data.load_byte(address), hex(address)


class TestInstructionText:
    def test_forms(self):
        program = assemble("""
.data
buf: .space 8
.text
start:
    add r1, r2, r3
    addi r4, r5, -7
    ori r6, r7, 0xFF
    lui r8, 0x12
    lw r9, -4(r10)
    sw r11, 8(r10)
    fadd f1, f2, f3
    fsqrt f4, f5
    cvtif f6, r12
    beq r1, r2, start
    j start
    halt
""")
        labels = {0: "L0"}
        rendered = [instruction_text(i, labels)
                    for i in program.instructions]
        assert "add r1, r2, r3" in rendered
        assert "addi r4, r5, -7" in rendered
        assert "ori r6, r7, 255" in rendered
        assert "lui r8, 18" in rendered
        assert "lw r9, -4(r10)" in rendered
        assert "sw r11, 8(r10)" in rendered
        assert "fsqrt f4, f5" in rendered
        assert "cvtif f6, r12" in rendered
        assert "beq r1, r2, L0" in rendered
        assert "j L0" in rendered
        assert "halt" in rendered


class TestRoundTrip:
    def test_small_program(self, sum_program):
        rebuilt = assemble(program_to_source(sum_program))
        assert_programs_equivalent(sum_program, rebuilt)

    def test_fp_program(self, fp_program):
        rebuilt = assemble(program_to_source(fp_program))
        assert_programs_equivalent(fp_program, rebuilt)

    @pytest.mark.parametrize("name", [w.name for w in all_workloads()])
    def test_every_kernel_round_trips(self, name):
        """The strongest check: every kernel (code + data image)
        disassembles to source that re-assembles equivalently and still
        passes its architectural checker."""
        from repro.cpu.golden import run_program

        load = workload(name)
        original = load.build(1)
        rebuilt = assemble(program_to_source(original), name=name)
        assert_programs_equivalent(original, rebuilt)
        result = run_program(rebuilt)
        load.check(original, result, 1)

    def test_swapped_program_round_trips(self):
        from repro.compiler import swap_optimize

        program = workload("ijpeg").build(1)
        swapped, _ = swap_optimize(program)
        rebuilt = assemble(program_to_source(swapped))
        assert_programs_equivalent(swapped, rebuilt)
