"""Tests for opcode metadata and the instruction model."""

import pytest

from repro.isa.instructions import (NUM_ARCH_REGS, FUClass, Instruction,
                                    all_opcodes, fp_reg, int_reg, is_fp_reg,
                                    opcode, reg_name)


class TestRegisters:
    def test_int_reg_range(self):
        assert int_reg(0) == 0
        assert int_reg(31) == 31
        with pytest.raises(ValueError):
            int_reg(32)

    def test_fp_reg_range(self):
        assert fp_reg(0) == 32
        assert fp_reg(31) == 63
        with pytest.raises(ValueError):
            fp_reg(32)

    def test_is_fp_reg(self):
        assert not is_fp_reg(int_reg(5))
        assert is_fp_reg(fp_reg(5))

    def test_reg_name(self):
        assert reg_name(int_reg(7)) == "r7"
        assert reg_name(fp_reg(7)) == "f7"
        with pytest.raises(ValueError):
            reg_name(NUM_ARCH_REGS)


class TestOpcodeMetadata:
    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            opcode("bogus")

    def test_commutative_flags(self):
        assert opcode("add").commutative
        assert not opcode("sub").commutative
        assert opcode("fadd").commutative
        assert not opcode("fsub").commutative
        assert opcode("mult").commutative
        assert not opcode("div").commutative

    def test_immediate_forms_never_hardware_swappable(self):
        # the paper: "there is no way to specify its operand ordering in
        # the machine language - the immediate is always the second"
        for info in all_opcodes():
            if info.has_immediate:
                assert not info.hardware_swappable
                assert not info.compiler_swappable

    def test_compiler_swap_twins_are_mutual(self):
        for info in all_opcodes():
            if info.compiler_swap_to is not None:
                twin = opcode(info.compiler_swap_to)
                assert twin.compiler_swap_to == info.name
                assert twin.fu_class is info.fu_class

    def test_fu_class_assignments(self):
        assert opcode("add").fu_class is FUClass.IALU
        assert opcode("mult").fu_class is FUClass.IMULT
        assert opcode("fadd").fu_class is FUClass.FPAU
        assert opcode("fmul").fu_class is FUClass.FPMULT
        assert opcode("lw").fu_class is FUClass.LSU
        # branches resolve on the integer ALU, as in sim-outorder
        assert opcode("beq").fu_class is FUClass.IALU

    def test_branch_compare_swappability(self):
        assert opcode("beq").hardware_swappable
        assert not opcode("blt").hardware_swappable
        assert opcode("blt").compiler_swappable  # via bgt

    def test_latencies_positive(self):
        for info in all_opcodes():
            assert info.latency >= 1

    def test_memory_flags(self):
        assert opcode("lw").is_load and not opcode("lw").is_store
        assert opcode("sw").is_store and not opcode("sw").writes_dest
        assert opcode("ld").is_memory and opcode("sd").is_memory

    def test_every_opcode_unique_name(self):
        names = [info.name for info in all_opcodes()]
        assert len(names) == len(set(names))


class TestInstruction:
    def test_source_regs(self):
        instr = Instruction(opcode("add"), dest=1, src1=2, src2=3)
        assert instr.source_regs() == (2, 3)
        single = Instruction(opcode("lui"), dest=1, imm=5)
        assert single.source_regs() == ()

    def test_str_rendering(self):
        instr = Instruction(opcode("add"), dest=int_reg(1), src1=int_reg(2),
                            src2=int_reg(3))
        assert str(instr) == "add r1, r2, r3"
        load = Instruction(opcode("lw"), dest=int_reg(4), src1=int_reg(5),
                           imm=8)
        assert "8(r5)" in str(load)
