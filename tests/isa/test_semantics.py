"""Semantics tests: ISA evaluation against Python reference arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import encoding, semantics
from repro.isa.instructions import Instruction, opcode

int_images = st.integers(min_value=0, max_value=encoding.INT_MASK)
reasonable_floats = st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e100, max_value=1e100)


def signed(bits):
    return encoding.to_signed(bits)


class TestIntegerSemantics:
    @given(int_images, int_images)
    def test_add_is_modular(self, a, b):
        result = semantics.evaluate_int(opcode("add"), a, b)
        assert result == (a + b) & encoding.INT_MASK

    @given(int_images, int_images)
    def test_sub_inverts_add(self, a, b):
        total = semantics.evaluate_int(opcode("add"), a, b)
        assert semantics.evaluate_int(opcode("sub"), total, b) == a

    @given(int_images, int_images)
    def test_logic_ops(self, a, b):
        assert semantics.evaluate_int(opcode("and"), a, b) == a & b
        assert semantics.evaluate_int(opcode("or"), a, b) == a | b
        assert semantics.evaluate_int(opcode("xor"), a, b) == a ^ b
        assert semantics.evaluate_int(opcode("nor"), a, b) \
            == (~(a | b)) & encoding.INT_MASK

    @given(int_images, st.integers(min_value=0, max_value=31))
    def test_shifts(self, a, amount):
        assert semantics.evaluate_int(opcode("sll"), a, amount) \
            == (a << amount) & encoding.INT_MASK
        assert semantics.evaluate_int(opcode("srl"), a, amount) == a >> amount
        assert semantics.evaluate_int(opcode("sra"), a, amount) \
            == (signed(a) >> amount) & encoding.INT_MASK

    @given(int_images, int_images)
    def test_comparisons_are_signed(self, a, b):
        assert semantics.evaluate_int(opcode("slt"), a, b) \
            == int(signed(a) < signed(b))
        assert semantics.evaluate_int(opcode("sgt"), a, b) \
            == int(signed(a) > signed(b))
        assert semantics.evaluate_int(opcode("seq"), a, b) == int(a == b)

    @given(int_images, int_images)
    def test_mult_wraps(self, a, b):
        result = semantics.evaluate_int(opcode("mult"), a, b)
        assert result == (signed(a) * signed(b)) & encoding.INT_MASK

    @given(int_images, int_images)
    def test_div_truncates_toward_zero(self, a, b):
        if b == 0:
            assert semantics.evaluate_int(opcode("div"), a, b) \
                == encoding.INT_MASK
        else:
            expected = abs(signed(a)) // abs(signed(b))
            if (signed(a) < 0) != (signed(b) < 0):
                expected = -expected
            assert signed(semantics.evaluate_int(opcode("div"), a, b)) \
                == expected

    @given(int_images, int_images)
    def test_div_rem_identity(self, a, b):
        if b == 0:
            return
        quotient = signed(semantics.evaluate_int(opcode("div"), a, b))
        remainder = signed(semantics.evaluate_int(opcode("rem"), a, b))
        assert quotient * signed(b) + remainder == signed(a)

    def test_lui(self):
        assert semantics.evaluate_int(opcode("lui"), 0, 0x1234) == 0x12340000

    def test_unknown_opcode_raises(self):
        with pytest.raises(semantics.SemanticsError):
            semantics.evaluate_int(opcode("fadd"), 0, 0)


class TestFloatSemantics:
    @given(reasonable_floats, reasonable_floats)
    def test_fadd_matches_python(self, x, y):
        a = encoding.float_to_bits(x)
        b = encoding.float_to_bits(y)
        assert semantics.evaluate_float(opcode("fadd"), a, b) \
            == encoding.float_to_bits(x + y)

    @given(reasonable_floats, reasonable_floats)
    def test_fmul_matches_python(self, x, y):
        a = encoding.float_to_bits(x)
        b = encoding.float_to_bits(y)
        assert semantics.evaluate_float(opcode("fmul"), a, b) \
            == encoding.float_to_bits(x * y)

    @given(reasonable_floats)
    def test_fabs_fneg(self, x):
        a = encoding.float_to_bits(x)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fabs"), a, 0)) == abs(x)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fneg"), a, 0)) == -x

    @given(reasonable_floats, reasonable_floats)
    def test_min_max(self, x, y):
        a = encoding.float_to_bits(x)
        b = encoding.float_to_bits(y)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fmin"), a, b)) == min(x, y)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fmax"), a, b)) == max(x, y)

    @given(reasonable_floats, reasonable_floats)
    def test_comparisons(self, x, y):
        a = encoding.float_to_bits(x)
        b = encoding.float_to_bits(y)
        assert semantics.evaluate_float(opcode("flt"), a, b) == int(x < y)
        assert semantics.evaluate_float(opcode("fge"), a, b) == int(x >= y)
        assert semantics.evaluate_float(opcode("feq"), a, b) == int(x == y)

    def test_fdiv_by_zero_gives_signed_infinity(self):
        one = encoding.float_to_bits(1.0)
        zero = encoding.float_to_bits(0.0)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fdiv"), one, zero)) \
            == float("inf")

    def test_fsqrt(self):
        nine = encoding.float_to_bits(9.0)
        assert encoding.bits_to_float(
            semantics.evaluate_float(opcode("fsqrt"), nine, 0)) == 3.0

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_cvtif_roundtrip(self, value):
        bits = semantics.evaluate_float(opcode("cvtif"),
                                        encoding.wrap_int(value), 0)
        assert encoding.bits_to_float(bits) == float(value)

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e9, max_value=1e9))
    def test_cvtfi_truncates(self, x):
        bits = semantics.evaluate_float(opcode("cvtfi"),
                                        encoding.float_to_bits(x), 0)
        assert signed(bits) == int(x)

    def test_fmov_identity(self):
        a = encoding.float_to_bits(3.25)
        assert semantics.evaluate_float(opcode("fmov"), a, 0) == a


class TestBranchesAndAddresses:
    @given(int_images, int_images)
    def test_branch_conditions(self, a, b):
        assert semantics.branch_taken(opcode("beq"), a, b) == (a == b)
        assert semantics.branch_taken(opcode("bne"), a, b) == (a != b)
        assert semantics.branch_taken(opcode("blt"), a, b) \
            == (signed(a) < signed(b))
        assert semantics.branch_taken(opcode("bge"), a, b) \
            == (signed(a) >= signed(b))

    def test_branch_taken_rejects_non_branch(self):
        with pytest.raises(semantics.SemanticsError):
            semantics.branch_taken(opcode("add"), 0, 0)

    def test_effective_address_wraps(self):
        load = Instruction(opcode("lw"), dest=1, src1=2,
                           imm=encoding.wrap_int(-4))
        assert semantics.effective_address(load, 100) == 96
