"""End-to-end integration tests across the whole stack."""

import pytest

from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.energy import measure_statistics
from repro.analysis.module_usage import ModuleUsageCollector
from repro.compiler import swap_optimize
from repro.core import (HardwareSwapper, choose_swap_case, make_policy,
                        scheme_for)
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.cpu import Simulator, TraceCollector, run_program
from repro.cpu.tracefile import TraceWriter, replay
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads, workload


class TestMeasureThenSteer:
    """The self-consistent loop: measure a workload's statistics, build
    the steering hardware from them, then run it on the same workload."""

    @pytest.mark.parametrize("name,fu_class", [
        ("m88ksim", FUClass.IALU),
        ("swim", FUClass.FPAU),
    ])
    def test_self_tuned_steering_saves_energy(self, name, fu_class):
        program = workload(name).build(1)
        stats, _, _ = measure_statistics([program], fu_class)
        policy = make_policy("lut-4", fu_class, 4, stats=stats)
        steered = PolicyEvaluator(fu_class, 4, policy)
        fcfs = PolicyEvaluator(fu_class, 4, OriginalPolicy())
        sim = Simulator(program)
        sim.add_listener(steered)
        sim.add_listener(fcfs)
        sim.run()
        assert steered.totals().switched_bits \
            <= fcfs.totals().switched_bits

    def test_degenerate_case_distribution_is_near_neutral(self):
        """'go' at scale 1 is ~97% case 00: with nothing to separate,
        steering must stay within noise of FCFS — the technique's
        honest boundary (its gain comes from case diversity)."""
        program = workload("go").build(1)
        stats, _, _ = measure_statistics([program], FUClass.IALU)
        assert stats.case_freq(0b00) > 0.9  # premise: degenerate
        policy = make_policy("lut-4", FUClass.IALU, 4, stats=stats)
        steered = PolicyEvaluator(FUClass.IALU, 4, policy)
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        sim = Simulator(program)
        sim.add_listener(steered)
        sim.add_listener(fcfs)
        sim.run()
        ratio = steered.totals().switched_bits \
            / fcfs.totals().switched_bits
        assert ratio == pytest.approx(1.0, abs=0.03)


class TestCompilerSwapPreservesEverything:
    @pytest.mark.parametrize("name",
                             [w.name for w in all_workloads()])
    def test_swapped_kernel_is_architecturally_identical(self, name):
        load = workload(name)
        program = load.build(1)
        swapped, _report = swap_optimize(program)
        result = run_program(swapped)
        load.check(program, result, 1)


class TestTraceReplayFidelity:
    def test_policy_scores_identical_live_and_replayed(self, tmp_path):
        """A stored trace must reproduce a policy's score exactly."""
        program = workload("cc1").build(1)
        fu_class = FUClass.IALU
        stats, _, _ = measure_statistics([program], fu_class)
        scheme = scheme_for(fu_class)

        def make_evaluator():
            policy = make_policy("lut-4", fu_class, 4, stats=stats)
            swapper = HardwareSwapper(scheme, choose_swap_case(stats))
            return PolicyEvaluator(fu_class, 4, policy,
                                   pre_swapper=swapper)

        live = make_evaluator()
        path = tmp_path / "cc1.trc.gz"
        sim = Simulator(program)
        with TraceWriter(path) as writer:
            sim.add_listener(writer)
            sim.add_listener(live)
            sim.run()

        replayed = make_evaluator()
        replay(path, [replayed])
        assert replayed.totals().switched_bits \
            == live.totals().switched_bits
        assert replayed.totals().hardware_swaps \
            == live.totals().hardware_swaps


class TestCollectorsAgreeWithRawTrace:
    def test_bit_pattern_totals_match_issue_counts(self):
        program = workload("perl").build(1)
        collector = BitPatternCollector(FUClass.IALU)
        trace = TraceCollector([FUClass.IALU])
        sim = Simulator(program)
        sim.add_listener(collector)
        sim.add_listener(trace)
        result = sim.run()
        assert collector.total_ops == trace.op_count()
        assert collector.total_ops == result.issue_counts[FUClass.IALU]

    def test_usage_busy_cycles_match_group_count(self):
        program = workload("perl").build(1)
        usage = ModuleUsageCollector([FUClass.IALU])
        trace = TraceCollector([FUClass.IALU])
        sim = Simulator(program)
        sim.add_listener(usage)
        sim.add_listener(trace)
        sim.run()
        assert usage.busy_cycles(FUClass.IALU) == len(trace.groups)


class TestEvaluatorStreamInvariants:
    def test_every_assignment_is_a_valid_permutation(self):
        """Over a whole kernel, every policy must map each group to
        distinct in-range modules (checked via a wrapping policy)."""
        from repro.core.statistics import paper_statistics

        program = workload("ijpeg").build(1)
        stats = paper_statistics(FUClass.IALU)
        inner = make_policy("lut-8", FUClass.IALU, 4, stats=stats)
        seen = []

        class Checking:
            name = "checking"

            def assign(self, ops, power):
                assignment = inner.assign(ops, power)
                assert len(set(assignment.modules)) == len(ops)
                assert all(0 <= m < 4 for m in assignment.modules)
                seen.append(len(ops))
                return assignment

        evaluator = PolicyEvaluator(FUClass.IALU, 4, Checking())
        sim = Simulator(program)
        sim.add_listener(evaluator)
        sim.run()
        assert seen and max(seen) <= 4
