"""Power model tests: Hamming accounting and multiplier activity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.power import (FUPowerModel, MultiplierActivityModel,
                              PowerParameters, booth_recode_activity,
                              operand_width, shift_add_activity)
from repro.isa import encoding
from repro.isa.instructions import FUClass

int_images = st.integers(min_value=0, max_value=encoding.INT_MASK)


class TestFUPowerModel:
    def test_first_operation_charged_from_zero(self):
        model = FUPowerModel(FUClass.IALU, 2)
        cost = model.account(0, 0b1011, 0b1)
        assert cost == 4  # 3 + 1 bits against the all-zero power-up state

    def test_repeat_inputs_cost_nothing(self):
        model = FUPowerModel(FUClass.IALU, 1)
        model.account(0, 123, 456)
        assert model.account(0, 123, 456) == 0

    def test_modules_have_independent_state(self):
        model = FUPowerModel(FUClass.IALU, 2)
        model.account(0, 0xFFFFFFFF, 0)
        assert model.account(1, 0xFFFFFFFF, 0) == 32

    def test_fp_uses_mantissa_only(self):
        model = FUPowerModel(FUClass.FPAU, 1)
        a = encoding.make_double(0, 1023, 0)
        b = encoding.make_double(1, 1040, 0)  # same mantissa, new exp/sign
        model.account(0, a, a)
        assert model.account(0, b, a) == 0
        assert operand_width(FUClass.FPAU) == 52
        assert operand_width(FUClass.IALU) == 32

    def test_peek_does_not_mutate(self):
        model = FUPowerModel(FUClass.IALU, 1)
        model.account(0, 1, 2)
        cost = model.peek_cost(0, 0xFF, 0)
        assert cost == model.peek_cost(0, 0xFF, 0)
        assert model.module_inputs(0) == (1, 2)

    def test_accumulates(self):
        model = FUPowerModel(FUClass.IALU, 1)
        model.account(0, 1, 0)
        model.account(0, 2, 0)
        assert model.switched_bits == 1 + 2  # 0->1 then 01->10
        assert model.operations == 2
        assert model.bits_per_operation == 1.5

    def test_reset(self):
        model = FUPowerModel(FUClass.IALU, 1)
        model.account(0, 0xFFFF, 0xFFFF)
        model.reset()
        assert model.switched_bits == 0
        assert model.module_inputs(0) == (0, 0)

    def test_module_range_checked(self):
        model = FUPowerModel(FUClass.IALU, 2)
        with pytest.raises(ValueError):
            model.account(2, 0, 0)
        with pytest.raises(ValueError):
            FUPowerModel(FUClass.IALU, 0)

    @given(int_images, int_images, int_images, int_images)
    def test_cost_is_hamming(self, p1, p2, n1, n2):
        model = FUPowerModel(FUClass.IALU, 1)
        model.account(0, p1, p2)
        expected = (encoding.hamming_int(p1, n1)
                    + encoding.hamming_int(p2, n2))
        assert model.account(0, n1, n2) == expected


class TestPowerParameters:
    def test_energy_scaling(self):
        params = PowerParameters(vdd=2.0, capacitance_per_bit_f=1e-12)
        assert params.energy_joules(10) == pytest.approx(0.5 * 4 * 1e-12 * 10)

    def test_average_power(self):
        params = PowerParameters()
        assert params.average_power_watts(0, 100) == 0.0
        assert params.average_power_watts(100, 0) == 0.0
        assert params.average_power_watts(100, 10) > 0


class TestMultiplierActivity:
    def test_shift_add_counts_ones(self):
        assert shift_add_activity(0b1011) == 3
        assert shift_add_activity(0) == 0
        assert shift_add_activity(0xFFFFFFFF, width=32) == 32

    def test_booth_constant_run_is_cheap(self):
        # Booth's advantage: a run of ones costs ~1 boundary, popcount 32
        minus_one = encoding.to_unsigned(-1)
        assert booth_recode_activity(minus_one, 32) == 1
        assert shift_add_activity(minus_one, 32) == 32

    def test_booth_alternating_is_expensive(self):
        assert booth_recode_activity(0x55555555, 32) == 32

    def test_booth_zero(self):
        assert booth_recode_activity(0, 32) == 0

    @given(int_images)
    def test_booth_bounded_by_width(self, bits):
        assert 0 <= booth_recode_activity(bits, 32) <= 32

    @given(int_images)
    def test_booth_never_worse_than_twice_runs(self, bits):
        # each run of ones contributes at most 2 boundaries
        runs = len([r for r in bin(bits)[2:].split("0") if r])
        assert booth_recode_activity(bits, 32) <= 2 * runs + 1

    def test_activity_model_accumulates(self):
        model = MultiplierActivityModel(FUClass.IMULT, add_weight=2.0)
        model.account(3, 0b101)
        # Booth digits of 0b101 (alternating bits) = 4 boundaries
        assert model.adds == 4
        assert model.switched_bits == 2 + 2  # 3 and 5 against zero state
        assert model.total_cost == 4 + 2.0 * 4

    def test_activity_model_shift_add_mode(self):
        model = MultiplierActivityModel(FUClass.IMULT, use_booth=False)
        model.account(1, encoding.to_unsigned(-1))
        assert model.adds == 32

    def test_fp_model_masks_to_mantissa(self):
        model = MultiplierActivityModel(FUClass.FPMULT)
        bits = encoding.make_double(1, 2000, 0)
        model.account(bits, bits)
        assert model.switched_bits == 0  # exponent/sign outside mantissa
