"""LUT synthesis tests (section 4.3)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.info_bits import CASES
from repro.core.lut import (SteeringLUT, allocate_homes,
                            allocate_homes_paper_rule, build_lut,
                            estimate_gate_cost)
from repro.core.statistics import CaseStatistics, paper_statistics
from repro.isa.instructions import FUClass


class TestHomeAllocation:
    def test_fpau_gets_one_module_per_case(self, fpau_stats):
        # the paper: "the best strategy is to first attempt to assign a
        # unique case to each module" for floating point
        assert allocate_homes(fpau_stats, 4) == (0b00, 0b01, 0b10, 0b11)

    def test_ialu_dominant_case_gets_multiple_modules(self, ialu_stats):
        homes = allocate_homes(ialu_stats, 4)
        assert homes.count(0b00) >= 2
        # the mixed cases keep representation
        assert 0b01 in homes or 0b10 in homes

    def test_paper_rule_ialu(self, ialu_stats):
        # "we assign three of the modules as being likely to contain
        # case 00, and we use the fourth module for all three other"
        homes = allocate_homes_paper_rule(ialu_stats, 4)
        assert homes.count(0b00) == 3

    def test_paper_rule_fpau(self, fpau_stats):
        assert allocate_homes_paper_rule(fpau_stats, 4) \
            == (0b00, 0b01, 0b10, 0b11)

    def test_single_module(self, ialu_stats):
        assert len(allocate_homes(ialu_stats, 1)) == 1

    def test_invalid_module_count(self, ialu_stats):
        with pytest.raises(ValueError):
            allocate_homes(ialu_stats, 0)
        with pytest.raises(ValueError):
            allocate_homes_paper_rule(ialu_stats, 0)

    def test_uniform_distribution_spreads_homes(self):
        stats = CaseStatistics(
            FUClass.IALU,
            {(case, True): 0.25 for case in CASES},
            {1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1})
        homes = allocate_homes(stats, 4)
        assert sorted(homes) == list(CASES)


class TestBuildLut:
    @pytest.fixture
    def ialu_lut(self, ialu_stats):
        return build_lut(ialu_stats, 4, 8)

    def test_table_is_total(self, ialu_lut):
        assert len(ialu_lut.table) == 4 ** 4
        for vector in itertools.product(CASES, repeat=4):
            assert vector in ialu_lut.table

    def test_assignments_are_permutations(self, ialu_lut):
        for assignment in ialu_lut.table.values():
            assert len(set(assignment)) == len(assignment)
            assert all(0 <= m < 4 for m in assignment)

    def test_pad_case_is_least_frequent(self, ialu_stats, ialu_lut):
        assert ialu_lut.pad_case == ialu_stats.least_case() == 0b11

    def test_lookup_pads_short_vectors(self, ialu_lut):
        single = ialu_lut.lookup((0b00,))
        assert len(single) == 1
        padded = ialu_lut.table[(0b00,) + (ialu_lut.pad_case,) * 3]
        assert single == padded[:1]

    def test_lookup_rejects_oversized(self, ialu_lut):
        with pytest.raises(ValueError):
            ialu_lut.lookup((0, 0, 0, 0, 0))

    def test_same_case_ops_go_to_home_modules(self, ialu_lut):
        # two case-00 ops land on the two 00-homed modules
        homes = ialu_lut.homes
        modules = ialu_lut.lookup((0b00, 0b00))
        assert all(homes[m] == 0b00 for m in modules)

    def test_distinct_cases_distinct_homes_fpau(self, fpau_stats):
        lut = build_lut(fpau_stats, 4, 8)
        modules = lut.lookup((0b00, 0b01, 0b10, 0b11))
        assert [lut.homes[m] for m in modules] == [0b00, 0b01, 0b10, 0b11]

    def test_vector_width_validation(self, ialu_stats):
        with pytest.raises(ValueError):
            build_lut(ialu_stats, 4, 3)
        with pytest.raises(ValueError):
            build_lut(ialu_stats, 4, 0)
        with pytest.raises(ValueError):
            build_lut(ialu_stats, 2, 8)  # more slots than modules

    def test_custom_homes(self, ialu_stats):
        homes = (0b00, 0b00, 0b00, 0b10)
        lut = build_lut(ialu_stats, 4, 4, homes=homes)
        assert lut.homes == homes
        with pytest.raises(ValueError):
            build_lut(ialu_stats, 4, 4, homes=(0b00,))

    def test_vector_bits_property(self, ialu_stats):
        assert build_lut(ialu_stats, 4, 4).vector_bits == 4

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from(CASES), min_size=1, max_size=4))
    def test_lookup_valid_for_any_prefix(self, cases):
        stats = paper_statistics(FUClass.IALU)
        for vector_bits in (2, 4, 8):
            lut = build_lut(stats, 4, vector_bits)
            prefix = cases[:lut.vector_ops]
            modules = lut.lookup(prefix)
            assert len(modules) == len(prefix)
            assert len(set(modules)) == len(modules)
            assert all(0 <= m < 4 for m in modules)


class TestGateCost:
    def test_calibrated_to_paper_points(self):
        # "requires 58 small logic gates and 6 logic levels" (8 RS
        # entries); "with 32 entries, 130 gates and 8 levels"
        small = estimate_gate_cost(4, 8)
        assert (small.gates, small.levels) == (58, 6)
        large = estimate_gate_cost(4, 32)
        assert (large.gates, large.levels) == (130, 8)

    def test_monotone_in_vector_width(self):
        assert estimate_gate_cost(8, 8).gates > estimate_gate_cost(4, 8).gates

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_gate_cost(0, 8)
        with pytest.raises(ValueError):
            estimate_gate_cost(4, 0)
