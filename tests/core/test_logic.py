"""Quine-McCluskey minimiser and LUT logic-synthesis tests."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logic import (LogicCost, SOPCover, cube_covers,
                              cube_literals, estimate_router_cost, minimize,
                              prime_implicants, synthesize_lut_logic,
                              synthesize_truth_table)
from repro.core.lut import build_lut
from repro.core.statistics import paper_statistics
from repro.isa.instructions import FUClass


class TestCubes:
    def test_cube_covers(self):
        cube = (0b110, 0b100)  # x2=1, x1=0, x0 free
        assert cube_covers(cube, 0b100)
        assert cube_covers(cube, 0b101)
        assert not cube_covers(cube, 0b110)

    def test_cube_literals(self):
        assert cube_literals((0b1011, 0)) == 3
        assert cube_literals((0, 0)) == 0


class TestMinimize:
    def test_textbook_example(self):
        # f(a,b,c,d) = sum m(4,8,10,11,12,15) + dc(9,14): minimal cover
        # is three terms (a classic QM exercise)
        cover = minimize([4, 8, 10, 11, 12, 15], 4, dont_cares=[9, 14])
        assert len(cover.cubes) == 3
        assert cover.literals == 7

    def test_constant_zero_and_one(self):
        assert minimize([], 3).constant == 0
        assert minimize(range(8), 3).constant == 1
        assert minimize([0, 1], 1).constant == 1

    def test_single_variable(self):
        cover = minimize([1], 1)
        assert cover.cubes == ((1, 1),)

    def test_xor_cannot_be_reduced(self):
        cover = minimize([0b01, 0b10], 2)
        assert len(cover.cubes) == 2
        assert cover.literals == 4

    def test_dont_cares_enlarge_cubes(self):
        with_dc = minimize([0b11], 2, dont_cares=[0b10])
        without = minimize([0b11], 2)
        assert with_dc.literals < without.literals

    def test_out_of_range_minterm(self):
        with pytest.raises(ValueError):
            minimize([8], 3)

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(0, 31), max_size=32),
           st.sets(st.integers(0, 31), max_size=8))
    def test_cover_is_exact_on_care_set(self, on_set, dc_set):
        """The minimised cover equals the spec everywhere outside DC."""
        cover = minimize(on_set, 5, dont_cares=dc_set)
        for assignment in range(32):
            if assignment in dc_set and assignment not in on_set:
                continue
            expected = int(assignment in on_set)
            assert cover.evaluate(assignment) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 15), min_size=1, max_size=15))
    def test_primes_cover_all_minterms(self, on_set):
        primes = prime_implicants(on_set, (), 4)
        for minterm in on_set:
            assert any(cube_covers(p, minterm) for p in primes)

    @settings(max_examples=40, deadline=None)
    @given(st.sets(st.integers(0, 15), min_size=1, max_size=15))
    def test_no_cube_covers_off_set(self, on_set):
        cover = minimize(on_set, 4)
        off_set = set(range(16)) - set(on_set)
        for cube in cover.cubes:
            for minterm in off_set:
                assert not cube_covers(cube, minterm)


class TestMultiOutput:
    def test_shared_terms_counted_once(self):
        # two identical outputs share their AND terms
        bits = [1 if i in (3, 7) else 0 for i in range(8)]
        single = synthesize_truth_table([bits], 3)
        double = synthesize_truth_table([bits, bits], 3)
        assert double.gates <= single.gates + 1  # at most one extra OR

    def test_constant_outputs_free(self):
        cost = synthesize_truth_table([[0] * 4, [1] * 4], 2)
        assert cost.gates == 0
        assert cost.levels == 0

    def test_inverters_counted(self):
        # f = NOT a (1 var): one inverter, no AND/OR
        cost = synthesize_truth_table([[1, 0]], 1)
        assert cost.gates == 1
        assert cost.levels == 1


class TestLutSynthesis:
    @pytest.fixture(scope="class")
    def ialu_lut(self):
        return build_lut(paper_statistics(FUClass.IALU), 4, 4)

    def test_synthesis_matches_lut_exactly(self, ialu_lut):
        """The minimised network must compute the same assignment as the
        behavioural table for every vector."""
        cost = synthesize_lut_logic(ialu_lut)
        select_bits = 2
        for index in range(1 << ialu_lut.vector_bits):
            cases = []
            for slot in range(ialu_lut.vector_ops):
                shift = 2 * (ialu_lut.vector_ops - 1 - slot)
                cases.append((index >> shift) & 0b11)
            expected = ialu_lut.table[tuple(cases)]
            for slot, module in enumerate(expected):
                for bit in range(select_bits):
                    cover = cost.covers[slot * select_bits + bit]
                    assert cover.evaluate(index) == (module >> bit) & 1

    def test_router_cost_reproduces_paper_numbers(self, ialu_lut):
        # "requires 58 small logic gates and 6 logic levels" (8 RS
        # entries); "with 32 entries, 130 gates and 8 levels are needed"
        small = estimate_router_cost(ialu_lut, 8)
        assert (small.gates, small.levels) == (58, 6)
        large = estimate_router_cost(ialu_lut, 32)
        assert (large.gates, large.levels) == (130, 8)

    def test_wider_vector_costs_more(self):
        stats = paper_statistics(FUClass.IALU)
        narrow = synthesize_lut_logic(build_lut(stats, 4, 2))
        wide = synthesize_lut_logic(build_lut(stats, 4, 8))
        assert wide.gates > narrow.gates

    def test_router_cost_validation(self, ialu_lut):
        with pytest.raises(ValueError):
            estimate_router_cost(ialu_lut, 0)

    def test_rejects_non_lut(self):
        with pytest.raises(TypeError):
            synthesize_lut_logic("not a lut")
