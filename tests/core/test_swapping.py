"""Operand swapping tests (section 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.info_bits import PAPER_FP_SCHEME, PAPER_INT_SCHEME, case_of
from repro.core.power import booth_recode_activity, shift_add_activity
from repro.core.swapping import (HardwareSwapper, MultiplierSwapper,
                                 SwapMode, choose_swap_case)
from repro.cpu.trace import MicroOp
from repro.isa import encoding
from repro.isa.instructions import opcode

NEG = encoding.to_unsigned(-42)
POS = 42


class TestChooseSwapCase:
    def test_paper_directions(self, ialu_stats, fpau_stats):
        # "case 01 instructions will be swapped for the IALU, and case
        # 10 instructions for the FPAU"
        assert choose_swap_case(ialu_stats) == 0b01
        assert choose_swap_case(fpau_stats) == 0b10


class TestHardwareSwapper:
    def test_swaps_target_case_commutative(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        op = MicroOp(opcode("add"), POS, NEG)  # case 01
        swapped = swapper(op)
        assert (swapped.op1, swapped.op2) == (NEG, POS)
        assert swapper.swaps_performed == 1

    def test_leaves_other_cases(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        op = MicroOp(opcode("add"), NEG, POS)  # case 10
        assert swapper(op) is op
        both_pos = MicroOp(opcode("add"), POS, POS)
        assert swapper(both_pos) is both_pos

    def test_leaves_non_commutative(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        op = MicroOp(opcode("sub"), POS, NEG)
        assert swapper(op) is op
        assert swapper.swaps_performed == 0

    def test_leaves_immediate_forms(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        op = MicroOp(opcode("addi"), POS, NEG)
        assert swapper(op) is op

    def test_rejects_unswappable_case(self):
        with pytest.raises(ValueError):
            HardwareSwapper(PAPER_INT_SCHEME, 0b00)

    @given(st.integers(0, encoding.INT_MASK), st.integers(0, encoding.INT_MASK))
    def test_output_case_never_swap_from(self, a, b):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        result = swapper(MicroOp(opcode("add"), a, b))
        assert case_of(result, PAPER_INT_SCHEME) != 0b01 \
            or case_of(MicroOp(opcode("add"), a, b), PAPER_INT_SCHEME) != 0b01


class TestMultiplierSwapper:
    def test_info_bit_mode_swaps_case_01(self):
        round_fp = encoding.float_to_bits(2.0)
        dense_fp = encoding.float_to_bits(2.0000000001)
        swapper = MultiplierSwapper(PAPER_FP_SCHEME, SwapMode.INFO_BIT)
        op = MicroOp(opcode("fmul"), round_fp, dense_fp)  # case 01
        swapped = swapper(op)
        assert swapped.op1 == dense_fp and swapped.op2 == round_fp

    def test_info_bit_mode_keeps_case_10(self):
        round_fp = encoding.float_to_bits(2.0)
        dense_fp = encoding.float_to_bits(2.0000000001)
        swapper = MultiplierSwapper(PAPER_FP_SCHEME, SwapMode.INFO_BIT)
        op = MicroOp(opcode("fmul"), dense_fp, round_fp)
        assert swapper(op) is op

    def test_non_commutative_division_untouched(self):
        swapper = MultiplierSwapper(PAPER_INT_SCHEME, SwapMode.POPCOUNT)
        op = MicroOp(opcode("div"), 0, 0xFFFF)
        assert swapper(op) is op

    @given(st.integers(0, encoding.INT_MASK), st.integers(0, encoding.INT_MASK))
    def test_popcount_mode_never_increases_second_operand_ones(self, a, b):
        swapper = MultiplierSwapper(PAPER_INT_SCHEME, SwapMode.POPCOUNT,
                                    width=32)
        result = swapper(MicroOp(opcode("mult"), a, b))
        assert shift_add_activity(result.op2, 32) \
            <= shift_add_activity(result.op1, 32) \
            or shift_add_activity(result.op2, 32) == shift_add_activity(b, 32)

    @given(st.integers(0, encoding.INT_MASK), st.integers(0, encoding.INT_MASK))
    def test_popcount_swap_minimises(self, a, b):
        swapper = MultiplierSwapper(PAPER_INT_SCHEME, SwapMode.POPCOUNT,
                                    width=32)
        result = swapper(MicroOp(opcode("mult"), a, b))
        assert shift_add_activity(result.op2, 32) \
            == min(shift_add_activity(a, 32), shift_add_activity(b, 32))

    @given(st.integers(0, encoding.INT_MASK), st.integers(0, encoding.INT_MASK))
    def test_booth_swap_minimises(self, a, b):
        swapper = MultiplierSwapper(PAPER_INT_SCHEME, SwapMode.BOOTH,
                                    width=32)
        result = swapper(MicroOp(opcode("mult"), a, b))
        assert booth_recode_activity(result.op2, 32) \
            == min(booth_recode_activity(a, 32),
                   booth_recode_activity(b, 32))

    def test_swap_counter(self):
        swapper = MultiplierSwapper(PAPER_INT_SCHEME, SwapMode.POPCOUNT,
                                    width=32)
        swapper(MicroOp(opcode("mult"), 0b1, 0b111))
        swapper(MicroOp(opcode("mult"), 0b111, 0b1))
        assert swapper.swaps_performed == 1
