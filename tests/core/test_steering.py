"""Steering policy and evaluator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.info_bits import PAPER_INT_SCHEME, scheme_for
from repro.core.lut import build_lut
from repro.core.power import FUPowerModel
from repro.core.statistics import paper_statistics
from repro.core.steering import (FullHammingPolicy, LUTPolicy,
                                 OneBitHammingPolicy, OriginalPolicy,
                                 PolicyEvaluator, RoundRobinPolicy,
                                 make_policy)
from repro.core.swapping import HardwareSwapper
from repro.cpu.trace import IssueGroup, MicroOp
from repro.isa import encoding
from repro.isa.instructions import FUClass, opcode
from repro.workloads.generators import SyntheticStream

NEG = encoding.to_unsigned(-100)


def group(ops, cycle=0, fu_class=FUClass.IALU):
    return IssueGroup(cycle, fu_class, ops)


def add_op(a, b):
    return MicroOp(opcode("add"), a, b)


class TestOriginalPolicy:
    def test_fcfs_order(self):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2), add_op(3, 4), add_op(5, 6)]
        assignment = OriginalPolicy().assign(ops, power)
        assert assignment.modules == (0, 1, 2)
        assert assignment.swapped == (False,) * 3


class TestRoundRobinPolicy:
    def test_rotates(self):
        power = FUPowerModel(FUClass.IALU, 4)
        policy = RoundRobinPolicy()
        first = policy.assign([add_op(1, 2), add_op(3, 4)], power)
        second = policy.assign([add_op(5, 6)], power)
        assert first.modules == (0, 1)
        assert second.modules == (2,)


class TestFullHammingPolicy:
    def test_routes_to_matching_module(self):
        power = FUPowerModel(FUClass.IALU, 2)
        power.account(0, 100, 200)
        power.account(1, NEG, NEG)
        assignment = FullHammingPolicy().assign([add_op(NEG, NEG)], power)
        assert assignment.modules == (1,)

    def test_swap_needs_flag(self):
        power = FUPowerModel(FUClass.IALU, 1)
        power.account(0, 100, NEG)
        no_swap = FullHammingPolicy().assign([add_op(NEG, 100)], power)
        with_swap = FullHammingPolicy(allow_swap=True).assign(
            [add_op(NEG, 100)], power)
        assert no_swap.swapped == (False,)
        assert with_swap.swapped == (True,)

    def test_names(self):
        assert FullHammingPolicy().name == "full-ham"
        assert FullHammingPolicy(allow_swap=True).name == "full-ham+swap"


class TestOneBitHammingPolicy:
    def test_sees_only_info_bits(self):
        power = FUPowerModel(FUClass.IALU, 2)
        # module 0 latched positives differing in many low bits
        power.account(0, 0x7FFF, 0x7FFF)
        power.account(1, NEG, NEG)
        policy = OneBitHammingPolicy(scheme=PAPER_INT_SCHEME)
        # a (pos, pos) op: info bits match module 0 exactly
        assignment = policy.assign([add_op(3, 5)], power)
        assert assignment.modules == (0,)


class TestLUTPolicy:
    @pytest.fixture
    def lut_policy(self, ialu_stats):
        lut = build_lut(ialu_stats, 4, 4)
        return LUTPolicy(lut=lut, scheme=scheme_for(FUClass.IALU))

    def test_default_name(self, lut_policy):
        assert lut_policy.name == "lut-4bit"

    def test_overflow_ops_fall_back_to_free_modules(self, lut_policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2), add_op(3, 4), add_op(5, 6), add_op(7, 8)]
        assignment = lut_policy.assign(ops, power)
        # 4 ops on a 2-slot vector: all modules used exactly once
        assert sorted(assignment.modules) == [0, 1, 2, 3]

    def test_stateless(self, lut_policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2)]
        first = lut_policy.assign(ops, power)
        power.account(first.modules[0], 1, 2)
        second = lut_policy.assign(ops, power)
        assert first.modules == second.modules


class TestMakePolicy:
    def test_all_kinds(self, ialu_stats):
        for kind in ("original", "round-robin", "full-ham", "1bit-ham",
                     "lut-8", "lut-4", "lut-2"):
            policy = make_policy(kind, FUClass.IALU, 4, stats=ialu_stats)
            assert policy is not None

    def test_lut_requires_stats(self):
        with pytest.raises(ValueError, match="need case statistics"):
            make_policy("lut-4", FUClass.IALU, 4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("magic", FUClass.IALU, 4)


class TestPolicyEvaluator:
    def test_ignores_other_classes(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([MicroOp(opcode("fadd"), 1, 2)],
                        fu_class=FUClass.FPAU))
        assert evaluator.power.operations == 0

    def test_accounts_each_op_once(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([add_op(1, 2), add_op(3, 4)]))
        assert evaluator.power.operations == 2
        assert evaluator.cycles_seen == 1

    def test_pre_swapper_applied(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy(),
                                    pre_swapper=swapper)
        evaluator(group([add_op(100, NEG)]))  # case 01 -> swapped
        assert swapper.swaps_performed == 1
        assert evaluator.power.module_inputs(0) == (NEG, 100)
        assert "hwswap" in evaluator.label

    def test_policy_swap_applied_to_accounting(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 1,
                                    FullHammingPolicy(allow_swap=True))
        evaluator(group([add_op(100, NEG)]))
        evaluator(group([add_op(NEG, 100)], cycle=1))
        # the second op should be swapped to match the latched (100, NEG)
        assert evaluator.power.module_inputs(0) == (100, NEG)

    def test_totals(self, ialu_stats):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([add_op(0xF, 0)]))
        totals = evaluator.totals()
        assert totals.switched_bits == 4
        assert totals.operations == 1
        assert totals.policy == "original"
        assert totals.bits_per_operation == 4.0

    def test_reduction_vs(self):
        a = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        b = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        a(group([add_op(0xF, 0)]))
        b(group([add_op(0x3, 0)]))
        assert b.totals().reduction_vs(a.totals()) == pytest.approx(0.5)


class TestPolicyQualityOrdering:
    """The qualitative Figure 4 ordering must hold on calibrated streams."""

    @pytest.mark.parametrize("fu_class", [FUClass.IALU, FUClass.FPAU])
    def test_steering_beats_fcfs(self, fu_class):
        stats = paper_statistics(fu_class)
        evaluators = {
            kind: PolicyEvaluator(fu_class, 4,
                                  make_policy(kind, fu_class, 4, stats=stats))
            for kind in ("original", "lut-4", "full-ham", "1bit-ham")}
        stream = SyntheticStream(stats, seed=11)
        for issue_group in stream.groups(4000):
            for evaluator in evaluators.values():
                evaluator(issue_group)
        bits = {kind: e.totals().switched_bits
                for kind, e in evaluators.items()}
        assert bits["lut-4"] < bits["original"]
        assert bits["full-ham"] < bits["original"]
        assert bits["1bit-ham"] < bits["original"]

    def test_wider_vector_no_worse(self):
        stats = paper_statistics(FUClass.IALU)
        evaluators = {
            kind: PolicyEvaluator(FUClass.IALU, 4,
                                  make_policy(kind, FUClass.IALU, 4,
                                              stats=stats))
            for kind in ("lut-2", "lut-4", "lut-8")}
        stream = SyntheticStream(stats, seed=5)
        for issue_group in stream.groups(6000):
            for evaluator in evaluators.values():
                evaluator(issue_group)
        bits = {kind: e.totals().switched_bits
                for kind, e in evaluators.items()}
        assert bits["lut-8"] <= bits["lut-4"] <= bits["lut-2"]
