"""Steering policy and evaluator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.info_bits import PAPER_INT_SCHEME, scheme_for
from repro.core.lut import build_lut
from repro.core.power import FUPowerModel
from repro.core.statistics import paper_statistics
from repro.core.steering import (FullHammingPolicy, LUTPolicy,
                                 OneBitHammingPolicy, OriginalPolicy,
                                 PolicyEvaluator, RoundRobinPolicy,
                                 SharedEvaluationCoordinator, make_policy)
from repro.core.swapping import HardwareSwapper
from repro.cpu.simulator import Simulator
from repro.cpu.trace import IssueGroup, MicroOp, TraceCollector
from repro.isa import encoding
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass, opcode
from repro.workloads.generators import SyntheticStream

NEG = encoding.to_unsigned(-100)


def group(ops, cycle=0, fu_class=FUClass.IALU):
    return IssueGroup(cycle, fu_class, ops)


def add_op(a, b):
    return MicroOp(opcode("add"), a, b)


class TestOriginalPolicy:
    def test_fcfs_order(self):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2), add_op(3, 4), add_op(5, 6)]
        assignment = OriginalPolicy().assign(ops, power)
        assert assignment.modules == (0, 1, 2)
        assert assignment.swapped == (False,) * 3


class TestRoundRobinPolicy:
    def test_rotates(self):
        power = FUPowerModel(FUClass.IALU, 4)
        policy = RoundRobinPolicy()
        first = policy.assign([add_op(1, 2), add_op(3, 4)], power)
        second = policy.assign([add_op(5, 6)], power)
        assert first.modules == (0, 1)
        assert second.modules == (2,)


class TestFullHammingPolicy:
    def test_routes_to_matching_module(self):
        power = FUPowerModel(FUClass.IALU, 2)
        power.account(0, 100, 200)
        power.account(1, NEG, NEG)
        assignment = FullHammingPolicy().assign([add_op(NEG, NEG)], power)
        assert assignment.modules == (1,)

    def test_swap_needs_flag(self):
        power = FUPowerModel(FUClass.IALU, 1)
        power.account(0, 100, NEG)
        no_swap = FullHammingPolicy().assign([add_op(NEG, 100)], power)
        with_swap = FullHammingPolicy(allow_swap=True).assign(
            [add_op(NEG, 100)], power)
        assert no_swap.swapped == (False,)
        assert with_swap.swapped == (True,)

    def test_names(self):
        assert FullHammingPolicy().name == "full-ham"
        assert FullHammingPolicy(allow_swap=True).name == "full-ham+swap"


class TestOneBitHammingPolicy:
    def test_sees_only_info_bits(self):
        power = FUPowerModel(FUClass.IALU, 2)
        # module 0 latched positives differing in many low bits
        power.account(0, 0x7FFF, 0x7FFF)
        power.account(1, NEG, NEG)
        policy = OneBitHammingPolicy(scheme=PAPER_INT_SCHEME)
        # a (pos, pos) op: info bits match module 0 exactly
        assignment = policy.assign([add_op(3, 5)], power)
        assert assignment.modules == (0,)


class TestLUTPolicy:
    @pytest.fixture
    def lut_policy(self, ialu_stats):
        lut = build_lut(ialu_stats, 4, 4)
        return LUTPolicy(lut=lut, scheme=scheme_for(FUClass.IALU))

    def test_default_name(self, lut_policy):
        assert lut_policy.name == "lut-4bit"

    def test_overflow_ops_fall_back_to_free_modules(self, lut_policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2), add_op(3, 4), add_op(5, 6), add_op(7, 8)]
        assignment = lut_policy.assign(ops, power)
        # 4 ops on a 2-slot vector: all modules used exactly once
        assert sorted(assignment.modules) == [0, 1, 2, 3]

    def test_stateless(self, lut_policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [add_op(1, 2)]
        first = lut_policy.assign(ops, power)
        power.account(first.modules[0], 1, 2)
        second = lut_policy.assign(ops, power)
        assert first.modules == second.modules


class TestMakePolicy:
    def test_all_kinds(self, ialu_stats):
        for kind in ("original", "round-robin", "full-ham", "1bit-ham",
                     "lut-8", "lut-4", "lut-2"):
            policy = make_policy(kind, FUClass.IALU, 4, stats=ialu_stats)
            assert policy is not None

    def test_lut_requires_stats(self):
        with pytest.raises(ValueError, match="need case statistics"):
            make_policy("lut-4", FUClass.IALU, 4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("magic", FUClass.IALU, 4)


class TestPolicyEvaluator:
    def test_ignores_other_classes(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([MicroOp(opcode("fadd"), 1, 2)],
                        fu_class=FUClass.FPAU))
        assert evaluator.power.operations == 0

    def test_accounts_each_op_once(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([add_op(1, 2), add_op(3, 4)]))
        assert evaluator.power.operations == 2
        assert evaluator.cycles_seen == 1

    def test_pre_swapper_applied(self):
        swapper = HardwareSwapper(PAPER_INT_SCHEME, 0b01)
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy(),
                                    pre_swapper=swapper)
        evaluator(group([add_op(100, NEG)]))  # case 01 -> swapped
        assert swapper.swaps_performed == 1
        assert evaluator.power.module_inputs(0) == (NEG, 100)
        assert "hwswap" in evaluator.label

    def test_policy_swap_applied_to_accounting(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 1,
                                    FullHammingPolicy(allow_swap=True))
        evaluator(group([add_op(100, NEG)]))
        evaluator(group([add_op(NEG, 100)], cycle=1))
        # the second op should be swapped to match the latched (100, NEG)
        assert evaluator.power.module_inputs(0) == (100, NEG)

    def test_totals(self, ialu_stats):
        evaluator = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        evaluator(group([add_op(0xF, 0)]))
        totals = evaluator.totals()
        assert totals.switched_bits == 4
        assert totals.operations == 1
        assert totals.policy == "original"
        assert totals.bits_per_operation == 4.0

    def test_reduction_vs(self):
        a = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        b = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        a(group([add_op(0xF, 0)]))
        b(group([add_op(0x3, 0)]))
        assert b.totals().reduction_vs(a.totals()) == pytest.approx(0.5)

    def test_reduction_vs_both_zero_is_zero(self):
        # an empty stream is legitimately 0% reduction
        a = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        b = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        assert b.totals().reduction_vs(a.totals()) == 0.0

    def test_reduction_vs_degenerate_baseline_raises(self):
        # a baseline that switched nothing while this policy switched
        # something cannot describe the same stream — refuse loudly
        # instead of reporting "no reduction"
        baseline = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        other = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        other(group([add_op(0xF, 0)]))
        with pytest.raises(ValueError, match="original"):
            other.totals().reduction_vs(baseline.totals())


class TestPolicyQualityOrdering:
    """The qualitative Figure 4 ordering must hold on calibrated streams."""

    @pytest.mark.parametrize("fu_class", [FUClass.IALU, FUClass.FPAU])
    def test_steering_beats_fcfs(self, fu_class):
        stats = paper_statistics(fu_class)
        evaluators = {
            kind: PolicyEvaluator(fu_class, 4,
                                  make_policy(kind, fu_class, 4, stats=stats))
            for kind in ("original", "lut-4", "full-ham", "1bit-ham")}
        stream = SyntheticStream(stats, seed=11)
        for issue_group in stream.groups(4000):
            for evaluator in evaluators.values():
                evaluator(issue_group)
        bits = {kind: e.totals().switched_bits
                for kind, e in evaluators.items()}
        assert bits["lut-4"] < bits["original"]
        assert bits["full-ham"] < bits["original"]
        assert bits["1bit-ham"] < bits["original"]

    def test_wider_vector_no_worse(self):
        stats = paper_statistics(FUClass.IALU)
        evaluators = {
            kind: PolicyEvaluator(FUClass.IALU, 4,
                                  make_policy(kind, FUClass.IALU, 4,
                                              stats=stats))
            for kind in ("lut-2", "lut-4", "lut-8")}
        stream = SyntheticStream(stats, seed=5)
        for issue_group in stream.groups(6000):
            for evaluator in evaluators.values():
                evaluator(issue_group)
        bits = {kind: e.totals().switched_bits
                for kind, e in evaluators.items()}
        assert bits["lut-8"] <= bits["lut-4"] <= bits["lut-2"]


class TestModuleClamping:
    """Policies may see wider issue groups than they have modules, and a
    LUT built for a wider machine may emit module indices the power
    model does not have; both must be clamped into range."""

    def test_lut_built_for_wider_machine_is_clamped(self, ialu_stats):
        lut = build_lut(ialu_stats, 8, 4)  # table thinks it has 8 modules
        policy = LUTPolicy(lut=lut, scheme=scheme_for(FUClass.IALU))
        power = FUPowerModel(FUClass.IALU, 2)
        ops = [add_op(1, 2), add_op(NEG, NEG)]
        assignment = policy.assign(ops, power)
        assert all(0 <= m < 2 for m in assignment.modules)
        assert len(set(assignment.modules)) == len(assignment.modules)

    def test_lut_group_wider_than_modules(self, ialu_stats):
        lut = build_lut(ialu_stats, 2, 4)
        policy = LUTPolicy(lut=lut, scheme=scheme_for(FUClass.IALU))
        power = FUPowerModel(FUClass.IALU, 2)
        ops = [add_op(k, k + 1) for k in range(5)]  # len(ops) > modules
        assignment = policy.assign(ops, power)
        assert len(assignment.modules) == 2
        assert sorted(assignment.modules) == [0, 1]

    def test_original_policy_group_wider_than_modules(self):
        power = FUPowerModel(FUClass.IALU, 3)
        ops = [add_op(k, k) for k in range(7)]
        assignment = OriginalPolicy().assign(ops, power)
        assert assignment.modules == (0, 1, 2)

    def test_round_robin_group_wider_than_modules(self):
        power = FUPowerModel(FUClass.IALU, 2)
        assignment = RoundRobinPolicy().assign(
            [add_op(k, k) for k in range(5)], power)
        assert len(assignment.modules) == 2
        assert all(0 <= m < 2 for m in assignment.modules)

    def test_evaluator_accounts_at_most_num_modules_ops(self):
        evaluator = PolicyEvaluator(FUClass.IALU, 2, OriginalPolicy())
        evaluator(group([add_op(k, k) for k in range(6)]))
        # a router with 2 ports physically sees 2 operations
        assert evaluator.power.operations == 2


class TestSharedEvaluationCoordinator:
    def _stream(self, ialu_stats, cycles=500):
        return list(SyntheticStream(ialu_stats, seed=3).groups(cycles))

    def test_matches_independent_evaluators(self, ialu_stats):
        def build():
            return [
                PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()),
                PolicyEvaluator(FUClass.IALU, 4,
                                make_policy("lut-4", FUClass.IALU, 4,
                                            stats=ialu_stats)),
                PolicyEvaluator(FUClass.IALU, 4, FullHammingPolicy()),
            ]

        independent = build()
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        shared = [coordinator.add(ev) for ev in build()]
        for g in self._stream(ialu_stats):
            for ev in independent:
                ev(g)
            coordinator(g)
        for ind, sh in zip(independent, shared):
            assert ind.totals() == sh.totals()

    def test_fu_class_mismatch_rejected(self):
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        with pytest.raises(ValueError, match="coordinator"):
            coordinator.add(PolicyEvaluator(FUClass.FPAU, 4,
                                            OriginalPolicy()))

    def test_ignores_other_class_groups(self):
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        evaluator = coordinator.add(
            PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()))
        coordinator(group([MicroOp(opcode("fadd"), 1, 2)],
                          fu_class=FUClass.FPAU))
        assert evaluator.power.operations == 0

    def test_deferred_evaluator_buffers_until_finalize(self):
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        deferred = coordinator.add(
            PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy(),
                            include_speculative=False))
        coordinator(group([add_op(1, 2)]))
        assert deferred.power.operations == 0  # buffered, not yet charged
        coordinator.finalize()
        assert deferred.power.operations == 1

    def test_shared_policy_instance_advances_once_per_cycle(self):
        # one round-robin instance feeding two accounting models must
        # rotate once per cycle, as a single piece of hardware would
        policy = RoundRobinPolicy()
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        first = coordinator.add(PolicyEvaluator(FUClass.IALU, 4, policy))
        second = coordinator.add(PolicyEvaluator(FUClass.IALU, 4, policy))
        coordinator(group([add_op(1, 2), add_op(3, 4)]))
        assert policy._next == 2  # advanced once, not twice
        assert first.power.operations == 2
        assert second.power.operations == 2

    def test_totals_in_registration_order(self, ialu_stats):
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        coordinator.add(PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()))
        coordinator.add(PolicyEvaluator(FUClass.IALU, 4,
                                        RoundRobinPolicy()))
        coordinator(group([add_op(1, 2)]))
        labels = [t.policy for t in coordinator.totals()]
        assert labels == ["original", "round-robin"]


class TestWrongPathAccounting:
    """Regression for include_speculative=False: the simulator marks
    wrong-path micro-ops only retroactively at flush time, so an
    excluding evaluator must defer accounting until the flags are
    final rather than filtering the live stream (where every op still
    looks correct-path)."""

    # the exit branch trains not-taken, so the final taken execution
    # mispredicts and the adds behind it issue on the wrong path; the
    # slow div keeps the branch unresolved long enough for them to issue
    SOURCE = """
.text
    li r1, 6
    li r2, 7
loop:
    addi r1, r1, -1
    div r3, r2, r2
    beq r1, r0, done
    add r4, r2, r1
    add r5, r4, r2
    add r6, r5, r1
    j loop
done:
    add r7, r2, r2
    halt
"""

    def _run(self):
        program = assemble(self.SOURCE)
        sim = Simulator(program)
        inclusive = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        exclusive = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy(),
                                    include_speculative=False)
        trace = TraceCollector([FUClass.IALU])
        for listener in (inclusive, exclusive, trace):
            sim.add_listener(listener)
        result = sim.run()
        return result, inclusive, exclusive, trace

    def test_exclusive_skips_wrong_path_ops(self):
        result, inclusive, exclusive, _ = self._run()
        assert result.squashed_ops > 0, "workload must mispredict"
        inc = inclusive.totals()
        exc = exclusive.totals()
        assert exc.operations < inc.operations

    def test_exclusive_matches_trace_replay(self):
        _, _, exclusive, trace = self._run()
        replay = FUPowerModel(FUClass.IALU, 4)
        policy = OriginalPolicy()
        cycles = 0
        for g in trace.groups:
            ops = [op for op in g.ops if not op.speculative][:4]
            if not ops:
                continue
            assignment = policy.assign(ops, replay)
            replay.account_group(ops, assignment.modules,
                                 assignment.swapped)
            cycles += 1
        totals = exclusive.totals()
        assert totals.switched_bits == replay.switched_bits
        assert totals.operations == replay.operations
        assert totals.cycles_seen == cycles
