"""The policy-family registry: resolution, errors, metadata, and
back-compat with the pre-registry ``make_policy`` dispatch table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.batch  # noqa: F401 -- registers the fused batch kernels
from repro.core.bdd import BDDPolicy
from repro.core.info_bits import scheme_for
from repro.core.lut import build_lut
from repro.core.registry import (PolicyFamily, PolicyNameError,
                                 PolicyRegistry, REGISTRY, exact_name,
                                 int_suffix)
from repro.core.statistics import paper_statistics
from repro.core.steering import (FullHammingPolicy, LUTPolicy,
                                 OneBitHammingPolicy, OriginalPolicy,
                                 PolicyEvaluator, RoundRobinPolicy,
                                 make_policy)
from repro.isa.instructions import FUClass
from repro.workloads.generators import SyntheticStream

LEGACY_KINDS = ("original", "round-robin", "full-ham", "1bit-ham",
                "lut-8", "lut-4", "lut-2")


def _reference_policy(kind, fu_class, num_modules, stats, allow_swap=False):
    """Hand-written equivalent of the pre-registry ``make_policy`` body:
    the oracle the registry must stay behaviourally identical to."""
    scheme = scheme_for(fu_class)
    if kind == "original":
        return OriginalPolicy()
    if kind == "round-robin":
        return RoundRobinPolicy()
    if kind == "full-ham":
        return FullHammingPolicy(allow_swap=allow_swap)
    if kind == "1bit-ham":
        return OneBitHammingPolicy(scheme=scheme, allow_swap=allow_swap)
    assert kind.startswith("lut-")
    lut = build_lut(stats, num_modules, int(kind[4:]))
    return LUTPolicy(lut=lut, scheme=scheme)


class TestErrorQuality:
    def test_malformed_lut_suffix_is_not_a_bare_int_error(self):
        with pytest.raises(PolicyNameError) as excinfo:
            make_policy("lut-abc", FUClass.IALU, 4)
        message = str(excinfo.value)
        assert "lut-abc" in message
        assert "lut-<bits>" in message
        assert "registered kinds" in message
        # not the bare int() traceback text
        assert "invalid literal" not in message

    def test_malformed_bdd_suffix(self):
        with pytest.raises(PolicyNameError, match="bdd-<bits>"):
            make_policy("bdd-x", FUClass.IALU, 4)

    def test_unknown_kind_lists_every_registered_kind(self):
        with pytest.raises(PolicyNameError) as excinfo:
            make_policy("magic", FUClass.IALU, 4)
        message = str(excinfo.value)
        for syntax in ("original", "round-robin", "full-ham", "1bit-ham",
                       "lut-<bits>", "bdd-<bits>"):
            assert syntax in message

    def test_errors_are_valueerrors_for_old_callers(self):
        with pytest.raises(ValueError):
            make_policy("magic", FUClass.IALU, 4)

    def test_stats_requirement_named_by_syntax(self):
        with pytest.raises(PolicyNameError, match="need case statistics"):
            make_policy("bdd-4", FUClass.IALU, 4)


class TestBackCompat:
    """Registry-built policies must be behaviourally identical to the
    pre-refactor dispatch table, for every legacy kind."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           num_modules=st.sampled_from([2, 4]),
           fu_class=st.sampled_from([FUClass.IALU, FUClass.FPAU]))
    def test_behaviourally_identical_on_synthetic_streams(
            self, seed, num_modules, fu_class):
        stats = paper_statistics(fu_class)
        groups = list(SyntheticStream(stats, seed=seed).groups(400))
        # a lut vector cannot encode more slots than the machine has
        # modules — the same pre-existing limit in both constructions
        kinds = [kind for kind in LEGACY_KINDS
                 if not (kind.startswith("lut-")
                         and int(kind[4:]) // 2 > num_modules)]
        for kind in kinds:
            registry_ev = PolicyEvaluator(
                fu_class, num_modules,
                make_policy(kind, fu_class, num_modules, stats=stats))
            reference_ev = PolicyEvaluator(
                fu_class, num_modules,
                _reference_policy(kind, fu_class, num_modules, stats))
            for g in groups:
                registry_ev(g)
                reference_ev(g)
            assert registry_ev.totals() == reference_ev.totals(), kind

    @pytest.mark.parametrize("kind", ("full-ham", "1bit-ham"))
    def test_allow_swap_forwarded(self, kind, ialu_stats):
        groups = list(SyntheticStream(ialu_stats, seed=9).groups(400))
        mine = PolicyEvaluator(
            FUClass.IALU, 4,
            make_policy(kind, FUClass.IALU, 4, stats=ialu_stats,
                        allow_swap=True))
        theirs = PolicyEvaluator(
            FUClass.IALU, 4,
            _reference_policy(kind, FUClass.IALU, 4, ialu_stats,
                              allow_swap=True))
        for g in groups:
            mine(g)
            theirs(g)
        assert mine.totals() == theirs.totals()

    def test_same_policy_types(self, ialu_stats):
        expected = {"original": OriginalPolicy,
                    "round-robin": RoundRobinPolicy,
                    "full-ham": FullHammingPolicy,
                    "1bit-ham": OneBitHammingPolicy,
                    "lut-4": LUTPolicy}
        for kind, cls in expected.items():
            policy = make_policy(kind, FUClass.IALU, 4, stats=ialu_stats)
            assert type(policy) is cls, kind


class TestRegistration:
    def _family(self, name="toy", policy_types=()):
        return PolicyFamily(name=name, syntax=name, description="toy",
                            parse=exact_name(name),
                            build=lambda req: None,
                            policy_types=policy_types)

    def test_duplicate_name_rejected(self):
        registry = PolicyRegistry()
        registry.register(self._family())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._family())

    def test_duplicate_policy_type_rejected(self):
        class Toy:
            pass

        registry = PolicyRegistry()
        registry.register(self._family("a", (Toy,)))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._family("b", (Toy,)))

    def test_kernel_for_unknown_family_rejected(self):
        registry = PolicyRegistry()
        with pytest.raises(ValueError, match="unknown policy family"):
            registry.register_kernel("ghost", "python", lambda ev, cols: None)


class TestExactTypeKernelResolution:
    """Kernel resolution matches ``type(policy)`` exactly — subclasses
    fall through to the object path unless they register themselves."""

    def test_bdd_policy_resolves_to_its_own_family(self, ialu_stats):
        policy = make_policy("bdd-4", FUClass.IALU, 4, stats=ialu_stats)
        assert isinstance(policy, BDDPolicy)
        assert isinstance(policy, LUTPolicy)  # implementation reuse...
        family = REGISTRY.family_of(policy)
        assert family is not None and family.name == "bdd"  # ...not identity

    def test_unregistered_subclass_falls_through(self, ialu_stats):
        class LocalLUT(LUTPolicy):
            pass

        lut = build_lut(ialu_stats, 4, 4)
        policy = LocalLUT(lut=lut, scheme=scheme_for(FUClass.IALU))
        assert REGISTRY.family_of(policy) is None
        assert REGISTRY.kernel_factory(policy, "python") is None

    def test_kernel_backend_coverage(self):
        assert REGISTRY.kernel_backends("lut") == ("np", "python")
        assert REGISTRY.kernel_backends("original") == ("np", "python")
        # the Hamming matcher's np kernel is deliberately absent, as is
        # any fused bdd kernel on np: both exercise fall-through
        assert REGISTRY.kernel_backends("full-ham") == ("python",)
        assert REGISTRY.kernel_backends("bdd") == ("python",)


class TestMetadata:
    def test_default_policies(self):
        assert REGISTRY.default_policies() == ("original", "lut-4",
                                               "full-ham")

    def test_grid_kinds_order(self):
        assert REGISTRY.grid_kinds() == ("full-ham", "1bit-ham", "lut-8",
                                         "lut-4", "lut-2", "bdd-4",
                                         "original")

    def test_grid_sort_key_unknown_kinds_sort_last(self):
        kinds = ["mystery", "original", "lut-4", "full-ham"]
        kinds.sort(key=REGISTRY.grid_sort_key)
        assert kinds == ["full-ham", "lut-4", "original", "mystery"]

    def test_label_for_is_forgiving(self):
        assert REGISTRY.label_for("lut-4") == "lut-4"
        assert REGISTRY.label_for("not-a-kind") == "not-a-kind"

    def test_resolve_round_trip(self):
        family, params = REGISTRY.resolve("lut-8")
        assert family.name == "lut"
        assert params == {"bits": 8}
        family, params = REGISTRY.resolve("bdd-2")
        assert family.name == "bdd"
        assert params == {"bits": 2}

    def test_int_suffix_parser_contract(self):
        parse = int_suffix("lut-")
        assert parse("lut-4") == {"bits": 4}
        assert parse("original") is None
