"""Assignment solver tests (Figure 2 cost matrix + optimal matching)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (Assignment, cost_matrix,
                                   optimal_assignment, solve)
from repro.cpu.trace import MicroOp
from repro.isa import encoding
from repro.isa.instructions import opcode


def full_hamming(op1, op2, prev1, prev2):
    return encoding.hamming_int(op1, prev1) + encoding.hamming_int(op2, prev2)


class TestSolve:
    def test_empty(self):
        assert solve([]) == ((), 0.0)

    def test_single_picks_minimum(self):
        modules, total = solve([[5, 1, 3]])
        assert modules == (1,) and total == 1

    def test_injective(self):
        modules, _ = solve([[0, 0], [0, 0]])
        assert len(set(modules)) == 2

    def test_classic_matrix(self):
        costs = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        modules, total = solve(costs)
        assert total == 5  # 1 + 2 + 2
        assert modules == (1, 0, 2)

    def test_ties_break_lexicographically(self):
        modules, _ = solve([[1, 1], [1, 1]])
        assert modules == (0, 1)

    def test_too_many_ops(self):
        with pytest.raises(ValueError):
            solve([[1], [1]])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 20), min_size=8, max_size=8),
                    min_size=1, max_size=4))
    def test_hungarian_matches_brute_force(self, costs):
        # 8 columns exceeds the brute-force limit, exercising scipy
        modules, total = solve(costs)
        best = min(sum(costs[k][m] for k, m in enumerate(perm))
                   for perm in itertools.permutations(range(8), len(costs)))
        assert total == pytest.approx(best)
        assert len(set(modules)) == len(costs)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 64), min_size=4, max_size=4),
                    min_size=1, max_size=4))
    def test_optimal_below_every_assignment(self, costs):
        _, total = solve(costs)
        for perm in itertools.permutations(range(4), len(costs)):
            assert total <= sum(costs[k][m] for k, m in enumerate(perm))


class TestCostMatrix:
    def test_matches_figure2_definition(self):
        ops = [MicroOp(opcode("sub"), 0xF0, 0x0F)]
        inputs = [(0xF0, 0x0F), (0x00, 0x00)]
        costs, swaps = cost_matrix(ops, inputs, full_hamming)
        assert costs == [[0, 8]]
        assert swaps == [[False, False]]

    def test_commutative_takes_cheaper_order(self):
        # previous inputs are (0x0F, 0xF0); the new op arrives reversed
        ops = [MicroOp(opcode("add"), 0xF0, 0x0F)]
        costs, swaps = cost_matrix(ops, [(0x0F, 0xF0)], full_hamming)
        assert costs == [[0]]
        assert swaps == [[True]]

    def test_non_commutative_never_swaps(self):
        ops = [MicroOp(opcode("sub"), 0xF0, 0x0F)]
        costs, swaps = cost_matrix(ops, [(0x0F, 0xF0)], full_hamming)
        assert costs == [[16]]
        assert swaps == [[False]]

    def test_allow_swap_false_disables_swapping(self):
        ops = [MicroOp(opcode("add"), 0xF0, 0x0F)]
        costs, swaps = cost_matrix(ops, [(0x0F, 0xF0)], full_hamming,
                                   allow_swap=False)
        assert costs == [[16]]
        assert swaps == [[False]]


class TestOptimalAssignment:
    def test_prefers_matching_module(self):
        ops = [MicroOp(opcode("add"), 100, 200),
               MicroOp(opcode("add"), 0xFFFFFFFF, 0xFFFFFFF0)]
        inputs = [(0xFFFFFFFF, 0xFFFFFFF0), (100, 200), (0, 0)]
        assignment = optimal_assignment(ops, inputs, full_hamming)
        assert assignment.modules == (1, 0)
        assert assignment.total_cost == 0

    def test_swap_flags_follow_choice(self):
        ops = [MicroOp(opcode("add"), 0xF0, 0x0F)]
        assignment = optimal_assignment(ops, [(0x0F, 0xF0)], full_hamming)
        assert assignment.swapped == (True,)

    def test_assignment_validates_distinct_modules(self):
        with pytest.raises(ValueError):
            Assignment(modules=(0, 0), swapped=(False, False),
                       total_cost=0.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 0xFFFFFFFF),
                              st.integers(0, 0xFFFFFFFF)),
                    min_size=1, max_size=4),
           st.lists(st.tuples(st.integers(0, 0xFFFFFFFF),
                              st.integers(0, 0xFFFFFFFF)),
                    min_size=4, max_size=4))
    def test_optimal_no_worse_than_fcfs(self, operands, inputs):
        ops = [MicroOp(opcode("add"), a, b) for a, b in operands]
        assignment = optimal_assignment(ops, inputs, full_hamming)
        fcfs = sum(full_hamming(op.op1, op.op2, *inputs[k])
                   for k, op in enumerate(ops))
        assert assignment.total_cost <= fcfs
