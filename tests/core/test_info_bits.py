"""Information-bit extraction and case classification tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.info_bits import (CASES, PAPER_FP_SCHEME, PAPER_INT_SCHEME,
                                  case_hamming, case_of, fp_info_bit,
                                  fp_info_bit_k, int_info_bit,
                                  int_top_bits_majority, make_fp_scheme,
                                  make_int_scheme, scheme_for, swapped_case)
from repro.cpu.trace import MicroOp
from repro.isa import encoding
from repro.isa.instructions import FUClass, opcode

int_images = st.integers(min_value=0, max_value=encoding.INT_MASK)
double_images = st.integers(min_value=0, max_value=encoding.FLOAT_MASK)


class TestIntegerInfoBit:
    def test_sign_bit_examples(self):
        assert int_info_bit(encoding.to_unsigned(20)) == 0
        assert int_info_bit(encoding.to_unsigned(-20)) == 1
        assert int_info_bit(0) == 0

    @given(int_images)
    def test_equals_sign(self, bits):
        assert int_info_bit(bits) == (encoding.to_signed(bits) < 0)

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_predicts_majority_for_small_values(self, value):
        # for small-magnitude integers the sign bit is the majority bit
        bits = encoding.to_unsigned(value)
        ones = encoding.popcount(bits)
        if int_info_bit(bits):
            assert ones > 16
        else:
            assert ones < 16


class TestFloatInfoBit:
    def test_round_number_is_zero(self):
        assert fp_info_bit(encoding.float_to_bits(7.0)) == 0
        assert fp_info_bit(encoding.float_to_bits(0.25)) == 0

    def test_full_precision_is_usually_one(self):
        import math
        assert fp_info_bit(encoding.float_to_bits(math.pi)) == 1

    @given(double_images)
    def test_is_or_of_bottom_four(self, bits):
        expected = 1 if bits & 0xF else 0
        assert fp_info_bit(bits) == expected

    @given(double_images, st.integers(min_value=1, max_value=52))
    def test_k_bit_variant_monotone(self, bits, k):
        # widening the OR window can only turn 0 into 1
        if fp_info_bit_k(bits, k) == 1 and k < 52:
            assert fp_info_bit_k(bits, k + 1) == 1

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            fp_info_bit_k(0, 0)
        with pytest.raises(ValueError):
            fp_info_bit_k(0, 53)


class TestSchemes:
    def test_scheme_for_classes(self):
        assert scheme_for(FUClass.IALU) is PAPER_INT_SCHEME
        assert scheme_for(FUClass.IMULT) is PAPER_INT_SCHEME
        assert scheme_for(FUClass.FPAU) is PAPER_FP_SCHEME
        assert scheme_for(FUClass.FPMULT) is PAPER_FP_SCHEME

    def test_case_concatenation_order(self):
        # operand 1's bit is the high bit of the case
        negative = encoding.to_unsigned(-1)
        assert PAPER_INT_SCHEME.case_of(negative, 0) == 0b10
        assert PAPER_INT_SCHEME.case_of(0, negative) == 0b01

    def test_case_of_microop_missing_operand(self):
        op = MicroOp(opcode("fabs"), encoding.float_to_bits(3.141592653589793),
                     0, has_two=False)
        # the missing operand reads as a zero image -> info bit 0
        assert case_of(op, PAPER_FP_SCHEME) in (0b10, 0b00)
        assert case_of(op, PAPER_FP_SCHEME) & 1 == 0

    def test_make_int_scheme_majority(self):
        scheme = make_int_scheme(4)
        assert scheme.extract(0xF0000000) == 1
        assert scheme.extract(0x10000000) == 0

    def test_make_int_scheme_k1_is_paper(self):
        assert make_int_scheme(1) is PAPER_INT_SCHEME

    def test_make_fp_scheme(self):
        scheme = make_fp_scheme(8)
        assert scheme.extract(0x80) == 1
        assert scheme.extract(0x100) == 0

    def test_majority_validation(self):
        with pytest.raises(ValueError):
            int_top_bits_majority(0, 0)


class TestCaseAlgebra:
    def test_case_hamming_table(self):
        assert case_hamming(0b00, 0b00) == 0
        assert case_hamming(0b00, 0b11) == 2
        assert case_hamming(0b01, 0b10) == 2
        assert case_hamming(0b01, 0b11) == 1

    @given(st.sampled_from(CASES), st.sampled_from(CASES))
    def test_case_hamming_symmetric(self, a, b):
        assert case_hamming(a, b) == case_hamming(b, a)

    @given(st.sampled_from(CASES))
    def test_swapped_case_involution(self, case):
        assert swapped_case(swapped_case(case)) == case

    def test_swapped_case_values(self):
        assert swapped_case(0b01) == 0b10
        assert swapped_case(0b10) == 0b01
        assert swapped_case(0b00) == 0b00
        assert swapped_case(0b11) == 0b11
