"""Hybrid scheme tests (section 3 related-work hybrids)."""

import pytest

from repro.core.hybrid import (CriticalityAwareLUTPolicy,
                               GuardedFUPowerModel, HeterogeneousPowerModel,
                               ModuleVariant, standard_variants)
from repro.core.info_bits import scheme_for
from repro.core.lut import build_lut
from repro.core.power import FUPowerModel
from repro.core.statistics import paper_statistics
from repro.core.steering import LUTPolicy, OriginalPolicy, PolicyEvaluator
from repro.cpu.trace import MicroOp
from repro.isa import encoding
from repro.isa.instructions import FUClass, opcode
from repro.workloads import SyntheticStream
from repro.workloads.generators import OperandModel

NEG = encoding.to_unsigned(-5)


class TestGuardedPowerModel:
    def test_narrow_operands_charge_low_bits_only(self):
        model = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16,
                                    guard_overhead_bits=0)
        model.account(0, 0, 0)
        # 0x7FFF fits 16 bits (sign-extended); full model would pay 15
        # bits; guarded pays the same here but the high latches held 0
        cost = model.account(0, 0x7FFF, 0)
        assert cost == 15
        assert model.narrow_operations == 2

    def test_high_latches_hold_across_narrow_ops(self):
        model = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16,
                                    guard_overhead_bits=0)
        model.account(0, 0xABCD0000, 0)     # wide: high latches now ABCD
        narrow_cost = model.account(0, 0x1234, 0)  # narrow
        assert narrow_cost == encoding.popcount(0x1234 ^ 0x0000)
        # the next wide op pays against the *held* high half, not the
        # narrow op's sign extension
        wide_cost = model.account(0, 0xABCD0000, 0)
        assert wide_cost == encoding.popcount(0xABCD0000 ^ 0xABCD1234)

    def test_negative_narrow_values_guarded(self):
        model = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16)
        model.account(0, NEG, NEG)  # -5 sign-extends from 16 bits
        assert model.narrow_operations == 1

    def test_wide_value_not_guarded(self):
        model = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16)
        model.account(0, 0x00123456, 0)
        assert model.narrow_operations == 0

    def test_guard_overhead_charged(self):
        with_overhead = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16,
                                            guard_overhead_bits=2)
        cost = with_overhead.account(0, 1, 1)
        assert cost == 2 + 2  # two switched bits + overhead

    def test_guarding_saves_on_mixed_stream(self):
        """The hybrid claim: guarding reduces energy on top of whatever
        the router does, for streams mixing narrow and wide values."""
        plain = FUPowerModel(FUClass.IALU, 1)
        guarded = GuardedFUPowerModel(FUClass.IALU, 1, low_width=16,
                                      guard_overhead_bits=1)
        values = [0x12340000, 5, NEG, 0x0BAD0000, 3, encoding.wrap_int(-9)]
        for value in values:
            plain.account(0, value, 7)
            guarded.account(0, value, 7)
        assert guarded.switched_bits < plain.switched_bits
        assert 0 < guarded.narrow_fraction < 1

    def test_rejects_fp_and_bad_width(self):
        with pytest.raises(ValueError):
            GuardedFUPowerModel(FUClass.FPAU, 1)
        with pytest.raises(ValueError):
            GuardedFUPowerModel(FUClass.IALU, 1, low_width=32)

    def test_steering_composes_with_guarding(self):
        """Steering gains persist when every module is guarded."""
        stats = paper_statistics(FUClass.IALU)
        scheme = scheme_for(FUClass.IALU)
        lut = build_lut(stats, 4, 4)
        steered = PolicyEvaluator(FUClass.IALU, 4,
                                  LUTPolicy(lut=lut, scheme=scheme))
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        steered.power = GuardedFUPowerModel(FUClass.IALU, 4)
        fcfs.power = GuardedFUPowerModel(FUClass.IALU, 4)
        model = OperandModel(FUClass.IALU, mode="structured")
        stream = SyntheticStream(stats, operand_model=model, seed=23)
        for group in stream.groups(4000):
            steered(group)
            fcfs(group)
        assert steered.power.switched_bits < fcfs.power.switched_bits


class TestHeterogeneousPool:
    def test_standard_variants(self):
        variants = standard_variants(4, 2, slow_energy=0.5)
        assert sum(v.fast for v in variants) == 2
        assert variants[-1].energy_weight == 0.5
        with pytest.raises(ValueError):
            standard_variants(4, 5)

    def test_weighted_energy(self):
        model = HeterogeneousPowerModel(
            FUClass.IALU, [ModuleVariant(True, 1.0),
                           ModuleVariant(False, 0.5)])
        model.account(0, 0xF, 0)  # 4 bits on the fast module
        model.account(1, 0xF, 0)  # 4 bits on the slow module
        assert model.switched_bits == 8
        assert model.weighted_energy == pytest.approx(4 + 2)


class TestCriticalityAwarePolicy:
    @pytest.fixture
    def policy(self, ialu_stats):
        lut = build_lut(ialu_stats, 4, 4)
        return CriticalityAwareLUTPolicy(
            lut=lut, scheme=scheme_for(FUClass.IALU),
            variants=standard_variants(4, 2))

    def _op(self, critical):
        return MicroOp(opcode("add"), 1, 2, critical=critical)

    def test_critical_ops_on_fast_modules(self, policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [self._op(True), self._op(False), self._op(False)]
        assignment = policy.assign(ops, power)
        fast = {i for i, v in enumerate(policy.variants) if v.fast}
        assert assignment.modules[0] in fast
        assert assignment.modules[1] not in fast
        assert assignment.modules[2] not in fast

    def test_overflow_critical_falls_back_to_slow(self, policy):
        power = FUPowerModel(FUClass.IALU, 4)
        ops = [self._op(True)] * 4
        assignment = policy.assign(ops, power)
        assert sorted(assignment.modules) == [0, 1, 2, 3]

    def test_requires_a_fast_module(self, ialu_stats):
        lut = build_lut(ialu_stats, 4, 4)
        with pytest.raises(ValueError, match="fast"):
            CriticalityAwareLUTPolicy(lut=lut,
                                      scheme=scheme_for(FUClass.IALU),
                                      variants=standard_variants(4, 0))

    def test_variant_count_checked(self, ialu_stats):
        lut = build_lut(ialu_stats, 4, 4)
        with pytest.raises(ValueError, match="variant"):
            CriticalityAwareLUTPolicy(lut=lut,
                                      scheme=scheme_for(FUClass.IALU),
                                      variants=standard_variants(2, 1))

    def test_hybrid_saves_weighted_energy_on_real_stream(self, ialu_stats):
        """End to end: the heterogeneous hybrid beats FCFS-on-fast-pool
        in weighted energy while still steering by case."""
        from repro.cpu.simulator import Simulator
        from repro.workloads import workload

        variants = standard_variants(4, 2)
        lut = build_lut(ialu_stats, 4, 4)
        hybrid = PolicyEvaluator(FUClass.IALU, 4, CriticalityAwareLUTPolicy(
            lut=lut, scheme=scheme_for(FUClass.IALU), variants=variants))
        hybrid.power = HeterogeneousPowerModel(FUClass.IALU, variants)
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        fcfs.power = HeterogeneousPowerModel(FUClass.IALU, variants)

        sim = Simulator(workload("go").build(1))
        sim.add_listener(hybrid)
        sim.add_listener(fcfs)
        sim.run()
        assert hybrid.power.weighted_energy < fcfs.power.weighted_energy
