"""CaseStatistics container tests."""

import pytest

from repro.core.info_bits import CASES
from repro.core.statistics import (CaseStatistics, PAPER_FPAU_USAGE,
                                   PAPER_IALU_USAGE, paper_statistics)
from repro.isa.instructions import FUClass


class TestPaperStatistics:
    def test_ialu_row_values(self, ialu_stats):
        assert ialu_stats.case_comm_freq[(0b00, True)] \
            == pytest.approx(0.4011)
        assert ialu_stats.case_freq(0b00) == pytest.approx(0.6949)

    def test_frequencies_sum_to_one(self, ialu_stats, fpau_stats):
        for stats in (ialu_stats, fpau_stats):
            assert sum(stats.case_comm_freq.values()) == pytest.approx(1.0)
            assert sum(stats.case_distribution().values()) \
                == pytest.approx(1.0)

    def test_least_case(self, ialu_stats, fpau_stats):
        # IALU: case 11 is rarest (1.79%); FPAU: case 10 (10.14%)
        assert ialu_stats.least_case() == 0b11
        assert fpau_stats.least_case() == 0b10

    def test_noncommutative_freq(self, ialu_stats):
        assert ialu_stats.noncommutative_freq(0b01) == pytest.approx(0.0058)
        assert ialu_stats.noncommutative_freq(0b10) == pytest.approx(0.0151)

    def test_expected_issue_width(self, ialu_stats, fpau_stats):
        assert ialu_stats.expected_issue_width() == pytest.approx(1.877)
        assert fpau_stats.expected_issue_width() == pytest.approx(1.105)

    def test_no_paper_stats_for_multipliers(self):
        with pytest.raises(ValueError):
            paper_statistics(FUClass.IMULT)


class TestUsageDistribution:
    def test_truncation_folds_overflow(self):
        stats = CaseStatistics(FUClass.IALU,
                               {(0b00, True): 1.0},
                               PAPER_IALU_USAGE)
        truncated = stats.usage_distribution(2)
        assert truncated[2] == pytest.approx((0.362 + 0.194 + 0.042) / 1.001,
                                             rel=0.01)
        assert sum(truncated.values()) == pytest.approx(1.0)

    def test_full_width_normalised(self, fpau_stats):
        distribution = fpau_stats.usage_distribution(4)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[1] == pytest.approx(PAPER_FPAU_USAGE[1], rel=0.01)

    def test_empty_usage_defaults_single_issue(self):
        stats = CaseStatistics(FUClass.IALU, {(0b00, True): 1.0}, {})
        assert stats.usage_distribution(4)[1] == 1.0


class TestValidation:
    def test_rejects_bad_case_sum(self):
        with pytest.raises(ValueError):
            CaseStatistics(FUClass.IALU, {(0b00, True): 0.5},
                           {1: 1.0})

    def test_rejects_bad_usage_sum(self):
        with pytest.raises(ValueError):
            CaseStatistics(FUClass.IALU, {(0b00, True): 1.0},
                           {1: 0.5, 2: 0.1})

    def test_empty_distribution_uniform(self):
        stats = CaseStatistics(FUClass.IALU, {}, {})
        assert stats.case_distribution() == {case: 0.25 for case in CASES}
