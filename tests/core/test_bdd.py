"""BDD-derived LUT synthesis: homes, variable order, diagram, costs."""

import itertools

import pytest

from repro.core.bdd import (BDDPolicy, bdd_allocate_homes, build_bdd,
                            build_bdd_lut, estimate_bdd_router_cost,
                            order_variables, synthesize_bdd,
                            vector_distribution)
from repro.core.info_bits import CASES, scheme_for
from repro.core.lut import SteeringLUT, allocate_homes
from repro.core.statistics import CaseStatistics, paper_statistics
from repro.core.steering import LUTPolicy, PolicyEvaluator, make_policy
from repro.isa.instructions import FUClass
from repro.workloads.generators import SyntheticStream


class TestHomeAllocation:
    def test_demand_split_shape(self, ialu_stats):
        homes = bdd_allocate_homes(ialu_stats, 4)
        assert len(homes) == 4
        assert homes == tuple(sorted(homes))
        assert all(case in CASES for case in homes)

    def test_differs_from_greedy_search(self):
        # the BDD partition is a genuinely different synthesis, not a
        # re-derivation of the greedy expected-cost minimiser: on a
        # skewed case mix (like the measured integer suite, ~87% case
        # 0) the demand split keeps one home per live case while the
        # cost-driven greedy search concentrates elsewhere
        skewed = CaseStatistics(
            fu_class=FUClass.IALU,
            case_comm_freq={(0, True): 0.60, (0, False): 0.27,
                            (1, True): 0.06, (1, False): 0.03,
                            (2, True): 0.02, (2, False): 0.01,
                            (3, True): 0.007, (3, False): 0.003},
            usage={1: 0.5, 2: 0.3, 3: 0.15, 4: 0.05})
        assert bdd_allocate_homes(skewed, 4) != allocate_homes(skewed, 4)

    def test_skewed_mix_keeps_every_live_case_reachable(self):
        # ~90% case 0 must not collapse every home onto case 0
        skewed = CaseStatistics(
            fu_class=FUClass.IALU,
            case_comm_freq={(0, True): 0.9, (1, True): 0.06,
                            (2, True): 0.03, (3, True): 0.01},
            usage={1: 0.6, 2: 0.4})
        homes = bdd_allocate_homes(skewed, 4)
        assert len(set(homes)) > 1

    def test_single_module(self, ialu_stats):
        homes = bdd_allocate_homes(ialu_stats, 1)
        assert len(homes) == 1

    def test_zero_modules_rejected(self, ialu_stats):
        with pytest.raises(ValueError, match="at least one module"):
            bdd_allocate_homes(ialu_stats, 0)

    def test_deterministic(self, ialu_stats):
        assert bdd_allocate_homes(ialu_stats, 4) == \
            bdd_allocate_homes(ialu_stats, 4)


class TestVectorDistribution:
    def test_mass_matches_usage(self, ialu_stats):
        dist = vector_distribution(ialu_stats, 4, 2)
        usage = ialu_stats.usage_distribution(4)
        assert all(p >= 0.0 for p in dist.values())
        assert sum(dist.values()) == pytest.approx(sum(usage.values()))

    def test_covers_every_vector(self, ialu_stats):
        dist = vector_distribution(ialu_stats, 4, 2)
        assert set(dist) == set(itertools.product(CASES, repeat=2))


class TestVariableOrder:
    def _table_and_dist(self, stats, bits=4):
        lut = build_bdd_lut(stats, 4, bits)
        dist = vector_distribution(stats, 4, lut.vector_ops)
        return lut.table, dist

    def test_order_is_permutation(self, ialu_stats):
        table, dist = self._table_and_dist(ialu_stats)
        order = order_variables(table, dist)
        assert sorted(order) == [0, 1, 2, 3]

    def test_order_deterministic(self, ialu_stats):
        table, dist = self._table_and_dist(ialu_stats)
        assert order_variables(table, dist) == order_variables(table, dist)


class TestDiagram:
    def test_evaluate_matches_table_everywhere(self, ialu_stats, fpau_stats):
        for stats in (ialu_stats, fpau_stats):
            lut, bdd = synthesize_bdd(stats, 4, 4)
            for vector, assignment in lut.table.items():
                assert bdd.evaluate(vector) == assignment, vector

    def test_reduction_beats_complete_tree(self, ialu_stats):
        _lut, bdd = synthesize_bdd(ialu_stats, 4, 4)
        # a complete binary tree over 4 variables has 15 internal nodes;
        # sharing and elision must do strictly better on real tables
        assert 0 < bdd.node_count < 15
        assert 0 < bdd.levels <= 4

    def test_invalid_order_rejected(self, ialu_stats):
        lut = build_bdd_lut(ialu_stats, 4, 4)
        with pytest.raises(ValueError, match="permute"):
            build_bdd(lut.table, (0, 1, 2))
        with pytest.raises(ValueError, match="permute"):
            build_bdd(lut.table, (0, 1, 2, 2))


class TestSynthesis:
    def test_builds_plain_steering_lut(self, ialu_stats):
        lut = build_bdd_lut(ialu_stats, 4, 4)
        assert isinstance(lut, SteeringLUT)
        assert lut.homes == bdd_allocate_homes(ialu_stats, 4)

    def test_needs_stats(self):
        with pytest.raises(ValueError, match="need case statistics"):
            build_bdd_lut(None, 4, 4)

    def test_router_cost_model(self, ialu_stats):
        cost = estimate_bdd_router_cost(ialu_stats, 4, 4, rs_entries=8)
        assert cost.gates == 3 * cost.nodes + (3 * 8 + 19)
        assert cost.levels >= 1 + 3  # at least one mux + log2(8) forwarding
        deeper = estimate_bdd_router_cost(ialu_stats, 4, 4, rs_entries=32)
        assert deeper.gates > cost.gates
        assert deeper.nodes == cost.nodes

    def test_router_cost_rejects_empty_rs(self, ialu_stats):
        with pytest.raises(ValueError, match="reservation station"):
            estimate_bdd_router_cost(ialu_stats, 4, 4, rs_entries=0)


class TestBDDPolicy:
    def test_make_policy_builds_named_bdd_policy(self, ialu_stats):
        policy = make_policy("bdd-4", FUClass.IALU, 4, stats=ialu_stats)
        assert isinstance(policy, BDDPolicy)
        assert isinstance(policy, LUTPolicy)
        assert policy.name == "bdd-4bit"
        assert policy.scheme is scheme_for(FUClass.IALU)

    def test_stateless(self, ialu_stats):
        policy = make_policy("bdd-4", FUClass.IALU, 4, stats=ialu_stats)
        assert policy.power_independent

    @pytest.mark.parametrize("fu_class", [FUClass.IALU, FUClass.FPAU])
    def test_steering_beats_fcfs(self, fu_class):
        stats = paper_statistics(fu_class)
        evaluators = {
            kind: PolicyEvaluator(fu_class, 4,
                                  make_policy(kind, fu_class, 4, stats=stats))
            for kind in ("original", "bdd-4")}
        for issue_group in SyntheticStream(stats, seed=17).groups(4000):
            for evaluator in evaluators.values():
                evaluator(issue_group)
        bits = {kind: e.totals().switched_bits
                for kind, e in evaluators.items()}
        assert bits["bdd-4"] < bits["original"]
