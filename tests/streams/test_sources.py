"""IssueSource architecture: sources, the drive loop, capture/record,
and the content-addressed trace cache."""

import gzip

import pytest

import repro.streams as streams_module
from repro.core.statistics import paper_statistics
from repro.core.steering import OriginalPolicy, PolicyEvaluator, make_policy
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import Simulator, simulate
from repro.cpu.trace import TraceCollector
from repro.cpu.tracefile import read_trace_header, write_trace
from repro.isa.instructions import FUClass
from repro.runner.faults import FaultInjector
from repro.streams import (LiveSource, MemorySource, ReplaySource,
                           SyntheticSource, TelemetryStreamSampler, capture,
                           cached_source, drive, record, record_cached,
                           trace_cache_key)
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.workloads import workload


def _evaluator(fu_class=FUClass.IALU, num_modules=4, **kwargs):
    return PolicyEvaluator(fu_class, num_modules, OriginalPolicy(), **kwargs)


class TestLiveSource:
    def test_drive_is_one_simulation(self, sum_program):
        source = LiveSource(sum_program)
        collector = TraceCollector()
        result = drive(source, [collector])
        assert result is source.result
        assert result.retired_instructions > 0
        assert collector.groups

    def test_groups_yield_recorded_stream(self, sum_program):
        live_groups = list(LiveSource(sum_program).groups())
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        assert len(live_groups) == len(collector.groups)

    def test_defaults_to_default_config(self, sum_program):
        assert LiveSource(sum_program).config == MachineConfig()

    def test_simulator_resolved_late_for_test_doubles(self, sum_program,
                                                      monkeypatch):
        calls = []

        class CountingSimulator(Simulator):
            def run(self):
                calls.append(self.program.name)
                return super().run()

        monkeypatch.setattr(streams_module, "Simulator", CountingSimulator)
        drive(LiveSource(sum_program), [])
        assert calls == [sum_program.name]


class TestMemorySource:
    def test_redrivable(self, sum_program):
        memory = capture(LiveSource(sum_program), (FUClass.IALU,))
        first, second = _evaluator(), _evaluator()
        drive(memory, [first])
        drive(memory, [second])
        assert first.totals() == second.totals()
        assert len(memory) > 0

    def test_carries_result(self, sum_program):
        memory = capture(LiveSource(sum_program))
        assert memory.result is not None
        assert memory.result.retired_instructions > 0


class TestReplaySource:
    def test_round_trip(self, sum_program, tmp_path):
        path = tmp_path / "sum.trace.gz"
        memory = record(LiveSource(sum_program), path)
        replayed = ReplaySource(path)
        assert replayed.kind == "replay"
        assert replayed.name == sum_program.name
        assert len(list(replayed.groups())) == len(memory)

    def test_header_result_restored(self, sum_program, tmp_path):
        path = tmp_path / "sum.trace.gz"
        memory = record(LiveSource(sum_program), path)
        restored = ReplaySource(path).result
        assert restored is not None
        assert restored.cycles == memory.result.cycles
        assert restored.retired_instructions \
            == memory.result.retired_instructions
        assert restored.ipc == pytest.approx(memory.result.ipc)

    def test_config_fingerprint_exposed(self, sum_program, tmp_path):
        path = tmp_path / "sum.trace.gz"
        record(LiveSource(sum_program), path)
        assert ReplaySource(path).config_fingerprint \
            == MachineConfig().fingerprint()


class TestSyntheticSource:
    def test_deterministic_and_redrivable(self, ialu_stats):
        source = SyntheticSource(ialu_stats, cycles=300, seed=7)
        first, second = _evaluator(), _evaluator()
        drive(source, [first])
        drive(source, [second])
        totals = first.totals()
        assert totals.operations > 0
        assert totals == second.totals()

    def test_seed_changes_stream(self, ialu_stats):
        a, b = _evaluator(), _evaluator()
        drive(SyntheticSource(ialu_stats, cycles=300, seed=1), [a])
        drive(SyntheticSource(ialu_stats, cycles=300, seed=2), [b])
        assert a.totals() != b.totals()


class TestDrive:
    def test_finalizes_consumers(self, sum_program):
        memory = capture(LiveSource(sum_program))
        deferred = _evaluator(include_speculative=False)
        drive(memory, [deferred])
        # a finalized deferred evaluator has settled its buffer
        assert deferred._deferred == []

    def test_finalize_opt_out(self, sum_program):
        memory = capture(LiveSource(sum_program))

        class Probe:
            finalized = False

            def __call__(self, group):
                pass

            def finalize(self):
                self.finalized = True

        probe = Probe()
        drive(memory, [probe], finalize=False)
        assert not probe.finalized
        drive(memory, [probe])
        assert probe.finalized


class TestCapture:
    def test_preserves_final_wrong_path_flags(self):
        program = workload("go").build(1)
        memory = capture(LiveSource(program))
        flagged = sum(1 for group in memory.groups()
                      for op in group.ops if op.speculative)
        collector = TraceCollector()
        simulate(program, listeners=[collector])
        expected = sum(1 for group in collector.groups
                       for op in group.ops if op.speculative)
        assert flagged == expected > 0

    def test_extra_consumers_share_the_single_pass(self, sum_program,
                                                   monkeypatch):
        runs = []

        class CountingSimulator(Simulator):
            def run(self):
                runs.append(1)
                return super().run()

        monkeypatch.setattr(streams_module, "Simulator", CountingSimulator)
        rider = _evaluator()
        memory = capture(LiveSource(sum_program), extra_consumers=[rider])
        assert len(runs) == 1
        replayer = _evaluator()
        drive(memory, [replayer])
        assert rider.totals() == replayer.totals()


class TestRecord:
    def test_header_carries_cache_metadata(self, sum_program, tmp_path):
        path = tmp_path / "sum.trace.gz"
        record(LiveSource(sum_program), path, fu_classes=(FUClass.IALU,))
        header = read_trace_header(path)
        assert header["version"] == 2
        assert header["source"] == "live"
        assert header["config"] == MachineConfig().fingerprint()
        assert header["fu_classes"] == ["ialu"]
        assert header["result"]["retired_instructions"] > 0


class TestTraceCacheKey:
    def test_name_is_not_content(self):
        from repro.isa.assembler import assemble
        source = ".text\naddi r1, r0, 5\nhalt\n"
        config = MachineConfig()
        assert trace_cache_key(assemble(source, name="a"), config) \
            == trace_cache_key(assemble(source, name="b"), config)

    def test_varies_with_config_and_scope(self, sum_program):
        config = MachineConfig()
        narrow = MachineConfig(fetch_width=2, dispatch_width=2,
                               retire_width=2, rob_entries=16)
        base = trace_cache_key(sum_program, config)
        assert trace_cache_key(sum_program, narrow) != base
        assert trace_cache_key(sum_program, config,
                               (FUClass.IALU,)) != base
        assert base.endswith("-all")

    def test_abort_limits_key_the_cache(self, sum_program):
        permissive = MachineConfig()
        tight = MachineConfig(watchdog_cycles=6)
        assert trace_cache_key(sum_program, tight) \
            != trace_cache_key(sum_program, permissive)

    def test_varies_with_program_content(self, sum_program, fp_program):
        config = MachineConfig()
        assert trace_cache_key(sum_program, config) \
            != trace_cache_key(fp_program, config)


class TestTraceCache:
    def test_miss_then_hit(self, sum_program, tmp_path):
        config = MachineConfig()
        assert cached_source(sum_program, config, tmp_path) is None
        memory = record_cached(sum_program, config, tmp_path)
        found = cached_source(sum_program, config, tmp_path)
        assert found is not None
        assert len(list(found.groups())) == len(memory)

    def test_corrupt_entry_is_a_miss(self, sum_program, tmp_path):
        config = MachineConfig()
        record_cached(sum_program, config, tmp_path)
        key = trace_cache_key(sum_program, config)
        path = tmp_path / f"{key}.trace.gz"
        path.write_bytes(b"not a gzip trace")
        assert cached_source(sum_program, config, tmp_path) is None

    def test_fingerprint_mismatch_is_a_miss(self, sum_program, tmp_path):
        config = MachineConfig()
        key = trace_cache_key(sum_program, config)
        path = tmp_path / f"{key}.trace.gz"
        collector = TraceCollector()
        simulate(sum_program, listeners=[collector])
        write_trace(path, collector.groups, name=sum_program.name,
                    config_fingerprint="feedfacefeedface")
        assert cached_source(sum_program, config, tmp_path) is None

    def test_hit_replays_identical_totals(self, sum_program, tmp_path):
        config = MachineConfig()
        live = _evaluator()
        record_cached(sum_program, config, tmp_path,
                      extra_consumers=[live])
        replayed = _evaluator()
        drive(cached_source(sum_program, config, tmp_path), [replayed])
        assert replayed.totals() == live.totals()


class TestTelemetryStreamSampler:
    def test_samples_at_stream_cadence(self, sum_program):
        memory = capture(LiveSource(sum_program))
        session = TelemetrySession(
            TelemetryConfig(metrics=True, sample_interval=10))
        sampler = TelemetryStreamSampler(session)
        assert sampler.interval == 10
        drive(memory, [sampler])
        assert session.samples
        # non-decreasing sample cycles, final sample at stream end
        cycles = [row["cycle"] for row in session.samples]
        assert cycles == sorted(cycles)
        last_cycle = max(group.cycle for group in memory.groups())
        assert cycles[-1] == last_cycle

    def test_disabled_without_interval(self, sum_program):
        memory = capture(LiveSource(sum_program))
        session = TelemetrySession(TelemetryConfig(metrics=True))
        sampler = TelemetryStreamSampler(session)
        drive(memory, [sampler])
        assert session.samples == []


class TestFaultStreamConsumer:
    def test_zero_rate_is_identity(self, sum_program):
        memory = capture(LiveSource(sum_program), (FUClass.IALU,))
        clean, hooked = _evaluator(), _evaluator()
        drive(memory, [clean])
        injector = FaultInjector(0.0)
        drive(memory, [injector.stream_consumer(), hooked])
        assert hooked.totals() == clean.totals()
        assert injector.flips == 0

    def test_matches_live_simulator_hook(self, sum_program):
        live = _evaluator()
        live_injector = FaultInjector(0.5, seed=3)
        drive(LiveSource(sum_program, fault_injector=live_injector), [live])
        assert live_injector.flips > 0

        replay_injector = FaultInjector(0.5, seed=3)
        memory = capture(LiveSource(sum_program))
        replayed = _evaluator()
        drive(memory, [replay_injector.stream_consumer(), replayed])
        assert replay_injector.flips == live_injector.flips
        assert replayed.totals() == live.totals()
