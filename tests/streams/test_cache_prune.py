"""LRU trace-cache pruning: size budget, pairing, protection.

The pruner must treat a trace and its packed sidecar as one entry,
evict strictly oldest-first, survive damaged/concurrently-vanishing
files, and — critically — never evict the entry an in-flight replay
has protected, even when that leaves the cache over budget.
"""

import os
import time
from pathlib import Path

from repro.batch import packed_cached, sidecar_path
from repro.cpu.config import MachineConfig
from repro.streams import cached_source, prune_trace_cache
from repro.workloads import workload


def _make_entry(cache_dir, index, size_kb=64, age=0):
    """Fabricate a cache entry pair with a controlled size and mtime."""
    trace = cache_dir / f"prog{index}-cfg-all.trace.gz"
    trace.write_bytes(b"x" * (size_kb * 1024 // 2))
    side = trace.with_name(trace.name + ".pack")
    side.write_bytes(b"y" * (size_kb * 1024 // 2))
    stamp = time.time() - age
    os.utime(trace, (stamp, stamp))
    return trace


class TestPruning:
    def test_under_limit_deletes_nothing(self, tmp_path):
        for i in range(3):
            _make_entry(tmp_path, i, size_kb=16)
        assert prune_trace_cache(tmp_path, limit_mb=1.0) == []
        assert len(list(tmp_path.glob("*.trace.gz"))) == 3

    def test_oldest_entries_go_first(self, tmp_path):
        # 4 entries x 64 KiB = 256 KiB; a 160 KiB limit forces out the
        # two oldest, trace and sidecar together
        traces = [_make_entry(tmp_path, i, age=(4 - i) * 100)
                  for i in range(4)]
        deleted = prune_trace_cache(tmp_path, limit_mb=160 / 1024)
        gone = {p.name for p in deleted}
        assert traces[0].name in gone and traces[1].name in gone
        assert traces[2].exists() and traces[3].exists()
        for trace in traces[:2]:
            assert not trace.exists()
            assert not trace.with_name(trace.name + ".pack").exists()

    def test_orphan_sidecars_pruned_first(self, tmp_path):
        orphan = tmp_path / "dead-cfg-all.trace.gz.pack"
        orphan.write_bytes(b"z" * 1024)
        live = _make_entry(tmp_path, 0)
        deleted = prune_trace_cache(tmp_path, limit_mb=1.0)
        assert deleted == [orphan]
        assert live.exists()

    def test_orphan_bytes_count_toward_the_budget(self, tmp_path):
        # regression: orphan sizes were never *added* to the running
        # total, only subtracted on unlink, so the LRU loop believed it
        # was under budget and stopped while live entries still blew
        # the limit.  3 x 64 KiB live + 64 KiB orphan against a 128 KiB
        # limit must evict the orphan AND the oldest live entry.
        traces = [_make_entry(tmp_path, i, age=(3 - i) * 100)
                  for i in range(3)]
        orphan = tmp_path / "dead-cfg-all.trace.gz.pack"
        orphan.write_bytes(b"z" * (64 * 1024))
        deleted = prune_trace_cache(tmp_path, limit_mb=128 / 1024)
        assert orphan in deleted and not orphan.exists()
        assert not traces[0].exists()  # oldest live entry went too
        assert not traces[0].with_name(traces[0].name + ".pack").exists()
        assert traces[1].exists() and traces[2].exists()
        remaining = sum(p.stat().st_size for p in tmp_path.iterdir())
        assert remaining <= 128 * 1024

    def test_sidecar_appearing_after_the_scan_is_still_evicted(
            self, tmp_path, monkeypatch):
        # the scan must discover sidecars by stat'ing them, not via an
        # exists() probe: a sidecar written between the glob and the
        # probe (or an exists() lying under racy NFS semantics) would
        # otherwise survive its trace and leak.  Simulate the lie by
        # making exists() deny every .pack file.
        trace = _make_entry(tmp_path, 0)
        side = trace.with_name(trace.name + ".pack")
        real_exists = Path.exists

        def deny_packs(self, **kwargs):
            if self.name.endswith(".pack"):
                return False
            return real_exists(self, **kwargs)

        monkeypatch.setattr(Path, "exists", deny_packs)
        deleted = prune_trace_cache(tmp_path, limit_mb=0)
        assert side in deleted
        assert not real_exists(side)
        assert not real_exists(trace)

    def test_zero_limit_clears_cache(self, tmp_path):
        for i in range(3):
            _make_entry(tmp_path, i, age=i)
        prune_trace_cache(tmp_path, limit_mb=0)
        assert list(tmp_path.glob("*")) == []

    def test_missing_directory_is_noop(self, tmp_path):
        assert prune_trace_cache(tmp_path / "never", limit_mb=0) == []


class TestProtection:
    def test_protected_entry_survives_zero_limit(self, tmp_path):
        keep = _make_entry(tmp_path, 0, age=1000)  # oldest = first victim
        victim = _make_entry(tmp_path, 1)
        prune_trace_cache(tmp_path, limit_mb=0, protect=[keep])
        assert keep.exists()
        assert keep.with_name(keep.name + ".pack").exists()
        assert not victim.exists()

    def test_deleted_lists_exactly_the_unlinked_paths(self, tmp_path):
        # the return value is the caller's audit trail: every victim's
        # trace and sidecar, nothing else, no duplicates — and the
        # protected pair appears nowhere in it
        keep = _make_entry(tmp_path, 0, age=1000)
        victims = [_make_entry(tmp_path, i, age=i) for i in (1, 2)]
        deleted = prune_trace_cache(tmp_path, limit_mb=0, protect=[keep])
        expected = {p for v in victims
                    for p in (v, v.with_name(v.name + ".pack"))}
        assert set(deleted) == expected
        assert len(deleted) == len(expected)
        for path in expected:
            assert not path.exists()
        assert keep.exists()
        assert keep.with_name(keep.name + ".pack").exists()

    def test_pruning_never_evicts_entry_being_replayed(self, tmp_path):
        # the real contract: record a genuine entry, open it for replay,
        # prune to zero with it protected — the replay must still hit
        program = workload("compress").build(1)
        config = MachineConfig()
        packed, hit = packed_cached(program, config, tmp_path)
        assert not hit
        in_use = next(iter(tmp_path.glob("*.trace.gz")))
        for i in range(3):
            _make_entry(tmp_path, i, age=(i + 1) * 100)
        prune_trace_cache(tmp_path, limit_mb=0, protect=[in_use])
        assert in_use.exists()
        assert sidecar_path(in_use).exists()
        assert list(tmp_path.glob("prog*")) == []
        # and the protected entry still replays, bit-identically
        again, hit = packed_cached(program, config, tmp_path)
        assert hit
        assert list(again.iter_groups())[-1].cycle == \
            list(packed.iter_groups())[-1].cycle
        assert cached_source(program, config, tmp_path) is not None
