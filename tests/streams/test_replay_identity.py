"""Bit-identity of replayed streams — the load-bearing invariant.

Any consumer driven from a captured, recorded, or cache-replayed
stream must accumulate exactly the totals it would have accumulated as
a live simulator listener, for every steering scheme, including the
deferred (``include_speculative=False``) accounting and telemetry
counters.
"""

import pytest
from hypothesis import given, settings

from repro.core.statistics import paper_statistics
from repro.core.steering import PolicyEvaluator, make_policy
from repro.isa.assembler import assemble
from repro.isa.instructions import FUClass
from repro.streams import LiveSource, ReplaySource, capture, drive, record
from repro.telemetry import TelemetryConfig, TelemetrySession
from repro.workloads import workload
from tests.cpu.test_simulator import loopy_programs

SCHEME_KINDS = ("original", "round-robin", "full-ham", "1bit-ham",
                "lut-4", "lut-2")
NUM_MODULES = 4


def _evaluator_set(telemetry=None):
    stats = paper_statistics(FUClass.IALU)
    evaluators = {}
    for kind in SCHEME_KINDS:
        policy = make_policy(kind, FUClass.IALU, NUM_MODULES, stats=stats)
        evaluators[kind] = PolicyEvaluator(FUClass.IALU, NUM_MODULES, policy,
                                           telemetry=telemetry)
    # deferred wrong-path accounting relies on retroactive speculative
    # marking surviving the capture; exercise it for two schemes
    for kind in ("original", "lut-4"):
        policy = make_policy(kind, FUClass.IALU, NUM_MODULES, stats=stats)
        evaluators[f"{kind}/no-spec"] = PolicyEvaluator(
            FUClass.IALU, NUM_MODULES, policy, include_speculative=False)
    return evaluators


def _assert_identical(live, replayed):
    assert set(live) == set(replayed)
    for kind in live:
        assert replayed[kind].totals() == live[kind].totals(), kind


class TestCapturedIdentity:
    @settings(max_examples=8, deadline=None)
    @given(loopy_programs())
    def test_random_programs_all_schemes(self, source):
        program = assemble(source)
        live = _evaluator_set()
        # live evaluators listen on the same single simulation that
        # fills the capture, then the capture is replayed
        memory = capture(LiveSource(program),
                         extra_consumers=list(live.values()))
        for evaluator in live.values():
            evaluator.finalize()
        replayed = _evaluator_set()
        drive(memory, list(replayed.values()))
        _assert_identical(live, replayed)

    def test_separate_simulations_agree(self):
        # determinism end to end: an independent live pass and an
        # independent captured-then-replayed pass also match
        program = workload("compress").build(1)
        live = _evaluator_set()
        drive(LiveSource(program), list(live.values()))
        replayed = _evaluator_set()
        drive(capture(LiveSource(program)), list(replayed.values()))
        _assert_identical(live, replayed)


class TestRecordedIdentity:
    @settings(max_examples=4, deadline=None)
    @given(loopy_programs())
    def test_disk_round_trip_all_schemes(self, tmp_path_factory, source):
        program = assemble(source)
        path = tmp_path_factory.mktemp("traces") / "prog.trace.gz"
        live = _evaluator_set()
        record(LiveSource(program), path,
               extra_consumers=list(live.values()))
        for evaluator in live.values():
            evaluator.finalize()
        replayed = _evaluator_set()
        drive(ReplaySource(path), list(replayed.values()))
        _assert_identical(live, replayed)


class TestTelemetryIdentity:
    def test_counters_match_live_session(self):
        program = workload("compress").build(1)

        live_session = TelemetrySession(TelemetryConfig(metrics=True))
        live = _evaluator_set(telemetry=live_session)
        source = LiveSource(program, telemetry=live_session)
        memory = capture(source, extra_consumers=list(live.values()))
        for evaluator in live.values():
            evaluator.finalize()

        replay_session = TelemetrySession(TelemetryConfig(metrics=True))
        replayed = _evaluator_set(telemetry=replay_session)
        drive(memory, list(replayed.values()))
        # a replayed cell reconstructs the simulator's counters from
        # the stored run summary under the same metric names
        replay_session.add_collector(memory.result.telemetry_counters)

        live_counters = live_session.collect_counters()
        replay_counters = replay_session.collect_counters()
        # the live registry additionally tracks simulator-internal
        # metrics (histograms etc.); every steering and run counter the
        # replay reports must match the live value exactly
        for name, value in replay_counters.items():
            assert live_counters.get(name) == value, name
        steer_names = {name for name in live_counters
                       if name.startswith("steer.")}
        assert steer_names <= set(replay_counters)
