"""Issue-stream sources: one architecture for live, recorded, and
synthetic streams.

The paper's entire method (sections 4.1–4.3) is defined over the *issue
stream* — the per-cycle sequence of :class:`~repro.cpu.trace.IssueGroup`
objects a machine publishes.  Historically every consumer (policy
evaluators, statistics collectors, fault hooks, telemetry samplers)
subscribed directly to a live :class:`~repro.cpu.simulator.Simulator`,
which forced each new evaluator *set* to pay a full simulation pass.
This module makes the stream a first-class seam:

* an :class:`IssueSource` is anything that can push an issue stream at
  a set of consumers — a live simulation (:class:`LiveSource`), a
  recorded trace (:class:`ReplaySource` on disk, :class:`MemorySource`
  in process), or a statistics-calibrated generator
  (:class:`SyntheticSource`);
* a *consumer* is any ``(IssueGroup) -> None`` callable — exactly the
  existing listener contract — optionally carrying a ``finalize()``
  method for deferred accounting (wrong-path-excluding evaluators);
* :func:`drive` runs one source into many consumers and finalizes them.

Simulation is far more expensive than evaluation, so the winning shape
for experiments is *simulate once, replay many*: :func:`capture` runs a
source once into an in-process :class:`MemorySource` (with final
wrong-path flags, since the collector holds references to the MicroOps
the flush retroactively marks), and :func:`record` additionally
persists it as a version-2 trace file whose header carries the
program/config fingerprints the content-addressed cache is keyed by.

Bit-identity is the load-bearing invariant: any consumer driven by a
captured or replayed stream must accumulate exactly the totals it would
have accumulated as a live listener.  The round-trip tests in
``tests/streams`` enforce this for every steering scheme, including
deferred (``include_speculative=False``) accounting.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from .cpu.config import MachineConfig
from .cpu.simulator import Simulator
from .cpu.trace import IssueGroup, SimulationResult, TraceCollector
from .cpu.tracefile import (header_result, load_trace, read_trace_header,
                            write_trace)
from .isa.instructions import FUClass
from .isa.program import Program

PathLike = Union[str, Path]

#: A stream consumer: the classic listener contract.  Consumers may
#: additionally define ``finalize()`` (drained by :func:`drive`).
IssueConsumer = Callable[[IssueGroup], None]

SOURCE_KINDS = ("live", "replay", "memory", "synthetic")


class IssueSource:
    """Base class for issue-stream producers.

    Subclasses either yield groups from :meth:`groups` (pull model —
    replay, memory, synthetic) and inherit the generic :meth:`drive`
    loop, or override :meth:`drive` outright (the live simulator, a
    push producer).  ``kind`` identifies the producer family and is
    recorded in trace headers so a cache never replays a stream of the
    wrong provenance.
    """

    kind: str = "abstract"
    name: str = "source"

    def groups(self) -> Iterator[IssueGroup]:
        """Yield the stream's issue groups in cycle order."""
        raise NotImplementedError

    def drive(self, consumers: Sequence[IssueConsumer]
              ) -> Optional[SimulationResult]:
        """Push the whole stream at ``consumers``; returns the run
        summary when the source knows it (live runs, v2 replays)."""
        consumers = list(consumers)
        for group in self.groups():
            for consumer in consumers:
                consumer(group)
        return self.result

    @property
    def result(self) -> Optional[SimulationResult]:
        """Summary of the run that produced the stream, if known."""
        return None


class LiveSource(IssueSource):
    """The cycle simulator as an issue source.

    Each :meth:`drive` builds a fresh :class:`Simulator` (they are
    single-use) with the consumers attached as listeners and runs it to
    completion — so one ``drive`` is exactly one simulation pass, which
    the simulate-once drivers count on.
    """

    kind = "live"

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 fault_injector=None,
                 telemetry=None):
        self.program = program
        self.config = config if config is not None else MachineConfig()
        self.fault_injector = fault_injector
        self.telemetry = telemetry
        self.name = program.name
        self.simulator: Optional[Simulator] = None
        self._result: Optional[SimulationResult] = None

    def drive(self, consumers: Sequence[IssueConsumer]
              ) -> SimulationResult:
        # module-global lookup kept late so tests can substitute a
        # counting Simulator double via monkeypatching repro.streams
        sim = Simulator(self.program, self.config,
                        fault_injector=self.fault_injector,
                        telemetry=self.telemetry)
        for consumer in consumers:
            sim.add_listener(consumer)
        self.simulator = sim
        self._result = sim.run()
        return self._result

    def groups(self) -> Iterator[IssueGroup]:
        """Simulate now and yield the recorded stream (final flags)."""
        collector = TraceCollector()
        self.drive([collector])
        return iter(collector.groups)

    @property
    def result(self) -> Optional[SimulationResult]:
        return self._result


class MemorySource(IssueSource):
    """An in-process recorded stream: replay without touching disk."""

    kind = "memory"

    def __init__(self, groups: Iterable[IssueGroup], name: str = "memory",
                 result: Optional[SimulationResult] = None):
        self._groups: List[IssueGroup] = list(groups)
        self.name = name
        self._result = result

    def groups(self) -> Iterator[IssueGroup]:
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    @property
    def result(self) -> Optional[SimulationResult]:
        return self._result


class ReplaySource(IssueSource):
    """A trace file as an issue source (re-drivable; streams from disk).

    The header is validated on construction, so a truncated or
    future-version file fails fast with
    :class:`~repro.cpu.tracefile.TraceFormatError` instead of half-way
    through an experiment.
    """

    kind = "replay"

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.header: Dict[str, Any] = read_trace_header(self.path)
        self.name = self.header.get("name", self.path.stem)
        self._result = header_result(self.header)

    def groups(self) -> Iterator[IssueGroup]:
        return load_trace(self.path)

    @property
    def config_fingerprint(self) -> Optional[str]:
        return self.header.get("config")

    @property
    def result(self) -> Optional[SimulationResult]:
        return self._result


class SyntheticSource(IssueSource):
    """Statistics-calibrated generated stream (no simulation at all).

    Wraps :class:`~repro.workloads.generators.SyntheticStream`; each
    :meth:`groups` call restarts the generator from ``seed``, so the
    source is re-drivable and deterministic — driving it twice yields
    bit-identical streams.
    """

    kind = "synthetic"

    def __init__(self, stats, cycles: int, num_modules: int = 4,
                 operand_mode: str = "iid", seed: int = 0):
        from .workloads.generators import OperandModel, SyntheticStream
        self.stats = stats
        self.cycles = cycles
        self.num_modules = num_modules
        self.operand_mode = operand_mode
        self.seed = seed
        self.name = f"synthetic-{operand_mode}"
        self._stream_cls = SyntheticStream
        self._model_cls = OperandModel

    def groups(self) -> Iterator[IssueGroup]:
        model = self._model_cls(self.stats.fu_class, mode=self.operand_mode)
        stream = self._stream_cls(self.stats, num_modules=self.num_modules,
                                  operand_model=model, seed=self.seed)
        return stream.groups(self.cycles)


def drive(source: IssueSource, consumers: Sequence[IssueConsumer],
          finalize: bool = True) -> Optional[SimulationResult]:
    """Run one source into many consumers: the single evaluation loop.

    Every experiment driver funnels through here, whatever the stream's
    provenance.  After the stream ends, each consumer exposing a
    ``finalize()`` method is drained — that is how deferred
    (wrong-path-excluding) evaluators settle their accounts once the
    speculative flags are final.
    """
    consumers = list(consumers)
    result = source.drive(consumers)
    if finalize:
        for consumer in consumers:
            hook = getattr(consumer, "finalize", None)
            if hook is not None:
                hook()
    return result


def capture(source: IssueSource,
            fu_classes: Optional[Iterable[FUClass]] = None,
            extra_consumers: Sequence[IssueConsumer] = ()
            ) -> MemorySource:
    """Drive ``source`` once, returning its stream as a MemorySource.

    The collector stores *references* to the published MicroOps, so
    wrong-path operations squashed later in the run carry their final
    ``speculative`` flags — which is what makes captured streams
    bit-identical to live listening even for deferred accounting.
    ``extra_consumers`` ride along on the same (single) pass, for
    drivers that want one evaluator set scored live while recording.
    """
    collector = TraceCollector(fu_classes)
    result = drive(source, [collector, *extra_consumers])
    return MemorySource(collector.groups, name=source.name, result=result)


def record(source: IssueSource, path: PathLike,
           fu_classes: Optional[Iterable[FUClass]] = None,
           config_fingerprint: Optional[str] = None,
           extra_consumers: Sequence[IssueConsumer] = ()) -> MemorySource:
    """Capture ``source`` and persist it as a version-2 trace file.

    The write is atomic (temp-then-rename) and happens *after* the run,
    so the file always holds final wrong-path flags and the header
    carries the run summary.  Returns the in-process capture so callers
    can replay immediately without re-reading the file.
    """
    if config_fingerprint is None:
        config = getattr(source, "config", None)
        if config is not None:
            config_fingerprint = config.fingerprint()
    memory = capture(source, fu_classes, extra_consumers)
    write_trace(path, memory.groups(), name=source.name,
                fu_classes=fu_classes,
                config_fingerprint=config_fingerprint,
                source_kind=source.kind, result=memory.result)
    return memory


def trace_cache_key(program: Program, config: MachineConfig,
                    fu_classes: Optional[Iterable[FUClass]] = None) -> str:
    """Content-addressed cache key for a (program, machine) stream.

    Two grid cells that differ only in steering policy, LUT shape, swap
    mode, policy-view fault rate, or telemetry knobs share a key — the
    published stream is identical — while a compiler-swapped program or
    any stream-shaping config change (widths, predictor, cache
    geometry) gets its own entry.
    """
    scope = ("all" if fu_classes is None else
             "+".join(sorted(fu.value for fu in fu_classes)))
    return f"{program.fingerprint()}-{config.fingerprint()}-{scope}"


def cached_source(program: Program, config: MachineConfig,
                  cache_dir: PathLike,
                  fu_classes: Optional[Iterable[FUClass]] = None
                  ) -> "ReplaySource | None":
    """Look up a recorded stream for (program, config) in a cache dir.

    Returns a :class:`ReplaySource` on a hit, ``None`` on a miss (or on
    a corrupt/foreign file — a damaged cache entry is treated as a miss
    rather than sinking the experiment).  Pair with
    :func:`record_cached` to populate.
    """
    from .cpu.tracefile import TraceFormatError
    path = Path(cache_dir) / (
        trace_cache_key(program, config, fu_classes) + ".trace.gz")
    if not path.exists():
        return None
    try:
        source = ReplaySource(path)
    except (TraceFormatError, OSError):
        return None
    if source.config_fingerprint != config.fingerprint():
        return None  # hash-collision paranoia: never replay a mismatch
    return source


def record_cached(program: Program, config: MachineConfig,
                  cache_dir: PathLike,
                  fu_classes: Optional[Iterable[FUClass]] = None,
                  telemetry=None,
                  extra_consumers: Sequence[IssueConsumer] = ()
                  ) -> MemorySource:
    """Simulate once and write the stream under its cache key."""
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        trace_cache_key(program, config, fu_classes) + ".trace.gz")
    return record(LiveSource(program, config, telemetry=telemetry), path,
                  fu_classes=fu_classes,
                  config_fingerprint=config.fingerprint(),
                  extra_consumers=extra_consumers)


class TraceCacheLock:
    """Advisory per-key recording lock for a *shared* trace cache.

    On a single host the cache needs no locking: the recording write is
    atomic, and a lost race just wastes one duplicate simulation.  A
    fleet of worker hosts sharing one cache directory makes that waste
    multiplicative — every cell sharing a (program, config) stream
    would simulate it once per host.  This lock makes the recording
    pass fleet-unique in the common case: one worker wins the
    ``O_EXCL`` create of ``<key>.lock``, records, and releases; the
    rest poll for the entry to appear.

    Purely advisory and crash-tolerant by construction: a lock file
    older than ``ttl`` is presumed orphaned by a dead host and broken
    (unlinked and re-contended).  Correctness never depends on the lock
    — the recorded trace is content-addressed and its write is
    atomic-rename, so the worst outcome of any race is a redundant
    simulation whose bytes match what it overwrites.
    """

    def __init__(self, cache_dir: PathLike, key: str, ttl: float = 600.0):
        self.path = Path(cache_dir) / f"{key}.lock"
        self.ttl = ttl
        self._held = False

    def acquire(self) -> bool:
        """Try to take the lock; breaks one stale holder. Non-blocking."""
        for _ in range(2):  # second pass re-contends after a break
            payload = (json.dumps(
                {"host": socket.gethostname(), "pid": os.getpid(),
                 "time": time.time()}) + "\n").encode("utf-8")
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat
                if age <= self.ttl:
                    return False
                try:  # stale: its holder died recording; break it
                    self.path.unlink()
                except OSError:
                    pass
                continue
            except OSError:
                return False  # unwritable cache dir: fall back unlocked
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            self._held = True
            return True
        return False

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "TraceCacheLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def cached_or_record(program: Program, config: MachineConfig,
                     cache_dir: PathLike,
                     fu_classes: Optional[Iterable[FUClass]] = None,
                     telemetry=None,
                     extra_consumers: Sequence[IssueConsumer] = (),
                     lock_ttl: float = 600.0,
                     poll: float = 0.2,
                     max_wait: Optional[float] = None
                     ) -> Tuple[IssueSource, str]:
    """Fleet-safe cache lookup: replay a hit, or record exactly once.

    Returns ``(source, state)`` where ``state`` is ``"hit"`` (a
    :class:`ReplaySource` was found) or ``"miss"`` (a fresh
    :class:`MemorySource` was recorded — its consumers already rode the
    recording pass, so the caller must *not* drive them again).

    On a miss, contends on :class:`TraceCacheLock` so that across every
    process on every host sharing ``cache_dir``, one worker simulates
    and the rest replay.  A loser polls for the winner's entry with
    full-jitter exponential backoff (``poll`` is the first ceiling) —
    a thundering herd of coalesced losers must not wake in lockstep
    and hammer the filesystem together.  If the entry never appears
    within ``max_wait`` (default ``2 * lock_ttl`` — the winner
    crashed, or the clock-skewed lock never went stale), the loser
    records unlocked: duplicated work, never a wrong or missing
    result.
    """
    # lazy: repro.runner.__init__ pulls in campaign, which imports this
    # module — a top-level import here would close that cycle
    from .runner.pool import full_jitter_delay

    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    key = trace_cache_key(program, config, fu_classes)
    deadline = time.monotonic() + (2 * lock_ttl if max_wait is None
                                   else max_wait)
    attempt = 0
    while True:
        found = cached_source(program, config, cache_dir, fu_classes)
        if found is not None and found.result is not None:
            # a resultless header is a legacy/degenerate entry: treat
            # as a miss and re-record over it, like the runner always
            # has on one host
            return found, "hit"
        lock = TraceCacheLock(cache_dir, key, ttl=lock_ttl)
        if lock.acquire():
            try:
                # the winner re-checks under the lock: the previous
                # holder may have published between our miss and our
                # acquire, and replay beats re-simulating
                found = cached_source(program, config, cache_dir,
                                      fu_classes)
                if found is not None and found.result is not None:
                    return found, "hit"
                memory = record_cached(program, config, cache_dir,
                                       fu_classes, telemetry=telemetry,
                                       extra_consumers=extra_consumers)
                return memory, "miss"
            finally:
                lock.release()
        if time.monotonic() >= deadline:
            # give up on the lock holder; record redundantly rather
            # than wedge the campaign on a dead peer
            memory = record_cached(program, config, cache_dir,
                                   fu_classes, telemetry=telemetry,
                                   extra_consumers=extra_consumers)
            return memory, "miss"
        # cap the ceiling at 16x poll: late losers should still notice
        # the published entry within a few seconds, they just must not
        # all notice it in the same instant
        attempt = min(attempt + 1, 5)
        time.sleep(min(full_jitter_delay(poll, attempt),
                       max(0.0, deadline - time.monotonic())))


def prune_trace_cache(cache_dir: PathLike, limit_mb: float,
                      protect: Iterable[PathLike] = ()) -> List[Path]:
    """Evict least-recently-used trace-cache entries past ``limit_mb``.

    An *entry* is a ``.trace.gz`` file plus its packed ``.pack`` sidecar
    (when present); the pair lives and dies together.  Recency is the
    trace file's mtime — replay paths touch it on every hit — so the
    oldest entries go first.  Entries named in ``protect`` (trace paths;
    sidecars are implied) are never evicted, even when that leaves the
    cache over the limit: evicting the stream an in-flight figure run
    is replaying would turn its next pass into a cache miss mid-run.

    Orphaned ``.pack`` files (their trace already gone) count toward the
    budget and are pruned first.  Every unlink is individually guarded:
    a concurrently-removed or unreadable file is skipped, never fatal.
    Returns the list of deleted paths.
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        return []
    protected = {Path(p).resolve() for p in protect}
    limit_bytes = int(limit_mb * 1024 * 1024)
    deleted: List[Path] = []

    def _unlink(path: Path) -> int:
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            return 0
        deleted.append(path)
        return size

    entries = []  # (mtime, trace, [files...], total_size)
    total = 0
    for trace in directory.glob("*.trace.gz"):
        side = trace.with_name(trace.name + ".pack")
        try:
            stat = trace.stat()
        except OSError:
            continue  # raced with another pruner; entry is going away
        files = [trace]
        size = stat.st_size
        try:
            # stat'd right here rather than via an exists() probe, so a
            # sidecar written between the glob and now still counts
            # toward the entry's size and is unlinked with it
            size += side.stat().st_size
        except OSError:
            pass  # no sidecar (or it vanished); the trace still counts
        else:
            files.append(side)
        total += size
        entries.append((stat.st_mtime, trace, files, size))
    for orphan in directory.glob("*.pack"):
        if not orphan.with_name(orphan.name[:-len(".pack")]).exists():
            try:
                # the scan above only saw paired sidecars: an orphan's
                # bytes are cache usage too, so count them before the
                # unlink subtracts them — otherwise ``total`` undercounts
                # and the LRU loop stops while still over the limit
                total += orphan.stat().st_size
            except OSError:
                continue  # vanished mid-prune; nothing to count or unlink
            total -= _unlink(orphan)
    entries.sort(key=lambda entry: entry[0])
    for _, trace, files, size in entries:
        if total <= limit_bytes:
            break
        if trace.resolve() in protected:
            continue
        for path in files:
            _unlink(path)
        total -= size
    return deleted


class TelemetryStreamSampler:
    """Drive a :class:`~repro.telemetry.session.TelemetrySession`'s
    time-series sampling from a stream's cycle numbers.

    The replay/synthetic stand-in for the live simulator's in-run
    sampling: a row is taken every ``interval`` stream cycles and once
    more at :meth:`finalize`, mirroring the run loop's cadence.
    Pipeline gauges (ROB/RS occupancy) do not exist outside a live run,
    so replayed rows carry counters and derived rates only.
    """

    def __init__(self, session, interval: Optional[int] = None):
        self.session = session
        if interval is None:
            interval = session.sample_interval
        self.interval = interval
        self._next = interval if interval > 0 else None
        self._last_cycle = -1

    def __call__(self, group: IssueGroup) -> None:
        cycle = group.cycle
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        if self._next is not None and cycle >= self._next:
            self.session.take_sample(cycle)
            self._next = cycle + self.interval

    def finalize(self) -> None:
        if self._next is not None and self._last_cycle >= 0:
            self.session.take_sample(self._last_cycle)


__all__ = [
    "IssueConsumer", "IssueSource", "LiveSource", "MemorySource",
    "ReplaySource", "SyntheticSource", "SOURCE_KINDS",
    "TelemetryStreamSampler",
    "capture", "cached_source", "drive", "prune_trace_cache", "record",
    "record_cached", "trace_cache_key",
]
