"""Profile collection for compiler-based operand swapping (section 4.4).

The compiler decides whether to swap a static instruction's operands
from the *average number of high bits* each operand carries across a
profiling run — unlike the hardware, which only sees one information
bit per operand per cycle.  Profiles are gathered with the cheap
in-order golden model; the paper likewise profiles ahead of time and
acknowledges that behaviour "will vary somewhat for different input
patterns".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..cpu.golden import GoldenResult, run_program
from ..isa import encoding
from ..isa.instructions import FUClass, Instruction
from ..isa.program import Program

_INT_CLASSES = (FUClass.IALU, FUClass.IMULT)


def _high_bits(bits: int, fu_class: FUClass) -> int:
    """Set bits of the operand image the FU datapath actually sees."""
    if fu_class in _INT_CLASSES:
        return encoding.popcount(bits & encoding.INT_MASK)
    return encoding.popcount(bits & encoding.MANTISSA_MASK)


@dataclass
class OperandProfile:
    """Accumulated operand statistics for one static instruction."""

    executions: int = 0
    ones_op1: int = 0
    ones_op2: int = 0

    @property
    def mean_ones_op1(self) -> float:
        return self.ones_op1 / self.executions if self.executions else 0.0

    @property
    def mean_ones_op2(self) -> float:
        return self.ones_op2 / self.executions if self.executions else 0.0


@dataclass
class ProgramProfile:
    """Per-static-instruction operand profile of one program run."""

    program_name: str
    instructions_executed: int = 0
    by_static_index: Dict[int, OperandProfile] = field(default_factory=dict)

    def profile_for(self, index: int) -> Optional[OperandProfile]:
        return self.by_static_index.get(index)


# Profiling is a deterministic function of the program image, so repeat
# calls (figure-4 sweeps rebuild the same workloads every invocation)
# can reuse the first run's profile.  Keyed by content fingerprint, not
# identity, so freshly assembled copies of the same program still hit.
_PROFILE_CACHE: "Dict[tuple, ProgramProfile]" = {}
_PROFILE_CACHE_MAX = 32


def clear_profile_cache() -> None:
    """Drop memoised profiles (test isolation hook)."""
    _PROFILE_CACHE.clear()


def profile_program(program: Program,
                    max_instructions: int = 10_000_000) -> ProgramProfile:
    """Run ``program`` in order and collect operand-ones statistics.

    Only two-register operations that the compiler could conceivably
    reorder are profiled; immediate forms and single-source operations
    are skipped (the paper's "immediate add" limitation).

    Results are memoised by program fingerprint; callers must treat the
    returned profile as read-only.
    """
    key = (program.fingerprint(), max_instructions)
    cached = _PROFILE_CACHE.get(key)
    if cached is not None:
        return cached

    profile = ProgramProfile(program_name=program.name)

    def observe(instr: Instruction, op1: int, op2: int, has_two: bool) -> None:
        if not has_two or not instr.op.compiler_swappable:
            return
        record = profile.by_static_index.setdefault(instr.address,
                                                    OperandProfile())
        record.executions += 1
        record.ones_op1 += _high_bits(op1, instr.op.fu_class)
        record.ones_op2 += _high_bits(op2, instr.op.fu_class)

    result: GoldenResult = run_program(program, max_instructions=max_instructions,
                                       observer=observe)
    profile.instructions_executed = result.instructions
    if len(_PROFILE_CACHE) >= _PROFILE_CACHE_MAX:
        _PROFILE_CACHE.pop(next(iter(_PROFILE_CACHE)))
    _PROFILE_CACHE[key] = profile
    return profile
