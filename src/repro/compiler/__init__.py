"""Compiler-side optimisation: profile-guided static operand swapping."""

from .profiling import OperandProfile, ProgramProfile, profile_program
from .static_assignment import (CaseProfile, StaticAssignmentPolicy,
                                assign_static_modules, build_static_policy,
                                profile_cases)
from .swap_pass import (PAPER_DENSER_FIRST, SwapReport, apply_swapping,
                        denser_first_from_swap_case, swap_optimize)

__all__ = [
    "OperandProfile", "ProgramProfile", "profile_program",
    "PAPER_DENSER_FIRST", "SwapReport", "apply_swapping",
    "denser_first_from_swap_case", "swap_optimize",
    "CaseProfile", "StaticAssignmentPolicy", "assign_static_modules",
    "build_static_policy", "profile_cases",
]
