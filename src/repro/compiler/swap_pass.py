"""Profile-guided static operand swapping (section 4.4).

For each static instruction whose operands the compiler may reorder,
compare the profiled average number of high bits in each operand and
rewrite the instruction so the operands sit in the *canonical order*
for its FU class:

* steered classes (IALU, FPAU) — the canonical case is the target of
  the hardware swap rule (section 4.4): denser-operand-first for the
  IALU, sparser-first for the FPAU, so statically- and dynamically-
  swapped operations agree and map onto the same modules coherently;
* multiplier classes — fewer ones second, minimising Booth/shift-add
  partial products.

Register-form commutative opcodes swap by exchanging sources; compare
and branch opcodes swap via their commuted twin (``slt`` <-> ``sgt``,
``blt`` <-> ``bgt``, ...), the paper's ``>`` to ``<=`` example.
Immediate forms cannot be swapped — machine encoding fixes the
immediate as the second operand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from ..isa.instructions import FUClass, Instruction, opcode
from ..isa.program import Program
from .profiling import ProgramProfile, profile_program

_MULTIPLIER_CLASSES = (FUClass.IMULT, FUClass.FPMULT)

# Canonical operand order per steered class: True puts the operand with
# more profiled high bits first (the paper's IALU direction, canonical
# case 10); False puts the sparser operand first (FPAU, canonical 01).
# The direction must agree with the hardware swap rule in use, or the
# two mechanisms undo each other — derive it from the same case
# statistics with ``denser_first_from_swap_case`` when possible.
PAPER_DENSER_FIRST: Mapping[FUClass, bool] = {
    FUClass.IALU: True,
    FUClass.FPAU: False,
}


def denser_first_from_swap_case(swap_from_case: int) -> bool:
    """Canonical direction implied by a hardware swap-from case.

    Hardware swapping case 01 into 10 leaves the denser operand first;
    swapping 10 into 01 leaves the sparser operand first.
    """
    if swap_from_case == 0b01:
        return True
    if swap_from_case == 0b10:
        return False
    raise ValueError("only the mixed cases imply a canonical direction")


@dataclass
class SwapReport:
    """What the pass did to one program."""

    program_name: str
    candidates: int = 0
    swapped: int = 0
    by_class: Dict[FUClass, int] = field(default_factory=dict)

    @property
    def swap_fraction(self) -> float:
        return self.swapped / self.candidates if self.candidates else 0.0


def _should_swap(fu_class: FUClass, mean_op1: float, mean_op2: float,
                 margin: float,
                 denser_first: Mapping[FUClass, bool]) -> bool:
    if fu_class in _MULTIPLIER_CLASSES:
        return mean_op2 > mean_op1 + margin
    if denser_first.get(fu_class, True):
        return mean_op1 + margin < mean_op2
    return mean_op1 > mean_op2 + margin


def _swap_instruction(instr: Instruction) -> Instruction:
    op = instr.op
    new_op = op
    if op.compiler_swap_to is not None:
        new_op = opcode(op.compiler_swap_to)
    return Instruction(new_op, dest=instr.dest, src1=instr.src2,
                       src2=instr.src1, imm=instr.imm, target=instr.target,
                       label=instr.label, address=instr.address,
                       static_swapped=not instr.static_swapped)


def apply_swapping(program: Program, profile: ProgramProfile,
                   margin: float = 0.0,
                   denser_first: Optional[Mapping[FUClass, bool]] = None
                   ) -> "tuple[Program, SwapReport]":
    """Rewrite ``program`` per ``profile``; returns (new program, report).

    ``denser_first`` sets the canonical operand order per steered FU
    class; it defaults to the paper's directions and should be derived
    from the active hardware swap rule when both mechanisms are used.
    """
    if denser_first is None:
        denser_first = PAPER_DENSER_FIRST
    report = SwapReport(program_name=program.name)
    rewritten = []
    for index, instr in enumerate(program.instructions):
        record = profile.profile_for(index)
        if (record is None or not record.executions
                or not instr.op.compiler_swappable):
            rewritten.append(replace(instr))
            continue
        report.candidates += 1
        fu_class = instr.op.fu_class
        if _should_swap(fu_class, record.mean_ones_op1,
                        record.mean_ones_op2, margin, denser_first):
            rewritten.append(_swap_instruction(instr))
            report.swapped += 1
            report.by_class[fu_class] = report.by_class.get(fu_class, 0) + 1
        else:
            rewritten.append(replace(instr))
    swapped_program = Program(rewritten, labels=dict(program.labels),
                              symbols=dict(program.symbols),
                              data=program.data.copy(),
                              name=f"{program.name}+cswap")
    swapped_program.validate()
    return swapped_program, report


def swap_optimize(program: Program, max_instructions: int = 10_000_000,
                  margin: float = 0.0,
                  denser_first: Optional[Mapping[FUClass, bool]] = None
                  ) -> "tuple[Program, SwapReport]":
    """Profile ``program`` and apply the swap pass in one call."""
    profile = profile_program(program, max_instructions=max_instructions)
    return apply_swapping(program, profile, margin=margin,
                          denser_first=denser_first)
