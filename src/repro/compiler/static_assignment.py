"""Compile-time (VLIW-style) functional-unit assignment.

Section 2 of the paper: "Because superscalars allow out-of-order
execution, a good assignment strategy should be dynamic.  The case is
less clear for VLIW processors, yet some of our proposed techniques are
also applicable to VLIWs."  In a VLIW the compiler fixes each static
instruction's module at schedule time, so the best it can do is place
instructions by their *profiled dominant case* on the same home-module
layout the dynamic LUT uses.

This module implements that static scheme so the dynamic-vs-static
claim can be measured:

1. :func:`profile_cases` runs the golden model and histograms each
   static instruction's information-bit cases;
2. :func:`assign_static_modules` maps each static instruction to a
   module — heaviest instructions first, each taking the least-loaded
   module among those whose home best matches its dominant case;
3. :class:`StaticAssignmentPolicy` honours the mapping at run time,
   resolving same-cycle conflicts oldest-first with FCFS fallback (a
   real VLIW would have scheduled the conflict away; the fallback makes
   the policy usable on the out-of-order stream for comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cpu.golden import run_program
from ..cpu.trace import MicroOp
from ..core.assignment import Assignment
from ..core.info_bits import InfoBitScheme, case_hamming, scheme_for
from ..core.lut import allocate_homes
from ..core.power import FUPowerModel
from ..core.statistics import CaseStatistics
from ..isa.instructions import FUClass, Instruction
from ..isa.program import Program


@dataclass
class CaseProfile:
    """Per-static-instruction case histogram for one FU class."""

    fu_class: FUClass
    counts: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def record(self, static_index: int, case: int) -> None:
        per_case = self.counts.setdefault(static_index, {})
        per_case[case] = per_case.get(case, 0) + 1

    def dominant_case(self, static_index: int) -> Optional[int]:
        per_case = self.counts.get(static_index)
        if not per_case:
            return None
        return max(sorted(per_case), key=lambda case: per_case[case])

    def executions(self, static_index: int) -> int:
        return sum(self.counts.get(static_index, {}).values())


def profile_cases(program: Program, fu_class: FUClass,
                  scheme: Optional[InfoBitScheme] = None,
                  max_instructions: int = 10_000_000) -> CaseProfile:
    """Histogram each static instruction's cases on a profiling run."""
    scheme = scheme or scheme_for(fu_class)
    profile = CaseProfile(fu_class)

    def observe(instr: Instruction, op1: int, op2: int, has_two: bool) -> None:
        if instr.op.fu_class is not fu_class:
            return
        profile.record(instr.address,
                       scheme.case_of(op1, op2 if has_two else 0))

    run_program(program, max_instructions=max_instructions,
                observer=observe)
    return profile


def assign_static_modules(profile: CaseProfile, stats: CaseStatistics,
                          num_modules: int) -> Dict[int, int]:
    """Fix a module per static instruction from its dominant case.

    Instructions are placed heaviest-first; each takes the
    least-loaded module among those whose home case is closest (by
    information-bit Hamming) to its dominant case, balancing load
    across same-home modules.
    """
    homes = allocate_homes(stats, num_modules)
    load = [0] * num_modules
    mapping: Dict[int, int] = {}
    ordered = sorted(profile.counts,
                     key=lambda idx: -profile.executions(idx))
    for static_index in ordered:
        case = profile.dominant_case(static_index)
        best_distance = min(case_hamming(case, home) for home in homes)
        candidates = [m for m in range(num_modules)
                      if case_hamming(case, homes[m]) == best_distance]
        module = min(candidates, key=lambda m: (load[m], m))
        mapping[static_index] = module
        load[module] += profile.executions(static_index)
    return mapping


@dataclass
class StaticAssignmentPolicy:
    """Run-time router honouring a compile-time module mapping."""

    mapping: Dict[int, int]
    name: str = "static-vliw"

    def assign(self, ops: Sequence[MicroOp],
               power: FUPowerModel) -> Assignment:
        taken: List[Optional[int]] = [None] * len(ops)
        used = set()
        for k, op in enumerate(ops):
            wanted = self.mapping.get(op.static_index)
            if wanted is not None and wanted not in used:
                taken[k] = wanted
                used.add(wanted)
        free = [m for m in range(power.num_modules) if m not in used]
        for k in range(len(ops)):
            if taken[k] is None:
                taken[k] = free.pop(0)
        return Assignment(modules=tuple(taken),  # type: ignore[arg-type]
                          swapped=(False,) * len(ops), total_cost=0.0)


def build_static_policy(program: Program, fu_class: FUClass,
                        stats: CaseStatistics, num_modules: int,
                        scheme: Optional[InfoBitScheme] = None
                        ) -> StaticAssignmentPolicy:
    """Profile a program and build its static VLIW-style router."""
    profile = profile_cases(program, fu_class, scheme=scheme)
    mapping = assign_static_modules(profile, stats, num_modules)
    return StaticAssignmentPolicy(mapping=mapping)
