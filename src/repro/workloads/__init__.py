"""Workload suite: SPEC95-analogue kernels and statistical generators."""

from .base import (Workload, all_workloads, float_suite, integer_suite,
                   register, workload)
from .generators import (BitProbs, OperandModel, SyntheticStream,
                         paper_bit_probs)

__all__ = [
    "Workload", "all_workloads", "float_suite", "integer_suite",
    "register", "workload",
    "BitProbs", "OperandModel", "SyntheticStream", "paper_bit_probs",
]
