"""Workload registry.

The paper evaluates on SPEC 95 (integer: m88ksim, ijpeg, li, go,
compress, cc1, perl; floating point: apsi, applu, hydro2d, wave5, swim,
mgrid, turb3d, fpppp) run to completion under SimpleScalar.  SPEC 95
binaries and inputs are not redistributable, so this package provides
*kernels in the mini ISA* that exercise the same algorithmic domains
and, crucially, produce data streams with the same bit-pattern
character: small sign-extended integers, pointer arithmetic, branchy
interpreters, and floating point values mixing integer casts, widened
singles and round constants with full-precision results.

Every workload registers a builder (scale -> assembly source) and a
checker that validates the architectural result against a pure-Python
golden computation, so the workloads double as end-to-end tests of the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cpu.golden import GoldenResult
from ..isa.assembler import assemble
from ..isa.program import Program

# checker(program, result, scale) raises AssertionError on mismatch
Checker = Callable[[Program, GoldenResult, int], None]
SourceBuilder = Callable[[int], str]


@dataclass(frozen=True)
class Workload:
    """One registered benchmark kernel."""

    name: str
    kind: str  # "int" or "fp"
    spec_analogue: str
    description: str
    build_source: SourceBuilder
    check: Checker
    default_scale: int = 1

    def build(self, scale: Optional[int] = None) -> Program:
        """Assemble this workload at the given scale.

        Assembly is deterministic, so results are memoised per
        ``(name, scale)``; nothing downstream mutates a ``Program``
        (simulators copy the data image into their own ``Memory``), and
        callers must keep it that way.
        """
        actual = self.default_scale if scale is None else scale
        if actual < 1:
            raise ValueError("scale must be at least 1")
        key = (self.name, actual)
        program = _BUILD_CACHE.get(key)
        if program is None:
            program = assemble(self.build_source(actual), name=self.name)
            _BUILD_CACHE[key] = program
        return program


_REGISTRY: Dict[str, Workload] = {}

# assembled programs by (workload name, scale); see Workload.build
_BUILD_CACHE: Dict[tuple, Program] = {}


def register(workload: Workload) -> Workload:
    """Add a workload to the global registry (module import side)."""
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload '{workload.name}'")
    if workload.kind not in ("int", "fp"):
        raise ValueError("workload kind must be 'int' or 'fp'")
    _REGISTRY[workload.name] = workload
    return workload


def workload(name: str) -> Workload:
    """Look up a workload by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown workload '{name}'; available:"
                         f" {sorted(_REGISTRY)}") from None


def all_workloads(kind: Optional[str] = None) -> List[Workload]:
    """All registered workloads, optionally filtered by kind."""
    _ensure_loaded()
    loads = sorted(_REGISTRY.values(), key=lambda w: w.name)
    if kind is not None:
        loads = [w for w in loads if w.kind == kind]
    return loads


def integer_suite() -> List[Workload]:
    """The SPEC95-integer-analogue suite."""
    return all_workloads("int")


def float_suite() -> List[Workload]:
    """The SPEC95-floating-point-analogue suite."""
    return all_workloads("fp")


_LOADED = False


def _ensure_loaded() -> None:
    """Import kernel modules on first registry access."""
    global _LOADED
    if _LOADED:
        return
    from . import kernels  # noqa: F401  (import registers the kernels)
    _LOADED = True
