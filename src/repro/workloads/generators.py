"""Statistical operand-stream generators.

These synthesise :class:`~repro.cpu.trace.IssueGroup` streams directly
from case-frequency, usage, and bit-probability distributions — no
simulation involved.  Two uses:

* **calibration** — streams generated from the paper's own Table 1 and
  Table 2 numbers validate that our analysis pipeline reads those
  distributions back correctly, and let the steering policies be
  evaluated on operand statistics identical to the paper's;
* **library use** — downstream users can explore steering behaviour
  under arbitrary operand distributions without writing kernels.

Two operand models are provided per domain: ``iid`` draws each
non-information bit independently (matches a target bit probability
exactly in expectation) and ``structured`` draws sign-extended
small-magnitude integers / trailing-zero mantissas (matches how real
data looks, which is what makes the information bit predictive).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Tuple

from ..cpu.trace import IssueGroup, MicroOp
from ..isa import encoding
from ..isa.instructions import FUClass, opcode
from ..core.statistics import CaseStatistics

# representative opcodes for synthetic streams
_OPCODES = {
    (FUClass.IALU, True): opcode("add"),
    (FUClass.IALU, False): opcode("sub"),
    (FUClass.FPAU, True): opcode("fadd"),
    (FUClass.FPAU, False): opcode("fsub"),
    (FUClass.IMULT, True): opcode("mult"),
    (FUClass.IMULT, False): opcode("div"),
    (FUClass.FPMULT, True): opcode("fmul"),
    (FUClass.FPMULT, False): opcode("fdiv"),
}

# Table 1 per-operand P(bit high) for each (case, operand) pair;
# commutativity rows merged by frequency weighting.
BitProbs = Mapping[Tuple[int, int], float]  # (case, operand index 0/1) -> p

PAPER_IALU_BIT_PROBS: BitProbs = {
    (0b00, 0): 0.110, (0b00, 1): 0.056,
    (0b01, 0): 0.171, (0b01, 1): 0.607,
    (0b10, 0): 0.611, (0b10, 1): 0.086,
    (0b11, 0): 0.697, (0b11, 1): 0.807,
}

PAPER_FPAU_BIT_PROBS: BitProbs = {
    (0b00, 0): 0.102, (0b00, 1): 0.118,
    (0b01, 0): 0.175, (0b01, 1): 0.520,
    (0b10, 0): 0.508, (0b10, 1): 0.189,
    (0b11, 0): 0.508, (0b11, 1): 0.503,
}


def paper_bit_probs(fu_class: FUClass) -> BitProbs:
    """Frequency-weighted Table 1 bit probabilities."""
    if fu_class is FUClass.IALU:
        return PAPER_IALU_BIT_PROBS
    if fu_class is FUClass.FPAU:
        return PAPER_FPAU_BIT_PROBS
    raise ValueError(f"no published bit probabilities for {fu_class}")


@dataclass
class OperandModel:
    """Draws operand bit images consistent with an information bit."""

    fu_class: FUClass
    mode: str = "iid"  # "iid" or "structured"
    bit_probs: Optional[BitProbs] = None

    def __post_init__(self) -> None:
        if self.mode not in ("iid", "structured"):
            raise ValueError("mode must be 'iid' or 'structured'")
        self._is_float = self.fu_class in (FUClass.FPAU, FUClass.FPMULT)
        if self.bit_probs is None and self.mode == "iid":
            self.bit_probs = paper_bit_probs(self.fu_class)

    def draw(self, rng: random.Random, case: int, operand: int) -> int:
        """One operand image whose information bit matches ``case``."""
        info = (case >> 1) & 1 if operand == 0 else case & 1
        if self.mode == "iid":
            return self._draw_iid(rng, case, operand, info)
        return self._draw_structured(rng, info)

    # --- iid: match the target bit probability exactly ----------------------

    def _draw_iid(self, rng: random.Random, case: int, operand: int,
                  info: int) -> int:
        target = self.bit_probs[(case, operand)]
        if self._is_float:
            return self._iid_mantissa(rng, info, target)
        return self._iid_int(rng, info, target)

    def _iid_int(self, rng: random.Random, sign: int, target: float) -> int:
        # the sign bit is fixed; the other 31 bits are Bernoulli with a
        # probability chosen so the whole word matches the target
        p = min(1.0, max(0.0, (target * 32 - sign) / 31))
        bits = sign << 31
        for position in range(31):
            if rng.random() < p:
                bits |= 1 << position
        return bits

    def _iid_mantissa(self, rng: random.Random, info: int,
                      target: float) -> int:
        # info bit = OR of the low 4 mantissa bits; draw those first
        if info:
            low = rng.randrange(1, 16)
        else:
            low = 0
        low_ones = bin(low).count("1")
        p = min(1.0, max(0.0, (target * 52 - low_ones) / 48))
        bits = low
        for position in range(4, 52):
            if rng.random() < p:
                bits |= 1 << position
        # a plausible exponent/sign so the image decodes as a normal double
        exponent = rng.randrange(1000, 1040)
        return encoding.make_double(rng.getrandbits(1), exponent, bits)

    # --- structured: sign extension / trailing zeros -------------------------

    def _draw_structured(self, rng: random.Random, info: int) -> int:
        if self._is_float:
            return self._structured_mantissa(rng, info)
        return self._structured_int(rng, info)

    @staticmethod
    def _structured_int(rng: random.Random, sign: int) -> int:
        # small magnitudes dominate: geometric significant-bit count
        significant = min(31, 1 + int(rng.expovariate(0.25)))
        magnitude = rng.getrandbits(significant) if significant else 0
        value = -1 - magnitude if sign else magnitude
        return value & encoding.INT_MASK

    @staticmethod
    def _structured_mantissa(rng: random.Random, info: int) -> int:
        if info:
            mantissa = rng.getrandbits(52) | 1  # full precision
        else:
            significant = min(20, int(rng.expovariate(0.2)))
            top = rng.getrandbits(significant) if significant else 0
            mantissa = top << (52 - significant) if significant else 0
        exponent = rng.randrange(1000, 1040)
        return encoding.make_double(rng.getrandbits(1), exponent, mantissa)


class SyntheticStream:
    """Generates issue groups from case/usage/commutativity statistics."""

    def __init__(self, stats: CaseStatistics, num_modules: int = 4,
                 operand_model: Optional[OperandModel] = None,
                 seed: int = 0):
        self.stats = stats
        self.num_modules = num_modules
        self.model = operand_model or OperandModel(stats.fu_class)
        self.rng = random.Random(seed)
        rows = sorted(stats.case_comm_freq.items())
        self._row_keys = [key for key, _ in rows]
        self._row_weights = [weight for _, weight in rows]
        usage = stats.usage_distribution(num_modules)
        self._widths = sorted(usage)
        self._width_weights = [usage[w] for w in self._widths]

    def _draw_op(self) -> MicroOp:
        (case, commutative), = self.rng.choices(self._row_keys,
                                                self._row_weights)
        info = _OPCODES[(self.stats.fu_class, commutative)]
        op1 = self.model.draw(self.rng, case, 0)
        op2 = self.model.draw(self.rng, case, 1)
        return MicroOp(info, op1, op2, has_two=True)

    def groups(self, cycles: int) -> Iterator[IssueGroup]:
        """Yield ``cycles`` busy-cycle issue groups."""
        for cycle in range(cycles):
            width, = self.rng.choices(self._widths, self._width_weights)
            ops = [self._draw_op() for _ in range(width)]
            yield IssueGroup(cycle, self.stats.fu_class, ops)
