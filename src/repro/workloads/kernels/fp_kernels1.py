"""Floating point kernels, part 1: swim, mgrid, applu, hydro2d analogues.

All checkers mirror the kernel's floating point operations in Python in
the exact same order, so results compare bit-for-bit (Python floats are
IEEE-754 doubles, the same arithmetic the ISA semantics performs).
"""

from __future__ import annotations

from typing import List

from ...cpu.golden import GoldenResult
from ...isa import encoding
from ...isa.program import Program
from ..base import Workload, register
from .common import doubles_directive


def _expect_double(result: GoldenResult, address: int, expected: float,
                   what: str) -> None:
    actual_bits = result.memory.load_double(address)
    expected_bits = encoding.float_to_bits(expected)
    assert actual_bits == expected_bits, (
        f"{what}: got {encoding.bits_to_float(actual_bits)!r},"
        f" expected {expected!r}")


# =====================================================================
# swim: 2D five-point stencil relaxation (shallow-water flavour)
# =====================================================================

_SWIM_H = 10
_SWIM_W = 10


def _swim_grid() -> List[float]:
    # round numbers, as the paper observes are common in FP codes
    return [(i + j) * 0.25 for i in range(_SWIM_H) for j in range(_SWIM_W)]


def _swim_steps(scale: int) -> int:
    return 6 * scale


def _swim_source(scale: int) -> str:
    grid = _swim_grid()
    w = _SWIM_W
    return f"""
.data
{doubles_directive("grid_a", grid)}
{doubles_directive("grid_b", grid)}
consts: .double 0.125, 4.0
results: .space 8
.text
main:
    li   r20, {_swim_steps(scale)}
    la   r2, grid_a
    la   r3, grid_b
    la   r4, consts
    ld   f10, 0(r4)     # c = 0.125
    ld   f11, 8(r4)     # 4.0
    li   r7, {w}
step:
    beq  r20, r0, sumup
    li   r5, 1
iloop:
    li   r6, 1
jloop:
    mult r8, r5, r7
    add  r8, r8, r6
    slli r8, r8, 3
    add  r9, r2, r8
    ld   f1, 0(r9)          # centre
    ld   f2, -8(r9)         # west
    ld   f3, 8(r9)          # east
    ld   f4, {-8 * w}(r9)   # north
    ld   f5, {8 * w}(r9)    # south
    fadd f6, f2, f3
    fadd f6, f6, f4
    fadd f6, f6, f5
    fmul f7, f1, f11
    fsub f6, f6, f7
    fmul f6, f6, f10
    fadd f6, f1, f6
    add  r10, r3, r8
    sd   f6, 0(r10)
    addi r6, r6, 1
    li   r11, {w - 1}
    bne  r6, r11, jloop
    addi r5, r5, 1
    li   r11, {_SWIM_H - 1}
    bne  r5, r11, iloop
    add  r12, r2, r0
    add  r2, r3, r0
    add  r3, r12, r0
    addi r20, r20, -1
    j    step
sumup:
    li   r13, {_SWIM_H * _SWIM_W}
    add  r14, r2, r0
sumloop:
    beq  r13, r0, done
    ld   f1, 0(r14)
    fadd f20, f20, f1
    addi r14, r14, 8
    addi r13, r13, -1
    j    sumloop
done:
    la   r15, results
    sd   f20, 0(r15)
    halt
"""


def _swim_golden(scale: int) -> float:
    w, h = _SWIM_W, _SWIM_H
    src = _swim_grid()
    dst = list(src)
    for _ in range(_swim_steps(scale)):
        for i in range(1, h - 1):
            for j in range(1, w - 1):
                centre = src[i * w + j]
                acc = src[i * w + j - 1] + src[i * w + j + 1]
                acc = acc + src[(i - 1) * w + j]
                acc = acc + src[(i + 1) * w + j]
                acc = acc - centre * 4.0
                dst[i * w + j] = centre + acc * 0.125
        src, dst = dst, src
    total = 0.0
    for value in src:
        total = total + value
    return total


def _swim_check(program: Program, result: GoldenResult, scale: int) -> None:
    base = program.symbol_address("results")
    _expect_double(result, base, _swim_golden(scale), "stencil sum")


register(Workload(
    name="swim",
    kind="fp",
    spec_analogue="102.swim",
    description="Five-point stencil relaxation on a 2D grid of round"
                " numbers (shallow-water flavour).",
    build_source=_swim_source,
    check=_swim_check,
    default_scale=2,
))


# =====================================================================
# mgrid: two-level multigrid V-cycle (smooth, restrict, smooth, prolong)
# =====================================================================

_MGRID_N = 64


def _mgrid_rhs() -> List[float]:
    return [0.5 if (i % 5) == 0 else 0.0625 * (i % 9) for i in range(_MGRID_N)]


def _mgrid_source(scale: int) -> str:
    n = _MGRID_N
    coarse = n // 2
    cycles = 2 * scale
    return f"""
.data
fine: .space {8 * n}
{doubles_directive("rhs", _mgrid_rhs())}
coarse: .space {8 * coarse}
consts: .double 0.5, 0.25
results: .space 8
.text
main:
    la   r2, fine
    la   r3, rhs
    la   r4, coarse
    la   r5, consts
    ld   f10, 0(r5)     # 0.5
    ld   f11, 8(r5)     # 0.25
    li   r20, {cycles}
vcycle:
    beq  r20, r0, sumup
    # --- smooth fine: 2 Gauss-Seidel sweeps ---
    li   r21, 2
fs_sweep:
    beq  r21, r0, restrict
    li   r6, 1
fs_loop:
    slli r7, r6, 3
    add  r8, r2, r7
    ld   f1, -8(r8)
    ld   f2, 8(r8)
    add  r9, r3, r7
    ld   f3, 0(r9)
    fadd f4, f1, f2
    fadd f4, f4, f3
    fmul f4, f4, f10
    sd   f4, 0(r8)
    addi r6, r6, 1
    li   r10, {n - 1}
    bne  r6, r10, fs_loop
    addi r21, r21, -1
    j    fs_sweep
restrict:
    li   r6, 1
rs_loop:
    slli r7, r6, 4      # fine index 2i, byte offset 16*i
    add  r8, r2, r7
    ld   f1, -8(r8)
    ld   f2, 0(r8)
    ld   f3, 8(r8)
    fadd f4, f2, f2
    fadd f4, f4, f1
    fadd f4, f4, f3
    fmul f4, f4, f11
    slli r9, r6, 3
    add  r9, r9, r4
    sd   f4, 0(r9)
    addi r6, r6, 1
    li   r10, {coarse - 1}
    bne  r6, r10, rs_loop
    # --- smooth coarse: 2 sweeps, zero rhs ---
    li   r21, 2
cs_sweep:
    beq  r21, r0, prolong
    li   r6, 1
cs_loop:
    slli r7, r6, 3
    add  r8, r4, r7
    ld   f1, -8(r8)
    ld   f2, 8(r8)
    fadd f4, f1, f2
    fmul f4, f4, f10
    sd   f4, 0(r8)
    addi r6, r6, 1
    li   r10, {coarse - 1}
    bne  r6, r10, cs_loop
    addi r21, r21, -1
    j    cs_sweep
prolong:
    li   r6, 1
pl_loop:
    slli r7, r6, 3
    add  r8, r4, r7
    ld   f1, 0(r8)      # C[i]
    ld   f2, 8(r8)      # C[i+1]
    slli r9, r6, 4
    add  r10, r2, r9
    ld   f3, 0(r10)     # F[2i]
    fadd f3, f3, f1
    sd   f3, 0(r10)
    ld   f4, 8(r10)     # F[2i+1]
    fadd f5, f1, f2
    fmul f5, f5, f10
    fadd f4, f4, f5
    sd   f4, 8(r10)
    addi r6, r6, 1
    li   r11, {coarse - 2}
    bne  r6, r11, pl_loop
    addi r20, r20, -1
    j    vcycle
sumup:
    li   r13, {n}
    add  r14, r2, r0
sumloop:
    beq  r13, r0, done
    ld   f1, 0(r14)
    fadd f20, f20, f1
    addi r14, r14, 8
    addi r13, r13, -1
    j    sumloop
done:
    la   r15, results
    sd   f20, 0(r15)
    halt
"""


def _mgrid_golden(scale: int) -> float:
    n = _MGRID_N
    half = n // 2
    fine = [0.0] * n
    rhs = _mgrid_rhs()
    coarse = [0.0] * half
    for _ in range(2 * scale):
        for _ in range(2):
            for i in range(1, n - 1):
                fine[i] = ((fine[i - 1] + fine[i + 1]) + rhs[i]) * 0.5
        for i in range(1, half - 1):
            value = fine[2 * i] + fine[2 * i]
            value = value + fine[2 * i - 1]
            value = value + fine[2 * i + 1]
            coarse[i] = value * 0.25
        for _ in range(2):
            for i in range(1, half - 1):
                coarse[i] = (coarse[i - 1] + coarse[i + 1]) * 0.5
        for i in range(1, half - 2):
            fine[2 * i] = fine[2 * i] + coarse[i]
            fine[2 * i + 1] = fine[2 * i + 1] \
                + (coarse[i] + coarse[i + 1]) * 0.5
    total = 0.0
    for value in fine:
        total = total + value
    return total


def _mgrid_check(program: Program, result: GoldenResult, scale: int) -> None:
    base = program.symbol_address("results")
    _expect_double(result, base, _mgrid_golden(scale), "multigrid sum")


register(Workload(
    name="mgrid",
    kind="fp",
    spec_analogue="107.mgrid",
    description="Two-level multigrid V-cycle: Gauss-Seidel smoothing,"
                " restriction, and prolongation on 1D grids.",
    build_source=_mgrid_source,
    check=_mgrid_check,
    default_scale=2,
))


# =====================================================================
# applu: dense LU factorisation and triangular solves
# =====================================================================

_APPLU_N = 10


def _applu_matrix(scale: int) -> List[float]:
    n = _APPLU_N
    values = []
    for i in range(n):
        for j in range(n):
            if i == j:
                values.append(8.0 + 0.5 * (i % 3))
            else:
                values.append(0.25 * ((i * n + j + scale) % 7) - 0.75)
    return values


def _applu_rhs(scale: int) -> List[float]:
    return [1.0 + 0.125 * ((i + scale) % 5) for i in range(_APPLU_N)]


def _applu_source(scale: int) -> str:
    n = _APPLU_N
    repeats = 2 * scale
    return f"""
.data
{doubles_directive("matrix0", _applu_matrix(scale))}
{doubles_directive("rhs0", _applu_rhs(scale))}
matrix: .space {8 * n * n}
vec: .space {8 * n}
results: .space 8
.text
main:
    li   r20, {repeats}
repeat:
    beq  r20, r0, done
    # copy pristine matrix and rhs (factorisation is in place)
    la   r2, matrix0
    la   r3, matrix
    li   r4, {n * n}
copym:
    ld   f1, 0(r2)
    sd   f1, 0(r3)
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    bne  r4, r0, copym
    la   r2, rhs0
    la   r3, vec
    li   r4, {n}
copyv:
    ld   f1, 0(r2)
    sd   f1, 0(r3)
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    bne  r4, r0, copyv
    # --- LU factorisation (Doolittle, no pivoting) ---
    la   r2, matrix
    li   r5, 0              # k
kloop:
    li   r6, {n}
    addi r7, r5, 1          # i = k+1
    # pivot address = matrix + (k*n + k)*8
    mult r8, r5, r6
    add  r8, r8, r5
    slli r8, r8, 3
    add  r8, r8, r2
    ld   f2, 0(r8)          # pivot
iloop:
    beq  r7, r6, knext
    # a[i][k] /= pivot
    mult r9, r7, r6
    add  r9, r9, r5
    slli r9, r9, 3
    add  r9, r9, r2
    ld   f3, 0(r9)
    fdiv f3, f3, f2
    sd   f3, 0(r9)
    # row update: a[i][j] -= a[i][k]*a[k][j] for j=k+1..n-1
    addi r10, r5, 1         # j
jloop:
    beq  r10, r6, inext
    mult r11, r7, r6
    add  r11, r11, r10
    slli r11, r11, 3
    add  r11, r11, r2
    ld   f4, 0(r11)
    mult r12, r5, r6
    add  r12, r12, r10
    slli r12, r12, 3
    add  r12, r12, r2
    ld   f5, 0(r12)
    fmul f6, f3, f5
    fsub f4, f4, f6
    sd   f4, 0(r11)
    addi r10, r10, 1
    j    jloop
inext:
    addi r7, r7, 1
    j    iloop
knext:
    addi r5, r5, 1
    li   r13, {n - 1}
    bne  r5, r13, kloop
    # --- forward solve Ly = b (unit diagonal) ---
    la   r3, vec
    li   r5, 1              # i
fwd:
    li   r6, {n}
    beq  r5, r6, back_init
    slli r7, r5, 3
    add  r7, r7, r3
    ld   f2, 0(r7)          # b[i]
    li   r8, 0              # j
fwdj:
    beq  r8, r5, fwdstore
    mult r9, r5, r6
    add  r9, r9, r8
    slli r9, r9, 3
    add  r9, r9, r2
    ld   f3, 0(r9)          # L[i][j]
    slli r10, r8, 3
    add  r10, r10, r3
    ld   f4, 0(r10)         # y[j]
    fmul f5, f3, f4
    fsub f2, f2, f5
    addi r8, r8, 1
    j    fwdj
fwdstore:
    sd   f2, 0(r7)
    addi r5, r5, 1
    j    fwd
back_init:
    # --- back substitution Ux = y ---
    li   r5, {n - 1}        # i
back:
    li   r6, {n}
    slli r7, r5, 3
    add  r7, r7, r3
    ld   f2, 0(r7)          # y[i]
    addi r8, r5, 1          # j
backj:
    beq  r8, r6, backdiv
    mult r9, r5, r6
    add  r9, r9, r8
    slli r9, r9, 3
    add  r9, r9, r2
    ld   f3, 0(r9)          # U[i][j]
    slli r10, r8, 3
    add  r10, r10, r3
    ld   f4, 0(r10)         # x[j]
    fmul f5, f3, f4
    fsub f2, f2, f5
    addi r8, r8, 1
    j    backj
backdiv:
    mult r9, r5, r6
    add  r9, r9, r5
    slli r9, r9, 3
    add  r9, r9, r2
    ld   f3, 0(r9)          # U[i][i]
    fdiv f2, f2, f3
    sd   f2, 0(r7)
    addi r5, r5, -1
    bge  r5, r0, back
    # accumulate sum of solution into f20
    la   r3, vec
    li   r5, {n}
accum:
    beq  r5, r0, rnext
    ld   f1, 0(r3)
    fadd f20, f20, f1
    addi r3, r3, 8
    addi r5, r5, -1
    j    accum
rnext:
    addi r20, r20, -1
    j    repeat
done:
    la   r15, results
    sd   f20, 0(r15)
    halt
"""


def _applu_golden(scale: int) -> float:
    n = _APPLU_N
    total = 0.0
    for _ in range(2 * scale):
        a = [list(_applu_matrix(scale)[i * n:(i + 1) * n]) for i in range(n)]
        b = list(_applu_rhs(scale))
        for k in range(n - 1):
            pivot = a[k][k]
            for i in range(k + 1, n):
                a[i][k] = a[i][k] / pivot
                factor = a[i][k]
                for j in range(k + 1, n):
                    a[i][j] = a[i][j] - factor * a[k][j]
        for i in range(1, n):
            acc = b[i]
            for j in range(i):
                acc = acc - a[i][j] * b[j]
            b[i] = acc
        for i in range(n - 1, -1, -1):
            acc = b[i]
            for j in range(i + 1, n):
                acc = acc - a[i][j] * b[j]
            b[i] = acc / a[i][i]
        for value in b:
            total = total + value
    return total


def _applu_check(program: Program, result: GoldenResult, scale: int) -> None:
    base = program.symbol_address("results")
    _expect_double(result, base, _applu_golden(scale), "LU solution sum")


register(Workload(
    name="applu",
    kind="fp",
    spec_analogue="110.applu",
    description="Dense LU factorisation with forward/back substitution"
                " (divide and multiply-subtract heavy).",
    build_source=_applu_source,
    check=_applu_check,
    default_scale=2,
))


# =====================================================================
# hydro2d: flux computation with limiter (fmin/fmax/fabs)
# =====================================================================

_HYDRO_N = 48


def _hydro_init() -> List[float]:
    return [2.0 + (0.5 if 16 <= i < 32 else 0.0) + 0.0625 * (i % 4)
            for i in range(_HYDRO_N)]


def _hydro_source(scale: int) -> str:
    n = _HYDRO_N
    steps = 8 * scale
    return f"""
.data
{doubles_directive("u", _hydro_init())}
flux: .space {8 * n}
consts: .double 0.5, 0.25, 0.0
results: .space 8
.text
main:
    la   r2, u
    la   r3, flux
    la   r4, consts
    ld   f10, 0(r4)     # 0.5
    ld   f11, 8(r4)     # lam = 0.25
    ld   f12, 16(r4)    # 0.0
    li   r20, {steps}
step:
    beq  r20, r0, sumup
    # flux[i] = 0.5*(u[i]+u[i+1]) - 0.5*lam*limited(u[i+1]-u[i])
    li   r5, 0
floop:
    slli r6, r5, 3
    add  r7, r2, r6
    ld   f1, 0(r7)      # u[i]
    ld   f2, 8(r7)      # u[i+1]
    fadd f3, f1, f2
    fmul f3, f3, f10
    fsub f4, f2, f1     # du
    fabs f5, f4
    fmin f5, f5, f10    # |du| clamped to 0.5
    fmax f6, f4, f12    # positive part
    fmin f6, f6, f5     # limited slope
    fadd f7, f1, f2
    fdiv f6, f6, f7     # scale by local density sum
    fmul f6, f6, f11
    fmul f6, f6, f10
    fsub f3, f3, f6
    add  r8, r3, r6
    sd   f3, 0(r8)
    addi r5, r5, 1
    li   r9, {n - 1}
    bne  r5, r9, floop
    # u[i] -= lam*(flux[i] - flux[i-1]) for interior
    li   r5, 1
uloop:
    slli r6, r5, 3
    add  r7, r3, r6
    ld   f1, 0(r7)      # flux[i]
    ld   f2, -8(r7)     # flux[i-1]
    fsub f3, f1, f2
    fmul f3, f3, f11
    add  r8, r2, r6
    ld   f4, 0(r8)
    fsub f4, f4, f3
    sd   f4, 0(r8)
    addi r5, r5, 1
    li   r9, {n - 1}
    bne  r5, r9, uloop
    addi r20, r20, -1
    j    step
sumup:
    li   r13, {n}
    add  r14, r2, r0
sumloop:
    beq  r13, r0, done
    ld   f1, 0(r14)
    fadd f20, f20, f1
    addi r14, r14, 8
    addi r13, r13, -1
    j    sumloop
done:
    la   r15, results
    sd   f20, 0(r15)
    halt
"""


def _hydro_golden(scale: int) -> float:
    n = _HYDRO_N
    u = _hydro_init()
    flux = [0.0] * n
    for _ in range(8 * scale):
        for i in range(n - 1):
            average = (u[i] + u[i + 1]) * 0.5
            du = u[i + 1] - u[i]
            magnitude = min(abs(du), 0.5)
            limited = min(max(du, 0.0), magnitude)
            limited = limited / (u[i] + u[i + 1])
            flux[i] = average - limited * 0.25 * 0.5
        for i in range(1, n - 1):
            u[i] = u[i] - (flux[i] - flux[i - 1]) * 0.25
    total = 0.0
    for value in u:
        total = total + value
    return total


def _hydro_check(program: Program, result: GoldenResult, scale: int) -> None:
    base = program.symbol_address("results")
    _expect_double(result, base, _hydro_golden(scale), "hydro field sum")


register(Workload(
    name="hydro2d",
    kind="fp",
    spec_analogue="104.hydro2d",
    description="Flux-limited advection sweep (fmin/fmax/fabs limiter,"
                " multiply/subtract updates).",
    build_source=_hydro_source,
    check=_hydro_check,
    default_scale=2,
))
