"""Integer kernels, part 2: perl, cc1, and m88ksim analogues."""

from __future__ import annotations

from typing import List, Tuple

from ...cpu.golden import GoldenResult
from ...isa import encoding
from ...isa.program import Program
from ..base import Workload, register
from .common import lcg_sequence, words_directive

_MASK = encoding.INT_MASK


# =====================================================================
# perl: string hashing into buckets (djb2-style, multiply heavy)
# =====================================================================

_PERL_STRLEN = 12
_PERL_BUCKETS = 64


def _perl_strings(scale: int) -> List[List[int]]:
    count = 24 * scale
    flat = lcg_sequence(seed=0x9E71 + scale, count=count * _PERL_STRLEN,
                        modulo=96)
    return [flat[i * _PERL_STRLEN:(i + 1) * _PERL_STRLEN]
            for i in range(count)]


def _perl_source(scale: int) -> str:
    strings = _perl_strings(scale)
    flat = [char + 32 for string in strings for char in string]
    return f"""
.data
{words_directive("chars", flat)}
buckets: .space {4 * _PERL_BUCKETS}
results: .space 8
.text
main:
    la   r2, chars
    li   r3, {len(strings)}
    li   r14, 0             # xor checksum of hashes
    la   r15, buckets
strloop:
    beq  r3, r0, done
    li   r4, 5381           # djb2 seed
    li   r5, {_PERL_STRLEN}
charloop:
    beq  r5, r0, hashed
    lw   r6, 0(r2)
    addi r2, r2, 4
    li   r7, 33
    mult r4, r4, r7
    add  r4, r4, r6
    addi r5, r5, -1
    j    charloop
hashed:
    xor  r14, r14, r4
    andi r8, r4, {_PERL_BUCKETS - 1}
    slli r8, r8, 2
    add  r8, r8, r15
    lw   r9, 0(r8)
    addi r9, r9, 1
    sw   r9, 0(r8)
    addi r3, r3, -1
    j    strloop
done:
    la   r10, results
    sw   r14, 0(r10)
    halt
"""


def _perl_golden(scale: int) -> Tuple[int, List[int]]:
    strings = _perl_strings(scale)
    checksum = 0
    buckets = [0] * _PERL_BUCKETS
    for string in strings:
        value = 5381
        for char in string:
            value = (value * 33 + char + 32) & _MASK
        checksum ^= value
        buckets[value & (_PERL_BUCKETS - 1)] += 1
    return checksum, buckets


def _perl_check(program: Program, result: GoldenResult, scale: int) -> None:
    checksum, buckets = _perl_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == checksum, "hash checksum mismatch"
    bucket_base = program.symbol_address("buckets")
    for index, expected in enumerate(buckets):
        actual = result.memory.load_word(bucket_base + 4 * index)
        assert actual == expected, f"bucket {index}: {actual} != {expected}"


register(Workload(
    name="perl",
    kind="int",
    spec_analogue="134.perl",
    description="String hashing with bucket histogram (djb2, hash-table"
                " style memory traffic).",
    build_source=_perl_source,
    check=_perl_check,
    default_scale=2,
))


# =====================================================================
# cc1: stack-machine expression evaluator (branchy dispatch)
# =====================================================================

_OP_PUSH, _OP_ADD, _OP_SUB, _OP_MUL, _OP_DUP = 0, 1, 2, 3, 4


def _cc1_bytecode(scale: int) -> List[Tuple[int, int]]:
    """A random well-formed expression program (op, operand) pairs."""
    count = 160 * scale
    raw = lcg_sequence(seed=0xCC1 + scale, count=count * 2, modulo=997)
    ops: List[Tuple[int, int]] = []
    depth = 0
    for i in range(count):
        choice = raw[2 * i] % 5
        operand = raw[2 * i + 1] - 498  # signed-ish constants
        if depth < 2 or choice == 0:
            ops.append((_OP_PUSH, operand))
            depth += 1
        elif choice == 4 and depth < 12:
            ops.append((_OP_DUP, 0))
            depth += 1
        else:
            ops.append((choice % 3 + 1, 0))  # add/sub/mul
            depth -= 1
    while depth > 1:
        ops.append((_OP_ADD, 0))
        depth -= 1
    return ops


def _cc1_source(scale: int) -> str:
    bytecode = _cc1_bytecode(scale)
    flat = [word for op, operand in bytecode for word in (op, operand)]
    return f"""
.data
{words_directive("bytecode", flat)}
stack: .space 512
results: .space 8
.text
main:
    la   r2, bytecode
    li   r3, {len(bytecode)}
    la   r4, stack          # stack pointer (grows upward)
dispatch:
    beq  r3, r0, done
    lw   r5, 0(r2)          # opcode
    lw   r6, 4(r2)          # operand
    addi r2, r2, 8
    addi r3, r3, -1
    beq  r5, r0, do_push
    li   r7, 1
    beq  r5, r7, do_add
    li   r7, 2
    beq  r5, r7, do_sub
    li   r7, 3
    beq  r5, r7, do_mul
    # dup
    lw   r8, -4(r4)
    sw   r8, 0(r4)
    addi r4, r4, 4
    j    dispatch
do_push:
    sw   r6, 0(r4)
    addi r4, r4, 4
    j    dispatch
do_add:
    lw   r8, -4(r4)
    lw   r9, -8(r4)
    addi r4, r4, -4
    add  r10, r9, r8
    sw   r10, -4(r4)
    j    dispatch
do_sub:
    lw   r8, -4(r4)
    lw   r9, -8(r4)
    addi r4, r4, -4
    sub  r10, r9, r8
    sw   r10, -4(r4)
    j    dispatch
do_mul:
    lw   r8, -4(r4)
    lw   r9, -8(r4)
    addi r4, r4, -4
    mult r10, r9, r8
    sw   r10, -4(r4)
    j    dispatch
done:
    lw   r11, -4(r4)
    la   r12, results
    sw   r11, 0(r12)
    halt
"""


def _cc1_golden(scale: int) -> int:
    stack: List[int] = []
    for op, operand in _cc1_bytecode(scale):
        if op == _OP_PUSH:
            stack.append(operand & _MASK)
        elif op == _OP_DUP:
            stack.append(stack[-1])
        else:
            b = stack.pop()
            a = stack.pop()
            if op == _OP_ADD:
                stack.append((a + b) & _MASK)
            elif op == _OP_SUB:
                stack.append((a - b) & _MASK)
            else:
                stack.append((a * b) & _MASK)
    assert len(stack) == 1
    return stack[0]


def _cc1_check(program: Program, result: GoldenResult, scale: int) -> None:
    expected = _cc1_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == expected, \
        "expression result mismatch"


register(Workload(
    name="cc1",
    kind="int",
    spec_analogue="126.gcc",
    description="Stack-machine expression evaluator with branchy opcode"
                " dispatch, like a compiler's constant folder.",
    build_source=_cc1_source,
    check=_cc1_check,
    default_scale=2,
))


# =====================================================================
# m88ksim: interpreter for a tiny guest register machine
# =====================================================================

# guest instruction word: op(4) | rd(3) | rs1(3) | rs2(3) | imm(8)
_G_ADD, _G_SUB, _G_XOR, _G_AND, _G_LI, _G_SHL = range(6)


def _m88k_program(scale: int) -> List[int]:
    count = 200 * scale
    raw = lcg_sequence(seed=0x88 + scale, count=count * 5, modulo=256)
    words: List[int] = []
    for i in range(count):
        op = raw[5 * i] % 6
        rd = raw[5 * i + 1] % 8
        rs1 = raw[5 * i + 2] % 8
        rs2 = raw[5 * i + 3] % 8
        imm = raw[5 * i + 4]
        words.append((op << 17) | (rd << 14) | (rs1 << 11) | (rs2 << 8) | imm)
    return words


def _m88k_source(scale: int) -> str:
    guest = _m88k_program(scale)
    return f"""
.data
{words_directive("guest", guest)}
gregs: .space 32
results: .space 8
.text
main:
    la   r2, guest
    li   r3, {len(guest)}
    la   r4, gregs
interp:
    beq  r3, r0, done
    lw   r5, 0(r2)          # guest instruction
    addi r2, r2, 4
    addi r3, r3, -1
    srli r6, r5, 17         # op
    srli r7, r5, 14
    andi r7, r7, 7          # rd
    srli r8, r5, 11
    andi r8, r8, 7          # rs1
    srli r9, r5, 8
    andi r9, r9, 7          # rs2
    andi r10, r5, 255       # imm
    slli r11, r8, 2
    add  r11, r11, r4
    lw   r12, 0(r11)        # guest rs1 value
    slli r11, r9, 2
    add  r11, r11, r4
    lw   r13, 0(r11)        # guest rs2 value
    beq  r6, r0, g_add
    li   r14, 1
    beq  r6, r14, g_sub
    li   r14, 2
    beq  r6, r14, g_xor
    li   r14, 3
    beq  r6, r14, g_and
    li   r14, 4
    beq  r6, r14, g_li
    # shl: rd = rs1 << (imm & 7)
    andi r10, r10, 7
    sll  r15, r12, r10
    j    writeback
g_add:
    add  r15, r12, r13
    j    writeback
g_sub:
    sub  r15, r12, r13
    j    writeback
g_xor:
    xor  r15, r12, r13
    j    writeback
g_and:
    and  r15, r12, r13
    j    writeback
g_li:
    addi r15, r10, -128     # guest constants are signed
writeback:
    slli r11, r7, 2
    add  r11, r11, r4
    sw   r15, 0(r11)
    j    interp
done:
    # checksum all guest registers
    li   r16, 8
    li   r17, 0
    add  r18, r4, r0
ckloop:
    beq  r16, r0, finish
    lw   r19, 0(r18)
    xor  r17, r17, r19
    slli r20, r17, 1
    srli r21, r17, 31
    or   r17, r20, r21      # rotate left 1
    addi r18, r18, 4
    addi r16, r16, -1
    j    ckloop
finish:
    la   r22, results
    sw   r17, 0(r22)
    halt
"""


def _m88k_golden(scale: int) -> int:
    regs = [0] * 8
    for word in _m88k_program(scale):
        op = word >> 17
        rd = (word >> 14) & 7
        rs1 = (word >> 11) & 7
        rs2 = (word >> 8) & 7
        imm = word & 255
        a, b = regs[rs1], regs[rs2]
        if op == _G_ADD:
            regs[rd] = (a + b) & _MASK
        elif op == _G_SUB:
            regs[rd] = (a - b) & _MASK
        elif op == _G_XOR:
            regs[rd] = a ^ b
        elif op == _G_AND:
            regs[rd] = a & b
        elif op == _G_LI:
            regs[rd] = (imm - 128) & _MASK
        else:
            regs[rd] = (a << (imm & 7)) & _MASK
    checksum = 0
    for value in regs:
        checksum ^= value
        checksum = ((checksum << 1) | (checksum >> 31)) & _MASK
    return checksum


def _m88k_check(program: Program, result: GoldenResult, scale: int) -> None:
    expected = _m88k_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == expected, \
        "guest register checksum mismatch"


register(Workload(
    name="m88ksim",
    kind="int",
    spec_analogue="124.m88ksim",
    description="Fetch/decode/execute interpreter for a small guest"
                " register machine (shift/mask decode, branchy dispatch).",
    build_source=_m88k_source,
    check=_m88k_check,
    default_scale=2,
))
