"""Integer kernels, part 1: compress, li, ijpeg, and go analogues.

Each kernel mirrors the algorithmic domain of one SPEC 95 integer
benchmark from the paper's suite, and each checker replicates the
computation in Python (with the same 32-bit wrap-around semantics) so
the kernels double as end-to-end simulator tests.
"""

from __future__ import annotations

from typing import List, Tuple

from ...cpu.golden import GoldenResult
from ...isa import encoding
from ...isa.program import Program
from ..base import Workload, register
from .common import lcg_sequence, words_directive


def _wrap_mul(a: int, b: int) -> int:
    return (a * b) & encoding.INT_MASK


def _signed(bits: int) -> int:
    return encoding.to_signed(bits & encoding.INT_MASK)


def _div_trunc(a: int, b: int) -> int:
    """Division truncating toward zero, matching the ISA's ``div``."""
    if b == 0:
        return _signed(encoding.INT_MASK)
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


# =====================================================================
# compress: run-length encoding with a multiplicative checksum
# =====================================================================

def _compress_data(scale: int) -> List[int]:
    # few distinct symbols so runs actually occur; the alphabet is signed
    # (delta-encoded pixel/text data), as in real compressors
    return [value - 3
            for value in lcg_sequence(seed=0x5EED + scale,
                                      count=256 * scale, modulo=6)]


def _compress_source(scale: int) -> str:
    data = _compress_data(scale)
    count = len(data)
    return f"""
.data
{words_directive("input", data)}
output: .space {8 * count}
results: .space 16
.text
main:
    la   r2, input
    li   r3, {count}
    la   r4, output
    li   r5, 0          # checksum
    li   r10, 0         # emitted pairs
    lw   r6, 0(r2)      # current run value
    addi r2, r2, 4
    addi r3, r3, -1
    li   r7, 1          # run length
loop:
    beq  r3, r0, flush
    lw   r8, 0(r2)
    addi r2, r2, 4
    addi r3, r3, -1
    bne  r8, r6, emit
    addi r7, r7, 1
    j    loop
emit:
    sw   r6, 0(r4)
    sw   r7, 4(r4)
    addi r4, r4, 8
    addi r10, r10, 1
    li   r9, 31
    mult r5, r5, r9
    mult r11, r6, r7
    add  r5, r5, r11
    add  r6, r8, r0
    li   r7, 1
    j    loop
flush:
    sw   r6, 0(r4)
    sw   r7, 4(r4)
    addi r10, r10, 1
    li   r9, 31
    mult r5, r5, r9
    mult r11, r6, r7
    add  r5, r5, r11
    la   r12, results
    sw   r5, 0(r12)
    sw   r10, 4(r12)
    halt
"""


def _compress_golden(scale: int) -> Tuple[int, int, List[Tuple[int, int]]]:
    data = _compress_data(scale)
    pairs: List[Tuple[int, int]] = []
    current, run = data[0], 1
    for value in data[1:]:
        if value == current:
            run += 1
        else:
            pairs.append((current, run))
            current, run = value, 1
    pairs.append((current, run))
    checksum = 0
    for value, run in pairs:
        checksum = (_wrap_mul(checksum, 31) + _wrap_mul(value, run)) \
            & encoding.INT_MASK
    return checksum, len(pairs), pairs


def _compress_check(program: Program, result: GoldenResult, scale: int) -> None:
    checksum, pairs_count, pairs = _compress_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == checksum, "checksum mismatch"
    assert result.memory.load_word(base + 4) == pairs_count, "pair count mismatch"
    out = program.symbol_address("output")
    for index, (value, run) in enumerate(pairs[:8]):
        assert result.memory.load_word(out + 8 * index) \
            == encoding.wrap_int(value)
        assert result.memory.load_word(out + 8 * index + 4) == run


register(Workload(
    name="compress",
    kind="int",
    spec_analogue="129.compress",
    description="Run-length compression of a low-entropy symbol stream"
                " with a multiplicative checksum.",
    build_source=_compress_source,
    check=_compress_check,
    default_scale=2,
))


# =====================================================================
# li: linked-list construction, in-place reversal, traversal
# =====================================================================

def _li_count(scale: int) -> int:
    return 96 * scale


def _li_source(scale: int) -> str:
    count = _li_count(scale)
    return f"""
.data
heap: .space {8 * count}
results: .space 16
.text
main:
    la   r2, heap
    li   r3, {count}
    li   r4, 0          # i
    addi r8, r3, -1     # last index
build:
    beq  r4, r3, built
    mult r5, r4, r4     # value = ((i*i) & 255) - 128, signed
    andi r5, r5, 255
    addi r5, r5, -128
    sw   r5, 0(r2)
    addi r6, r2, 8      # tentative next pointer
    bne  r4, r8, link
    li   r6, 0          # last cell: null next
link:
    sw   r6, 4(r2)
    addi r2, r2, 8
    addi r4, r4, 1
    j    build
built:
    la   r2, heap       # head
    li   r9, 0          # prev
reverse:
    beq  r2, r0, reversed
    lw   r10, 4(r2)
    sw   r9, 4(r2)
    add  r9, r2, r0
    add  r2, r10, r0
    j    reverse
reversed:
    li   r11, 0         # sum
    add  r2, r9, r0
sumloop:
    beq  r2, r0, done
    lw   r12, 0(r2)
    add  r11, r11, r12
    lw   r2, 4(r2)
    j    sumloop
done:
    la   r13, results
    sw   r11, 0(r13)
    sw   r9, 4(r13)     # head pointer after reversal
    halt
"""


def _li_check(program: Program, result: GoldenResult, scale: int) -> None:
    count = _li_count(scale)
    expected_sum = sum(((i * i) & 255) - 128
                       for i in range(count)) & encoding.INT_MASK
    base = program.symbol_address("results")
    heap = program.symbol_address("heap")
    assert result.memory.load_word(base) == expected_sum, "list sum mismatch"
    expected_head = heap + 8 * (count - 1)
    assert result.memory.load_word(base + 4) == expected_head, \
        "reversed head pointer mismatch"


register(Workload(
    name="li",
    kind="int",
    spec_analogue="130.li",
    description="Cons-cell list build, in-place reversal, and pointer-"
                "chasing traversal.",
    build_source=_li_source,
    check=_li_check,
    default_scale=2,
))


# =====================================================================
# ijpeg: blocked integer transform with quantisation
# =====================================================================

_DCT_COEF = [
    [32, 32, 32, 32, 32, 32, 32, 32],
    [44, 38, 25, 9, -9, -25, -38, -44],
    [42, 17, -17, -42, -42, -17, 17, 42],
    [38, -9, -44, -25, 25, 44, 9, -38],
    [32, -32, -32, 32, 32, -32, -32, 32],
    [25, -44, 9, 38, -38, -9, 44, -25],
    [17, -42, 42, -17, -17, 42, -42, 17],
    [9, -25, 38, -44, 44, -38, 25, -9],
]
_QTABLE = [16, 11, 10, 16, 24, 40, 51, 61]


def _ijpeg_blocks(scale: int) -> List[int]:
    return lcg_sequence(seed=0x1A6E + scale, count=8 * 24 * scale, modulo=256)


def _ijpeg_source(scale: int) -> str:
    samples = _ijpeg_blocks(scale)
    nblocks = len(samples) // 8
    flat_coef = [value for row in _DCT_COEF for value in row]
    return f"""
.data
{words_directive("blocks", samples)}
{words_directive("coef", flat_coef)}
{words_directive("qtable", _QTABLE)}
results: .space 8
.text
main:
    la   r2, blocks
    li   r3, {nblocks}
    li   r14, 0         # checksum
    li   r15, 8
blockloop:
    beq  r3, r0, done
    li   r4, 0          # u
uloop:
    beq  r4, r15, blocknext
    li   r6, 0          # acc
    li   r7, 0          # x
    slli r8, r4, 5      # coef row byte offset
    la   r9, coef
    add  r8, r8, r9
xloop:
    beq  r7, r15, xdone
    slli r10, r7, 2
    add  r11, r2, r10
    lw   r11, 0(r11)
    addi r11, r11, -128     # JPEG level shift: samples become signed
    add  r12, r8, r10
    lw   r12, 0(r12)
    mult r13, r11, r12
    add  r6, r6, r13
    addi r7, r7, 1
    j    xloop
xdone:
    srai r6, r6, 5
    la   r10, qtable
    slli r11, r4, 2
    add  r10, r10, r11
    lw   r10, 0(r10)
    div  r12, r6, r10
    xor  r13, r12, r4
    add  r14, r14, r13
    addi r4, r4, 1
    j    uloop
blocknext:
    addi r2, r2, 32
    addi r3, r3, -1
    j    blockloop
done:
    la   r5, results
    sw   r14, 0(r5)
    halt
"""


def _ijpeg_golden(scale: int) -> int:
    samples = _ijpeg_blocks(scale)
    checksum = 0
    for start in range(0, len(samples), 8):
        block = samples[start:start + 8]
        for u in range(8):
            acc = 0
            for x in range(8):
                acc = (acc + _wrap_mul((block[x] - 128) & encoding.INT_MASK,
                                       _DCT_COEF[u][x] & encoding.INT_MASK)) \
                    & encoding.INT_MASK
            acc = _signed(acc) >> 5
            q = _div_trunc(acc, _QTABLE[u])
            checksum = (checksum + ((q & encoding.INT_MASK) ^ u)) \
                & encoding.INT_MASK
    return checksum


def _ijpeg_check(program: Program, result: GoldenResult, scale: int) -> None:
    expected = _ijpeg_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == expected, "DCT checksum mismatch"


register(Workload(
    name="ijpeg",
    kind="int",
    spec_analogue="132.ijpeg",
    description="Blocked 8-point integer transform with quantisation"
                " (multiply/shift/divide heavy).",
    build_source=_ijpeg_source,
    check=_ijpeg_check,
    default_scale=2,
))


# =====================================================================
# go: board-scan position evaluation
# =====================================================================

_GO_N = 9  # playing area; board is (N+2)^2 with sentinel border 3


def _go_board(scale: int) -> List[int]:
    side = _GO_N + 2
    stones = lcg_sequence(seed=0x60 + scale, count=_GO_N * _GO_N, modulo=3)
    board = [3] * (side * side)
    index = 0
    for row in range(1, _GO_N + 1):
        for col in range(1, _GO_N + 1):
            board[row * side + col] = stones[index]
            index += 1
    return board


def _go_source(scale: int) -> str:
    board = _go_board(scale)
    side = _GO_N + 2
    passes = 4 * scale
    return f"""
.data
{words_directive("board", board)}
results: .space 8
.text
main:
    li   r20, 0         # player 1 score
    li   r21, 0         # player 2 score
    li   r22, {passes}  # evaluation passes
    li   r23, {side}
pass_loop:
    beq  r22, r0, done
    la   r2, board
    li   r3, 1          # row
rowloop:
    beq  r3, r23, pass_next   # row == side-1 boundary handled below
    li   r4, 1          # col
colloop:
    mult r6, r3, r23
    add  r6, r6, r4
    slli r6, r6, 2
    add  r6, r6, r2
    lw   r7, 0(r6)      # stone
    beq  r7, r0, cell_next
    li   r8, 3
    beq  r7, r8, cell_next
    li   r10, 0         # cell contribution
    sub  r15, r8, r7    # enemy stone id
    lw   r9, -4(r6)     # west
    seq  r11, r9, r0
    add  r10, r10, r11
    seq  r11, r9, r7
    slli r11, r11, 1
    add  r10, r10, r11
    seq  r11, r9, r15
    sub  r10, r10, r11
    lw   r9, 4(r6)      # east
    seq  r11, r9, r0
    add  r10, r10, r11
    seq  r11, r9, r7
    slli r11, r11, 1
    add  r10, r10, r11
    seq  r11, r9, r15
    sub  r10, r10, r11
    lw   r9, {-4 * side}(r6)   # north
    seq  r11, r9, r0
    add  r10, r10, r11
    seq  r11, r9, r7
    slli r11, r11, 1
    add  r10, r10, r11
    seq  r11, r9, r15
    sub  r10, r10, r11
    lw   r9, {4 * side}(r6)    # south
    seq  r11, r9, r0
    add  r10, r10, r11
    seq  r11, r9, r7
    slli r11, r11, 1
    add  r10, r10, r11
    seq  r11, r9, r15
    sub  r10, r10, r11
    li   r8, 1
    bne  r7, r8, credit_p2
    add  r20, r20, r10
    j    cell_next
credit_p2:
    add  r21, r21, r10
cell_next:
    addi r4, r4, 1
    li   r8, {_GO_N + 1}
    bne  r4, r8, colloop
    addi r3, r3, 1
    li   r8, {_GO_N + 1}
    bne  r3, r8, rowloop
pass_next:
    addi r22, r22, -1
    j    pass_loop
done:
    la   r5, results
    sw   r20, 0(r5)
    sw   r21, 4(r5)
    halt
"""


def _go_golden(scale: int) -> Tuple[int, int]:
    board = _go_board(scale)
    side = _GO_N + 2
    scores = {1: 0, 2: 0}
    for row in range(1, _GO_N + 1):
        for col in range(1, _GO_N + 1):
            stone = board[row * side + col]
            if stone in (0, 3):
                continue
            contribution = 0
            for offset in (-1, 1, -side, side):
                neighbour = board[row * side + col + offset]
                contribution += 1 if neighbour == 0 else 0
                contribution += 2 if neighbour == stone else 0
                contribution -= 1 if neighbour == 3 - stone else 0
            scores[stone] += contribution
    passes = 4 * scale
    return (scores[1] * passes) & encoding.INT_MASK, \
           (scores[2] * passes) & encoding.INT_MASK


def _go_check(program: Program, result: GoldenResult, scale: int) -> None:
    expected_p1, expected_p2 = _go_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == expected_p1, "player 1 score"
    assert result.memory.load_word(base + 4) == expected_p2, "player 2 score"


register(Workload(
    name="go",
    kind="int",
    spec_analogue="099.go",
    description="Board-scan position evaluation with neighbour counting"
                " (branchy, comparison heavy).",
    build_source=_go_source,
    check=_go_check,
    default_scale=2,
))
