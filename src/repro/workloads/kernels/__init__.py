"""Kernel modules; importing this package registers every workload."""

from . import (extra_kernels, fp_kernels1, fp_kernels2, int_kernels1,
               int_kernels2)  # noqa: F401

__all__ = ["extra_kernels", "fp_kernels1", "fp_kernels2", "int_kernels1",
           "int_kernels2"]
