"""Extra kernels: vortex (OODB) and tomcatv (mesh generation) analogues.

SPEC 95 also contained 147.vortex (object database) and 101.tomcatv
(vectorised mesh generation); the paper's list omits them, but they
round out the suite's coverage of hash-probe memory behaviour and
coupled-grid floating point smoothing.
"""

from __future__ import annotations

from typing import List, Tuple

from ...cpu.golden import GoldenResult
from ...isa import encoding
from ...isa.program import Program
from ..base import Workload, register
from .common import doubles_directive, lcg_sequence, words_directive

_MASK = encoding.INT_MASK


# =====================================================================
# vortex: open-addressing hash table (insert / lookup mix)
# =====================================================================

_VORTEX_SLOTS = 128  # power of two; keys drawn from 1..96 so it never fills


def _vortex_ops(scale: int) -> List[Tuple[int, int]]:
    count = 150 * scale
    raw = lcg_sequence(seed=0x0DB + scale, count=count * 2, modulo=96 * 4)
    ops = []
    for i in range(count):
        kind = 0 if raw[2 * i] % 4 < 3 else 1  # 75% insert, 25% lookup
        key = 1 + raw[2 * i + 1] % 96
        ops.append((kind, key))
    return ops


def _vortex_source(scale: int) -> str:
    ops = _vortex_ops(scale)
    flat = [word for kind, key in ops for word in (kind, key)]
    return f"""
.data
table: .space {_VORTEX_SLOTS * 8}
{words_directive("ops", flat)}
results: .space 16
.text
main:
    la   r2, ops
    li   r3, {len(ops)}
    la   r4, table
    li   r20, 0         # probe counter
    li   r21, 0         # lookup-hit accumulator
oploop:
    beq  r3, r0, done
    lw   r5, 0(r2)      # kind
    lw   r6, 4(r2)      # key
    addi r2, r2, 8
    addi r3, r3, -1
    andi r7, r6, {_VORTEX_SLOTS - 1}   # slot index
probe:
    addi r20, r20, 1
    slli r8, r7, 3
    add  r8, r8, r4
    lw   r9, 0(r8)      # stored key
    beq  r9, r0, empty
    beq  r9, r6, found
    addi r7, r7, 1
    andi r7, r7, {_VORTEX_SLOTS - 1}
    j    probe
empty:
    bne  r5, r0, oploop      # lookup miss: next operation
    sw   r6, 0(r8)           # insert key
    mult r10, r6, r6
    addi r10, r10, 17        # value = key*key + 17
    sw   r10, 4(r8)
    j    oploop
found:
    bne  r5, r0, hit
    mult r10, r6, r6         # re-insert: refresh the value
    addi r10, r10, 17
    sw   r10, 4(r8)
    j    oploop
hit:
    lw   r10, 4(r8)
    add  r21, r21, r10
    j    oploop
done:
    la   r11, results
    sw   r20, 0(r11)
    sw   r21, 4(r11)
    halt
"""


def _vortex_golden(scale: int) -> Tuple[int, int]:
    probes = 0
    hits = 0
    slots = [0] * _VORTEX_SLOTS
    values = [0] * _VORTEX_SLOTS
    for kind, key in _vortex_ops(scale):
        index = key & (_VORTEX_SLOTS - 1)
        while True:
            probes += 1
            stored = slots[index]
            if stored == 0:
                if kind == 0:
                    slots[index] = key
                    values[index] = (key * key + 17) & _MASK
                break
            if stored == key:
                if kind == 0:
                    values[index] = (key * key + 17) & _MASK
                else:
                    hits = (hits + values[index]) & _MASK
                break
            index = (index + 1) & (_VORTEX_SLOTS - 1)
    return probes & _MASK, hits


def _vortex_check(program: Program, result: GoldenResult, scale: int) -> None:
    probes, hits = _vortex_golden(scale)
    base = program.symbol_address("results")
    assert result.memory.load_word(base) == probes, "probe count mismatch"
    assert result.memory.load_word(base + 4) == hits, "hit sum mismatch"


register(Workload(
    name="vortex",
    kind="int",
    spec_analogue="147.vortex",
    description="Open-addressing hash table with a 3:1 insert/lookup"
                " mix (database-style pointer probing).",
    build_source=_vortex_source,
    check=_vortex_check,
    default_scale=2,
))


# =====================================================================
# tomcatv: coupled-grid mesh smoothing with residual tracking
# =====================================================================

_TOM_N = 9


def _tomcatv_grid(which: int) -> List[float]:
    if which == 0:
        return [0.5 * j + 0.125 * (i % 3)
                for i in range(_TOM_N) for j in range(_TOM_N)]
    return [0.5 * i + 0.25 * (j % 2)
            for i in range(_TOM_N) for j in range(_TOM_N)]


def _tomcatv_source(scale: int) -> str:
    n = _TOM_N
    steps = 5 * scale
    return f"""
.data
{doubles_directive("xs", _tomcatv_grid(0))}
{doubles_directive("ys", _tomcatv_grid(1))}
consts: .double 0.25, 0.5
results: .space 24
.text
main:
    la   r2, xs
    la   r3, ys
    la   r4, consts
    ld   f10, 0(r4)     # 0.25
    ld   f11, 8(r4)     # omega = 0.5
    li   r20, {steps}
    li   r7, {n}
step:
    beq  r20, r0, reduce
    # f22 tracks the max residual of this sweep (reset each step)
    fsub f22, f22, f22
    li   r5, 1
iloop:
    li   r6, 1
jloop:
    mult r8, r5, r7
    add  r8, r8, r6
    slli r8, r8, 3
    # --- x smoothing ---
    add  r9, r2, r8
    ld   f1, 0(r9)
    ld   f2, -8(r9)
    ld   f3, 8(r9)
    ld   f4, {-8 * n}(r9)
    ld   f5, {8 * n}(r9)
    fadd f6, f2, f3
    fadd f6, f6, f4
    fadd f6, f6, f5
    fmul f6, f6, f10    # neighbour average
    fsub f7, f6, f1     # residual
    fabs f8, f7
    fmax f22, f22, f8
    fmul f7, f7, f11
    fadd f1, f1, f7
    sd   f1, 0(r9)
    # --- y smoothing ---
    add  r9, r3, r8
    ld   f1, 0(r9)
    ld   f2, -8(r9)
    ld   f3, 8(r9)
    ld   f4, {-8 * n}(r9)
    ld   f5, {8 * n}(r9)
    fadd f6, f2, f3
    fadd f6, f6, f4
    fadd f6, f6, f5
    fmul f6, f6, f10
    fsub f7, f6, f1
    fabs f8, f7
    fmax f22, f22, f8
    fmul f7, f7, f11
    fadd f1, f1, f7
    sd   f1, 0(r9)
    addi r6, r6, 1
    li   r11, {n - 1}
    bne  r6, r11, jloop
    addi r5, r5, 1
    bne  r5, r11, iloop
    addi r20, r20, -1
    j    step
reduce:
    li   r13, {n * n}
    add  r14, r2, r0
    add  r15, r3, r0
sumloop:
    beq  r13, r0, done
    ld   f1, 0(r14)
    fadd f20, f20, f1
    ld   f2, 0(r15)
    fadd f21, f21, f2
    addi r14, r14, 8
    addi r15, r15, 8
    addi r13, r13, -1
    j    sumloop
done:
    la   r16, results
    sd   f20, 0(r16)
    sd   f21, 8(r16)
    sd   f22, 16(r16)
    halt
"""


def _tomcatv_golden(scale: int) -> Tuple[float, float, float]:
    n = _TOM_N
    xs = _tomcatv_grid(0)
    ys = _tomcatv_grid(1)
    residual = 0.0
    for _ in range(5 * scale):
        residual = residual - residual  # matches fsub f22, f22, f22
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                for grid in (xs, ys):
                    centre = grid[i * n + j]
                    average = grid[i * n + j - 1] + grid[i * n + j + 1]
                    average = average + grid[(i - 1) * n + j]
                    average = average + grid[(i + 1) * n + j]
                    average = average * 0.25
                    delta = average - centre
                    residual = max(residual, abs(delta))
                    grid[i * n + j] = centre + delta * 0.5
    x_sum = 0.0
    for value in xs:
        x_sum = x_sum + value
    y_sum = 0.0
    for value in ys:
        y_sum = y_sum + value
    return x_sum, y_sum, residual


def _tomcatv_check(program: Program, result: GoldenResult,
                   scale: int) -> None:
    x_sum, y_sum, residual = _tomcatv_golden(scale)
    base = program.symbol_address("results")
    for offset, expected, what in ((0, x_sum, "x sum"), (8, y_sum, "y sum"),
                                   (16, residual, "residual")):
        actual = result.memory.load_double(base + offset)
        assert actual == encoding.float_to_bits(expected), what


register(Workload(
    name="tomcatv",
    kind="fp",
    spec_analogue="101.tomcatv",
    description="Coupled x/y mesh smoothing with max-residual tracking"
                " (fabs/fmax heavy).",
    build_source=_tomcatv_source,
    check=_tomcatv_check,
    default_scale=2,
))
