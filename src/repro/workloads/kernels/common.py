"""Shared helpers for workload kernels: deterministic data generation
and assembly data-section formatting."""

from __future__ import annotations

from typing import Iterable, List

from ...isa import encoding

_LCG_MULT = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 0x7FFFFFFF


def lcg_sequence(seed: int, count: int, modulo: int) -> List[int]:
    """Deterministic pseudo-random ints in ``[0, modulo)`` (POSIX LCG)."""
    values = []
    state = seed & encoding.INT_MASK
    for _ in range(count):
        state = (state * _LCG_MULT + _LCG_ADD) & encoding.INT_MASK
        values.append(((state >> 16) & _LCG_MASK) % modulo)
    return values


def words_directive(label: str, values: Iterable[int],
                    per_line: int = 12) -> str:
    """Format a ``.word`` data block with a label."""
    items = [str(encoding.to_signed(encoding.wrap_int(v))) for v in values]
    if not items:
        raise ValueError("empty data block")
    lines = [f"{label}: .word {', '.join(items[:per_line])}"]
    for start in range(per_line, len(items), per_line):
        lines.append(f"    .word {', '.join(items[start:start + per_line])}")
    return "\n".join(lines)


def doubles_directive(label: str, values: Iterable[float],
                      per_line: int = 6) -> str:
    """Format a ``.double`` data block with a label.

    Values are rendered with ``repr`` so they round-trip exactly.
    """
    items = [repr(float(v)) for v in values]
    if not items:
        raise ValueError("empty data block")
    lines = [f"{label}: .double {', '.join(items[:per_line])}"]
    for start in range(per_line, len(items), per_line):
        lines.append(f"    .double {', '.join(items[start:start + per_line])}")
    return "\n".join(lines)
