"""Floating point kernels, part 2: wave5, turb3d, apsi, fpppp analogues."""

from __future__ import annotations

import math
from typing import List, Tuple

from ...cpu.golden import GoldenResult
from ...isa import encoding
from ...isa.program import Program
from ..base import Workload, register
from .common import doubles_directive, lcg_sequence, words_directive


def _expect_double(result: GoldenResult, address: int, expected: float,
                   what: str) -> None:
    actual_bits = result.memory.load_double(address)
    expected_bits = encoding.float_to_bits(expected)
    assert actual_bits == expected_bits, (
        f"{what}: got {encoding.bits_to_float(actual_bits)!r},"
        f" expected {expected!r}")


# =====================================================================
# wave5: 1D field update plus particle push (int<->float conversions)
# =====================================================================

_WAVE_N = 40
_WAVE_P = 12


def _wave_field() -> List[float]:
    return [0.25 * (i % 8) for i in range(_WAVE_N)]


def _wave_particles(scale: int) -> List[int]:
    return [1 + p % (_WAVE_N - 2)
            for p in lcg_sequence(seed=0x3A7E + scale, count=_WAVE_P,
                                  modulo=_WAVE_N - 2)]


def _wave_source(scale: int) -> str:
    n = _WAVE_N
    steps = 6 * scale
    return f"""
.data
{doubles_directive("efield", _wave_field())}
{doubles_directive("bfield", _wave_field())}
{words_directive("pos", _wave_particles(scale))}
vel: .space {8 * _WAVE_P}
consts: .double 0.5, 0.0625
results: .space 16
.text
main:
    la   r2, efield
    la   r3, bfield
    la   r4, pos
    la   r5, vel
    la   r6, consts
    ld   f10, 0(r6)     # c = 0.5
    ld   f11, 8(r6)     # qm*dt = 0.0625
    li   r20, {steps}
step:
    beq  r20, r0, reduce
    # E[i] += c*(B[i+1]-B[i]) for i in 0..n-2
    li   r7, 0
eloop:
    slli r8, r7, 3
    add  r9, r3, r8
    ld   f1, 8(r9)
    ld   f2, 0(r9)
    fsub f3, f1, f2
    fmul f3, f3, f10
    add  r10, r2, r8
    ld   f4, 0(r10)
    fadd f4, f4, f3
    sd   f4, 0(r10)
    addi r7, r7, 1
    li   r11, {n - 1}
    bne  r7, r11, eloop
    # B[i] -= c*(E[i]-E[i-1]) for i in 1..n-1
    li   r7, 1
bloop:
    slli r8, r7, 3
    add  r9, r2, r8
    ld   f1, 0(r9)
    ld   f2, -8(r9)
    fsub f3, f1, f2
    fmul f3, f3, f10
    add  r10, r3, r8
    ld   f4, 0(r10)
    fsub f4, f4, f3
    sd   f4, 0(r10)
    addi r7, r7, 1
    li   r11, {n}
    bne  r7, r11, bloop
    # particle push: v += E[p]*qmdt; p += trunc(v); clamp to interior
    li   r7, 0
ploop:
    slli r8, r7, 2
    add  r9, r4, r8
    lw   r12, 0(r9)     # p
    slli r13, r12, 3
    add  r13, r13, r2
    ld   f1, 0(r13)     # E[p]
    fmul f2, f1, f11
    slli r14, r7, 3
    add  r15, r5, r14
    ld   f3, 0(r15)     # v
    fadd f3, f3, f2
    sd   f3, 0(r15)
    cvtfi r16, f3       # integer displacement
    add  r12, r12, r16
    li   r17, 1
    bge  r12, r17, noclamp_lo
    li   r12, 1
noclamp_lo:
    li   r17, {n - 2}
    ble  r12, r17, noclamp_hi
    li   r12, {n - 2}
noclamp_hi:
    sw   r12, 0(r9)
    addi r7, r7, 1
    li   r11, {_WAVE_P}
    bne  r7, r11, ploop
    addi r20, r20, -1
    j    step
reduce:
    # energy = sum E[i]; moment = sum v_k * float(p_k)
    li   r7, 0
    li   r11, {n}
srloop:
    slli r8, r7, 3
    add  r9, r2, r8
    ld   f1, 0(r9)
    fadd f20, f20, f1
    addi r7, r7, 1
    bne  r7, r11, srloop
    li   r7, 0
    li   r11, {_WAVE_P}
prloop:
    slli r8, r7, 2
    add  r9, r4, r8
    lw   r12, 0(r9)
    cvtif f1, r12       # float(p)
    slli r14, r7, 3
    add  r15, r5, r14
    ld   f2, 0(r15)
    fmul f3, f1, f2
    fadd f21, f21, f3
    addi r7, r7, 1
    bne  r7, r11, prloop
    la   r16, results
    sd   f20, 0(r16)
    sd   f21, 8(r16)
    halt
"""


def _wave_golden(scale: int) -> Tuple[float, float]:
    n = _WAVE_N
    efield = _wave_field()
    bfield = _wave_field()
    pos = _wave_particles(scale)
    vel = [0.0] * _WAVE_P
    for _ in range(6 * scale):
        for i in range(n - 1):
            efield[i] = efield[i] + (bfield[i + 1] - bfield[i]) * 0.5
        for i in range(1, n):
            bfield[i] = bfield[i] - (efield[i] - efield[i - 1]) * 0.5
        for k in range(_WAVE_P):
            vel[k] = vel[k] + efield[pos[k]] * 0.0625
            displacement = int(vel[k])  # truncation toward zero
            pos[k] = min(max(pos[k] + displacement, 1), n - 2)
    energy = 0.0
    for value in efield:
        energy = energy + value
    moment = 0.0
    for k in range(_WAVE_P):
        moment = moment + float(pos[k]) * vel[k]
    return energy, moment


def _wave_check(program: Program, result: GoldenResult, scale: int) -> None:
    energy, moment = _wave_golden(scale)
    base = program.symbol_address("results")
    _expect_double(result, base, energy, "field energy")
    _expect_double(result, base + 8, moment, "particle moment")


register(Workload(
    name="wave5",
    kind="fp",
    spec_analogue="146.wave5",
    description="1D field update with particle push: int<->float casts"
                " (cvtif/cvtfi) feeding the FPAU, as in PIC codes.",
    build_source=_wave_source,
    check=_wave_check,
    default_scale=2,
))


# =====================================================================
# turb3d: butterfly passes over complex arrays (FFT flavour)
# =====================================================================

_TURB_N = 32  # complex points; butterflies pair i with i + n/2


def _turb_init() -> Tuple[List[float], List[float]]:
    real = [0.5 * (i % 4) + (1.0 if i % 7 == 0 else 0.0)
            for i in range(_TURB_N)]
    imag = [0.25 * (i % 3) for i in range(_TURB_N)]
    return real, imag


def _turb_twiddles() -> Tuple[List[float], List[float]]:
    half = _TURB_N // 2
    w_re = [math.cos(2.0 * math.pi * i / _TURB_N) for i in range(half)]
    w_im = [-math.sin(2.0 * math.pi * i / _TURB_N) for i in range(half)]
    return w_re, w_im


def _turb_source(scale: int) -> str:
    n = _TURB_N
    half = n // 2
    real, imag = _turb_init()
    w_re, w_im = _turb_twiddles()
    stages = 4 * scale
    return f"""
.data
{doubles_directive("re", real)}
{doubles_directive("im", imag)}
{doubles_directive("w_re", w_re)}
{doubles_directive("w_im", w_im)}
results: .space 16
.text
main:
    la   r2, re
    la   r3, im
    la   r4, w_re
    la   r5, w_im
    li   r20, {stages}
stage:
    beq  r20, r0, reduce
    li   r6, 0
bfly:
    slli r7, r6, 3
    add  r8, r2, r7
    add  r9, r3, r7
    ld   f1, 0(r8)              # ar
    ld   f2, 0(r9)              # ai
    ld   f3, {8 * half}(r8)     # br
    ld   f4, {8 * half}(r9)     # bi
    add  r10, r4, r7
    add  r11, r5, r7
    ld   f5, 0(r10)             # wr
    ld   f6, 0(r11)             # wi
    # t = b * w (complex)
    fmul f7, f3, f5
    fmul f8, f4, f6
    fsub f7, f7, f8             # tr
    fmul f8, f3, f6
    fmul f9, f4, f5
    fadd f8, f8, f9             # ti
    fadd f10, f1, f7
    sd   f10, 0(r8)
    fadd f11, f2, f8
    sd   f11, 0(r9)
    fsub f12, f1, f7
    sd   f12, {8 * half}(r8)
    fsub f13, f2, f8
    sd   f13, {8 * half}(r9)
    addi r6, r6, 1
    li   r12, {half}
    bne  r6, r12, bfly
    addi r20, r20, -1
    j    stage
reduce:
    li   r6, 0
    li   r12, {n}
rloop:
    slli r7, r6, 3
    add  r8, r2, r7
    add  r9, r3, r7
    ld   f1, 0(r8)
    ld   f2, 0(r9)
    fadd f20, f20, f1
    fmul f3, f2, f2
    fadd f21, f21, f3
    addi r6, r6, 1
    bne  r6, r12, rloop
    la   r13, results
    sd   f20, 0(r13)
    sd   f21, 8(r13)
    halt
"""


def _turb_golden(scale: int) -> Tuple[float, float]:
    n = _TURB_N
    half = n // 2
    real, imag = _turb_init()
    w_re, w_im = _turb_twiddles()
    for _ in range(4 * scale):
        for i in range(half):
            ar, ai = real[i], imag[i]
            br, bi = real[i + half], imag[i + half]
            tr = br * w_re[i] - bi * w_im[i]
            ti = br * w_im[i] + bi * w_re[i]
            real[i] = ar + tr
            imag[i] = ai + ti
            real[i + half] = ar - tr
            imag[i + half] = ai - ti
    re_sum = 0.0
    power = 0.0
    for i in range(n):
        re_sum = re_sum + real[i]
        power = power + imag[i] * imag[i]
    return re_sum, power


def _turb_check(program: Program, result: GoldenResult, scale: int) -> None:
    re_sum, power = _turb_golden(scale)
    base = program.symbol_address("results")
    _expect_double(result, base, re_sum, "real sum")
    _expect_double(result, base + 8, power, "imaginary power")


register(Workload(
    name="turb3d",
    kind="fp",
    spec_analogue="125.turb3d",
    description="Complex butterfly passes with twiddle factors"
                " (FFT flavour; floating point multiplier heavy).",
    build_source=_turb_source,
    check=_turb_check,
    default_scale=2,
))


# =====================================================================
# apsi: column physics relaxation with source decay
# =====================================================================

_APSI_N = 36


def _apsi_temperature() -> List[float]:
    return [280.0 + 0.5 * (i % 9) for i in range(_APSI_N)]


def _apsi_sources() -> List[float]:
    return [1.0 if i % 6 == 0 else 0.125 for i in range(_APSI_N)]


def _apsi_source_asm(scale: int) -> str:
    n = _APSI_N
    steps = 10 * scale
    return f"""
.data
{doubles_directive("temp", _apsi_temperature())}
{doubles_directive("src", _apsi_sources())}
consts: .double 0.0625, 2.0, 0.96875, 240.0, 320.0
results: .space 8
.text
main:
    la   r2, temp
    la   r3, src
    la   r4, consts
    ld   f10, 0(r4)     # alpha*dt
    ld   f11, 8(r4)     # 2.0
    ld   f12, 16(r4)    # decay
    ld   f13, 24(r4)    # floor
    ld   f14, 32(r4)    # ceiling
    li   r20, {steps}
step:
    beq  r20, r0, sumup
    li   r5, 1
tloop:
    slli r6, r5, 3
    add  r7, r2, r6
    ld   f1, -8(r7)
    ld   f2, 0(r7)
    ld   f3, 8(r7)
    fmul f4, f2, f11
    fsub f5, f1, f4
    fadd f5, f5, f3     # diffusion
    add  r8, r3, r6
    ld   f6, 0(r8)
    fadd f5, f5, f6
    fmul f5, f5, f10
    fadd f2, f2, f5
    fmax f2, f2, f13
    fmin f2, f2, f14
    sd   f2, 0(r7)
    addi r5, r5, 1
    li   r9, {n - 1}
    bne  r5, r9, tloop
    # sources decay geometrically
    li   r5, 0
dloop:
    slli r6, r5, 3
    add  r8, r3, r6
    ld   f6, 0(r8)
    fmul f6, f6, f12
    sd   f6, 0(r8)
    addi r5, r5, 1
    li   r9, {n}
    bne  r5, r9, dloop
    addi r20, r20, -1
    j    step
sumup:
    li   r5, 0
    li   r9, {n}
sumloop:
    slli r6, r5, 3
    add  r7, r2, r6
    ld   f1, 0(r7)
    fadd f20, f20, f1
    addi r5, r5, 1
    bne  r5, r9, sumloop
    la   r15, results
    sd   f20, 0(r15)
    halt
"""


def _apsi_golden(scale: int) -> float:
    n = _APSI_N
    temp = _apsi_temperature()
    src = _apsi_sources()
    for _ in range(10 * scale):
        for i in range(1, n - 1):
            diffusion = temp[i - 1] - temp[i] * 2.0
            diffusion = diffusion + temp[i + 1]
            delta = (diffusion + src[i]) * 0.0625
            value = temp[i] + delta
            value = max(value, 240.0)
            value = min(value, 320.0)
            temp[i] = value
        for i in range(n):
            src[i] = src[i] * 0.96875
    total = 0.0
    for value in temp:
        total = total + value
    return total


def _apsi_check(program: Program, result: GoldenResult, scale: int) -> None:
    base = program.symbol_address("results")
    _expect_double(result, base, _apsi_golden(scale), "column sum")


register(Workload(
    name="apsi",
    kind="fp",
    spec_analogue="141.apsi",
    description="Column physics: clamped diffusion with geometrically"
                " decaying sources (round constants everywhere).",
    build_source=_apsi_source_asm,
    check=_apsi_check,
    default_scale=2,
))


# =====================================================================
# fpppp: many-term polynomial evaluation (Horner) over mixed points
# =====================================================================

_FPPPP_DEGREE = 10
_FPPPP_COEFFS = [0.5, -0.25, 1.0, 0.125, -0.5, 0.0625, 2.0, -1.0,
                 0.25, -0.125, 0.03125]


def _fpppp_points(scale: int) -> List[float]:
    # mix of integer casts, round values, and full-precision values, the
    # three mantissa populations section 4.2 describes
    count = 30 * scale
    raw = lcg_sequence(seed=0xF9 + scale, count=count, modulo=1 << 20)
    points = []
    for index, value in enumerate(raw):
        if index % 3 == 0:
            points.append(float(value % 17))          # integer cast
        elif index % 3 == 1:
            points.append(0.25 + 0.125 * (value % 9))  # round number
        else:
            points.append(1.0 + value / (1 << 20))     # full precision
    return points


def _fpppp_source(scale: int) -> str:
    points = _fpppp_points(scale)
    return f"""
.data
{doubles_directive("coeffs", _FPPPP_COEFFS)}
{doubles_directive("points", points)}
results: .space 16
.text
main:
    la   r2, points
    li   r3, {len(points)}
ploop:
    beq  r3, r0, done
    ld   f1, 0(r2)      # x
    addi r2, r2, 8
    addi r3, r3, -1
    la   r4, coeffs
    ld   f2, 0(r4)      # acc = c0
    li   r5, {_FPPPP_DEGREE}
horner:
    beq  r5, r0, evaluated
    addi r4, r4, 8
    ld   f3, 0(r4)
    fmul f2, f2, f1
    fadd f2, f2, f3
    addi r5, r5, -1
    j    horner
evaluated:
    fadd f20, f20, f2   # sum
    fmul f4, f2, f2
    fadd f21, f21, f4   # sum of squares
    j    ploop
done:
    la   r15, results
    sd   f20, 0(r15)
    sd   f21, 8(r15)
    halt
"""


def _fpppp_golden(scale: int) -> Tuple[float, float]:
    total = 0.0
    squares = 0.0
    for x in _fpppp_points(scale):
        acc = _FPPPP_COEFFS[0]
        for coeff in _FPPPP_COEFFS[1:]:
            acc = acc * x + coeff
        total = total + acc
        squares = squares + acc * acc
    return total, squares


def _fpppp_check(program: Program, result: GoldenResult, scale: int) -> None:
    total, squares = _fpppp_golden(scale)
    base = program.symbol_address("results")
    _expect_double(result, base, total, "polynomial sum")
    _expect_double(result, base + 8, squares, "polynomial sum of squares")


register(Workload(
    name="fpppp",
    kind="fp",
    spec_analogue="145.fpppp",
    description="Horner evaluation of a degree-10 polynomial over points"
                " mixing integer casts, round numbers, and full precision.",
    build_source=_fpppp_source,
    check=_fpppp_check,
    default_scale=2,
))
