"""Fault-tolerant experiment-campaign subsystem.

``repro.runner`` turns the repository's long serial sweeps into
resumable, crash-isolated campaigns:

* :class:`CampaignSpec` / :class:`CampaignRunner` / :func:`run_campaign`
  — declarative (workload × config × fault-rate) grids executed over a
  process pool with per-task timeouts, bounded retries with exponential
  backoff, and crash isolation;
* :class:`CampaignManifest` — the crash-safe JSONL journal that makes
  ``campaign --resume`` pick up exactly the pending task set;
* :class:`DistCoordinator` / :class:`DistWorker` /
  :func:`run_distributed` — the distributed campaign fabric: the grid
  sharded into lease-based work units on a shared directory, claimed
  and stolen by workers on any number of hosts, merged byte-stably
  into one campaign manifest (see ``docs/runner.md``);
* :class:`FaultInjector` / :func:`fault_sweep` — transient-upset
  modelling on the steering path (info-bit / operand-bit flips);
* :func:`atomic_write_text` / :func:`atomic_write_json` — the shared
  write-temp-then-rename helpers every report/JSON artifact uses.

See ``docs/runner.md`` for the manifest format, resume semantics,
distributed topology, and watchdog tuning.
"""

from .atomic import atomic_append_jsonl, atomic_write_json, atomic_write_text
from .campaign import (CONFIG_FIELDS, CampaignError, CampaignResult,
                       CampaignRunner, CampaignSpec, TaskSpec, execute_task,
                       run_campaign, task_fingerprint)
from .dist import (CampaignLayout, DistCoordinator, DistResult, DistWorker,
                   WorkerResult, run_distributed)
from .faults import FAULT_MODES, FaultInjector, fault_sweep
from .manifest import (CampaignManifest, ManifestError, ShardManifest,
                       canonical_task_record, merge_task_records,
                       read_shard_records, write_merged_manifest)
from .pool import full_jitter_delay

__all__ = [
    "atomic_append_jsonl", "atomic_write_json", "atomic_write_text",
    "CONFIG_FIELDS", "CampaignError", "CampaignResult", "CampaignRunner",
    "CampaignSpec", "TaskSpec", "execute_task", "run_campaign",
    "task_fingerprint",
    "CampaignLayout", "DistCoordinator", "DistResult", "DistWorker",
    "WorkerResult", "run_distributed",
    "FAULT_MODES", "FaultInjector", "fault_sweep",
    "CampaignManifest", "ManifestError", "ShardManifest",
    "canonical_task_record", "merge_task_records", "read_shard_records",
    "write_merged_manifest",
    "full_jitter_delay",
]
