"""Campaign manifest: a crash-safe JSONL journal of task outcomes.

The manifest is the campaign's source of truth.  Its first record
describes the campaign (format version, a fingerprint of the expanded
task grid, the spec itself); each subsequent record is one finished
task — ``done`` with its measured result, or ``failed`` with the
captured error (exception type, message, traceback, and, for simulator
aborts, the diagnostic snapshot).

Durability model: the file is rewritten through the atomic
write-temp-then-rename helper after every task, so a campaign killed at
*any* instant leaves either the previous complete journal or the new
one — never a torn line.  ``CampaignManifest.load`` is nevertheless
lenient about trailing garbage (a manifest copied off a dying machine,
say): corrupt trailing lines are dropped and reported, not fatal.

Distributed campaigns add a second journal species: the *shard
manifest* (:class:`ShardManifest`), one JSONL file per (shard, lease)
attempt, appended by exactly one worker and merged by the coordinator
through :func:`merge_task_records` / :func:`write_merged_manifest`.
The merge is deliberately a pure function of the record *set*: any
permutation of shard files — including duplicates left behind by a
stolen-then-completed shard — produces the byte-identical campaign
manifest, with last-write-wins keyed on each cell's content
fingerprint.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (Any, Dict, Iterable, Iterator, List, Optional, Tuple,
                    Union)

from .atomic import atomic_append_jsonl, atomic_write_text

MANIFEST_VERSION = 1
SHARD_MANIFEST_VERSION = 1

#: result keys that legitimately differ between equivalent executions
#: (which worker hit the shared trace cache first is a scheduling
#: accident, not physics) — stripped when canonicalising for the merge
VOLATILE_RESULT_KEYS = ("trace_cache",)

#: telemetry metric kinds recorded only by the *live* recording pass:
#: a cache hit replays the original run's counters from the trace
#: header (bit-identical), but the simulator's occupancy gauges and
#: width histograms exist only on the pass that simulated — i.e. their
#: presence encodes who won the recording race, not physics
VOLATILE_METRIC_KINDS = ("gauges", "histograms")

PathLike = Union[str, Path]


class ManifestError(RuntimeError):
    """The manifest is unusable (bad header, fingerprint mismatch)."""


class CampaignManifest:
    """In-memory view of the journal, flushed atomically on update."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.header: Optional[Dict[str, Any]] = None
        # task id -> latest record for that task
        self.tasks: Dict[str, Dict[str, Any]] = {}
        self.dropped_lines = 0

    # ----- construction ---------------------------------------------------

    @classmethod
    def create(cls, path: PathLike, fingerprint: str,
               spec: Dict[str, Any]) -> "CampaignManifest":
        """Start a fresh journal for a campaign."""
        manifest = cls(path)
        manifest.header = {"event": "campaign",
                           "version": MANIFEST_VERSION,
                           "fingerprint": fingerprint,
                           "spec": spec}
        manifest.flush()
        return manifest

    @classmethod
    def load(cls, path: PathLike) -> "CampaignManifest":
        """Read an existing journal, tolerating trailing corruption."""
        manifest = cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {path}: {exc}") \
                from exc
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                manifest.dropped_lines += 1
                continue
            if not isinstance(record, dict):
                manifest.dropped_lines += 1
                continue
            event = record.get("event")
            if event == "campaign":
                if record.get("version") != MANIFEST_VERSION:
                    raise ManifestError(
                        f"{path}: unsupported manifest version"
                        f" {record.get('version')!r}")
                manifest.header = record
            elif event == "task" and "id" in record:
                manifest.tasks[record["id"]] = record
            else:
                manifest.dropped_lines += 1
        if manifest.header is None:
            raise ManifestError(
                f"{path}: no campaign header record — not a manifest, or"
                " corrupted beyond resume")
        return manifest

    # ----- queries --------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        return self.header.get("fingerprint", "") if self.header else ""

    def completed_ids(self) -> List[str]:
        return [tid for tid, rec in self.tasks.items()
                if rec.get("status") == "done"]

    def failed_ids(self) -> List[str]:
        return [tid for tid, rec in self.tasks.items()
                if rec.get("status") == "failed"]

    def status_of(self, task_id: str) -> Optional[str]:
        record = self.tasks.get(task_id)
        return record.get("status") if record else None

    # ----- updates --------------------------------------------------------

    def record_done(self, task_id: str, attempts: int, elapsed: float,
                    result: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id,
                               "status": "done", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "result": result}
        self.flush()

    def record_failed(self, task_id: str, attempts: int, elapsed: float,
                      error: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id,
                               "status": "failed", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "error": error}
        self.flush()

    def forget(self, task_id: str) -> None:
        """Drop a task record (used when retrying failed tasks)."""
        self.tasks.pop(task_id, None)

    def flush(self) -> None:
        """Atomically rewrite the journal from the in-memory state."""
        if self.header is None:
            raise ManifestError("manifest has no header; nothing to flush")
        records = [self.header] + [self.tasks[tid]
                                   for tid in sorted(self.tasks)]
        atomic_append_jsonl(self.path, records)


# ----- shard manifests (distributed campaigns) --------------------------------


class ShardManifest:
    """One worker's JSONL journal for one (shard, lease) attempt.

    Every record lands via a full atomic rewrite, exactly like the
    campaign manifest, so a worker host lost at any instant leaves a
    complete, parseable journal of everything it finished.  The file is
    named for the shard, the lease epoch, and the lease nonce, so two
    workers that ever race on one shard (an expired lease stolen while
    its original owner limps on) write to *different* files and the
    merge, not the filesystem, arbitrates.
    """

    def __init__(self, path: PathLike, shard: str, fingerprint: str,
                 worker: str, epoch: int):
        self.path = Path(path)
        self.shard = shard
        self.header = {"event": "shard", "version": SHARD_MANIFEST_VERSION,
                       "shard": shard, "fingerprint": fingerprint,
                       "worker": worker, "epoch": epoch}
        self.tasks: Dict[str, Dict[str, Any]] = {}
        self.footer: Optional[Dict[str, Any]] = None

    @classmethod
    def create(cls, path: PathLike, shard: str, fingerprint: str,
               worker: str, epoch: int) -> "ShardManifest":
        manifest = cls(path, shard, fingerprint, worker, epoch)
        manifest.flush()
        return manifest

    def record_done(self, task_id: str, cell: str, attempts: int,
                    elapsed: float, result: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id, "cell": cell,
                               "status": "done", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "worker": self.header["worker"],
                               "epoch": self.header["epoch"],
                               "result": result}
        self.flush()

    def record_failed(self, task_id: str, cell: str, attempts: int,
                      elapsed: float, error: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id, "cell": cell,
                               "status": "failed", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "worker": self.header["worker"],
                               "epoch": self.header["epoch"],
                               "error": error}
        self.flush()

    def finalize(self, summary: Optional[Dict[str, Any]] = None) -> None:
        """Append the shard-done footer: the shard ran to completion."""
        self.footer = {"event": "shard-done", "shard": self.shard,
                       "worker": self.header["worker"],
                       "epoch": self.header["epoch"],
                       "tasks": len(self.tasks)}
        if summary:
            self.footer["summary"] = summary
        self.flush()

    def flush(self) -> None:
        records = [self.header] + [self.tasks[tid]
                                   for tid in sorted(self.tasks)]
        if self.footer is not None:
            records.append(self.footer)
        atomic_append_jsonl(self.path, records)


def read_shard_records(results_dir: PathLike
                       ) -> Iterator[Dict[str, Any]]:
    """Yield every task record from every shard manifest in a directory.

    Lenient by design — the merge runs while workers are live and after
    hosts have died mid-write, so unparseable lines, foreign events,
    and half-copied files are skipped, never fatal.  File order is
    unspecified; the merge is order-independent.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.jsonl")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("event") == "task" \
                    and "id" in record:
                yield record


def canonical_task_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a task record to its deterministic, merge-stable core.

    Volatile execution detail — wall-clock ``elapsed``, ``attempts``,
    which ``worker`` under which lease ``epoch``, and whether the
    shared trace cache happened to be warm — is stripped, because the
    merged campaign manifest must be bit-identical however the work was
    scheduled.  The full detail survives in the per-shard journals.
    """
    canon: Dict[str, Any] = {"event": "task", "id": record["id"],
                             "cell": record.get("cell", record["id"]),
                             "status": record.get("status", "failed")}
    if canon["status"] == "done":
        result = dict(record.get("result", {}))
        for key in VOLATILE_RESULT_KEYS:
            result.pop(key, None)
        telemetry = result.get("telemetry")
        if isinstance(telemetry, dict):
            telemetry = dict(telemetry)
            metrics = telemetry.get("metrics")
            if isinstance(metrics, dict):
                telemetry["metrics"] = {
                    kind: value for kind, value in metrics.items()
                    if kind not in VOLATILE_METRIC_KINDS}
            result["telemetry"] = telemetry
        canon["result"] = result
    else:
        error = record.get("error", {})
        canon["error"] = {"type": error.get("type", "unknown"),
                          "message": error.get("message", "")}
    return canon


def _record_precedence(record: Dict[str, Any]) -> Tuple:
    """Total order for duplicate records of one cell.

    ``done`` beats ``failed`` (a stolen shard's completion supersedes
    the original owner's crash), then the higher lease epoch wins
    (last-write-wins), then attempts, then the canonical serialisation
    as an arbitrary-but-stable tiebreak so the winner never depends on
    input order.
    """
    return (1 if record.get("status") == "done" else 0,
            int(record.get("epoch", 0)),
            int(record.get("attempts", 0)),
            json.dumps(canonical_task_record(record), sort_keys=True))


def merge_task_records(records: Iterable[Dict[str, Any]]
                       ) -> Dict[str, Dict[str, Any]]:
    """Fold task records into ``{cell fingerprint: canonical record}``.

    Pure and order-independent: merging any permutation of any shard
    manifests (with duplicates) yields the same map, because each
    cell's winner is chosen by :func:`_record_precedence`, which never
    looks at arrival order.
    """
    winners: Dict[str, Dict[str, Any]] = {}
    precedence: Dict[str, Tuple] = {}
    for record in records:
        cell = record.get("cell", record.get("id"))
        if cell is None:
            continue
        rank = _record_precedence(record)
        if cell not in precedence or rank > precedence[cell]:
            precedence[cell] = rank
            winners[cell] = canonical_task_record(record)
    return winners


def write_merged_manifest(path: PathLike, fingerprint: str,
                          spec: Dict[str, Any],
                          merged: Dict[str, Dict[str, Any]]) -> None:
    """Atomically write the byte-stable merged campaign manifest.

    Records are sorted by task id and serialised with sorted keys, so
    the file is a pure function of (fingerprint, spec, record set) —
    the property the chaos tests pin down with ``cmp``.  The output is
    loadable by :meth:`CampaignManifest.load`.
    """
    header = {"event": "campaign", "version": MANIFEST_VERSION,
              "fingerprint": fingerprint, "spec": spec}
    records = [header] + sorted(merged.values(),
                                key=lambda rec: rec["id"])
    text = "".join(json.dumps(record, sort_keys=True) + "\n"
                   for record in records)
    atomic_write_text(path, text)
