"""Campaign manifest: a crash-safe JSONL journal of task outcomes.

The manifest is the campaign's source of truth.  Its first record
describes the campaign (format version, a fingerprint of the expanded
task grid, the spec itself); each subsequent record is one finished
task — ``done`` with its measured result, or ``failed`` with the
captured error (exception type, message, traceback, and, for simulator
aborts, the diagnostic snapshot).

Durability model: the file is rewritten through the atomic
write-temp-then-rename helper after every task, so a campaign killed at
*any* instant leaves either the previous complete journal or the new
one — never a torn line.  ``CampaignManifest.load`` is nevertheless
lenient about trailing garbage (a manifest copied off a dying machine,
say): corrupt trailing lines are dropped and reported, not fatal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .atomic import atomic_append_jsonl

MANIFEST_VERSION = 1

PathLike = Union[str, Path]


class ManifestError(RuntimeError):
    """The manifest is unusable (bad header, fingerprint mismatch)."""


class CampaignManifest:
    """In-memory view of the journal, flushed atomically on update."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.header: Optional[Dict[str, Any]] = None
        # task id -> latest record for that task
        self.tasks: Dict[str, Dict[str, Any]] = {}
        self.dropped_lines = 0

    # ----- construction ---------------------------------------------------

    @classmethod
    def create(cls, path: PathLike, fingerprint: str,
               spec: Dict[str, Any]) -> "CampaignManifest":
        """Start a fresh journal for a campaign."""
        manifest = cls(path)
        manifest.header = {"event": "campaign",
                           "version": MANIFEST_VERSION,
                           "fingerprint": fingerprint,
                           "spec": spec}
        manifest.flush()
        return manifest

    @classmethod
    def load(cls, path: PathLike) -> "CampaignManifest":
        """Read an existing journal, tolerating trailing corruption."""
        manifest = cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise ManifestError(f"cannot read manifest {path}: {exc}") \
                from exc
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                manifest.dropped_lines += 1
                continue
            if not isinstance(record, dict):
                manifest.dropped_lines += 1
                continue
            event = record.get("event")
            if event == "campaign":
                if record.get("version") != MANIFEST_VERSION:
                    raise ManifestError(
                        f"{path}: unsupported manifest version"
                        f" {record.get('version')!r}")
                manifest.header = record
            elif event == "task" and "id" in record:
                manifest.tasks[record["id"]] = record
            else:
                manifest.dropped_lines += 1
        if manifest.header is None:
            raise ManifestError(
                f"{path}: no campaign header record — not a manifest, or"
                " corrupted beyond resume")
        return manifest

    # ----- queries --------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        return self.header.get("fingerprint", "") if self.header else ""

    def completed_ids(self) -> List[str]:
        return [tid for tid, rec in self.tasks.items()
                if rec.get("status") == "done"]

    def failed_ids(self) -> List[str]:
        return [tid for tid, rec in self.tasks.items()
                if rec.get("status") == "failed"]

    def status_of(self, task_id: str) -> Optional[str]:
        record = self.tasks.get(task_id)
        return record.get("status") if record else None

    # ----- updates --------------------------------------------------------

    def record_done(self, task_id: str, attempts: int, elapsed: float,
                    result: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id,
                               "status": "done", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "result": result}
        self.flush()

    def record_failed(self, task_id: str, attempts: int, elapsed: float,
                      error: Dict[str, Any]) -> None:
        self.tasks[task_id] = {"event": "task", "id": task_id,
                               "status": "failed", "attempts": attempts,
                               "elapsed": round(elapsed, 3),
                               "error": error}
        self.flush()

    def forget(self, task_id: str) -> None:
        """Drop a task record (used when retrying failed tasks)."""
        self.tasks.pop(task_id, None)

    def flush(self) -> None:
        """Atomically rewrite the journal from the in-memory state."""
        if self.header is None:
            raise ManifestError("manifest has no header; nothing to flush")
        records = [self.header] + [self.tasks[tid]
                                   for tid in sorted(self.tasks)]
        atomic_append_jsonl(self.path, records)
