"""Distributed campaign fabric: coordinator/worker protocol over a
shared directory, with leases, work stealing, and host-loss recovery.

One host's :class:`~repro.runner.campaign.CampaignRunner` fans a grid
across local cores; a million-cell sweep needs many hosts.  This module
adds the smallest coordination fabric that makes *losing an entire
worker host mid-shard* a recoverable, tested event:

* the **coordinator** (:class:`DistCoordinator`) shards the expanded
  grid into fixed-size work units published as immutable JSON files on
  a shared directory, then merges per-shard JSONL manifests into one
  resumable campaign manifest (fingerprint-validated, byte-stable merge
  order — see :func:`~repro.runner.manifest.merge_task_records`);
* **workers** (:class:`DistWorker`) claim shards under time-limited
  leases (`O_CREAT|O_EXCL`, so exactly one claim wins), renew them from
  a heartbeat thread, execute the shard's tasks through the existing
  :class:`~repro.runner.pool.ProcessTaskPool` (or inline), and append
  every outcome to their own shard manifest via the atomic
  write-temp-then-rename layer — concurrent workers never observe torn
  state;
* an **expired lease is stolen**: any live worker may reclaim it under
  the next lease epoch and re-run the shard.  Requeue delays use
  full-jitter exponential backoff, and a shard that burns
  ``max_shard_attempts`` leases is quarantined — its unfinished cells
  surface as explicit ``ShardQuarantined`` failures instead of hanging
  the campaign;
* results are **at-least-once, exactly-once-merged**: a stolen shard
  whose original owner limps to completion produces duplicate records
  in *separate* files; the merge dedupes them last-write-wins keyed on
  each cell's content fingerprint.  Simulation is deterministic, so
  duplicates are bit-identical and the merged manifest matches a
  single-host run byte for byte (the chaos tests ``cmp`` this).

The queue is a directory tree because the shared-filesystem case (NFS,
Lustre, a cloud file share) is the deployment the ROADMAP names first;
everything is plain JSON + atomic rename, so the same protocol works
over any transport that provides those two primitives.  Wall-clock
lease deadlines assume loosely NTP-synchronised hosts; the ttl should
dwarf plausible skew.

Layout under the campaign directory::

    campaign.json            coordinator-published spec + options (last)
    queue/shard-0000.json    immutable shard descriptors
    leases/shard-0000.lease  current claim: worker, nonce, epoch, deadline
    results/shard-0000.e1.<nonce>.jsonl   per-(shard, lease) manifests
    acks/shard-0000.json     terminal state: done or quarantined
    workers/<id>.json        per-worker telemetry (gauges + counters)
    manifest.jsonl           the merged campaign manifest
    progress.json            merged fleet telemetry
    trace-cache/             fleet-wide content-addressed stream cache
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import random
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from .atomic import atomic_write_json
from .campaign import (CampaignError, CampaignSpec, TaskSpec, execute_task,
                       task_fingerprint)
from .manifest import (ShardManifest, merge_task_records, read_shard_records,
                       write_merged_manifest)
from .pool import (PoolItem, ProcessTaskPool, error_payload,
                   full_jitter_delay)
from ..telemetry import MetricsRegistry

PathLike = Union[str, Path]

DIST_VERSION = 1

#: chaos hook (tests/CI only): a worker SIGKILLs itself immediately
#: before executing the task whose id exactly equals this value —
#: deterministic "host loss mid-shard" without timing races.  By
#: default the kill fires only while the shard is on its first lease
#: epoch, so the steal/requeue path then completes it; a suffix
#: ``#<N>`` (``#`` because task ids contain ``@``) keeps killing
#: through epoch N (drive past ``max_shard_attempts`` to exercise
#: quarantine).  Inline executor only; pool-child crashes are
#: REPRO_CAMPAIGN_TEST_CRASH's job.
KILL_ENV = "REPRO_DIST_TEST_KILL"


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Read a JSON file leniently: missing/torn/foreign -> None."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


class CampaignLayout:
    """Path book-keeping for one campaign directory (see module doc)."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.campaign_file = self.root / "campaign.json"
        self.queue_dir = self.root / "queue"
        self.lease_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self.acks_dir = self.root / "acks"
        self.workers_dir = self.root / "workers"
        self.manifest_path = self.root / "manifest.jsonl"
        self.progress_path = self.root / "progress.json"
        self.default_trace_cache = self.root / "trace-cache"

    def ensure(self) -> None:
        for directory in (self.root, self.queue_dir, self.lease_dir,
                          self.results_dir, self.acks_dir, self.workers_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def shard_path(self, shard_id: str) -> Path:
        return self.queue_dir / f"{shard_id}.json"

    def lease_path(self, shard_id: str) -> Path:
        return self.lease_dir / f"{shard_id}.lease"

    def ack_path(self, shard_id: str) -> Path:
        return self.acks_dir / f"{shard_id}.json"

    def worker_path(self, worker_id: str) -> Path:
        return self.workers_dir / f"{worker_id}.json"

    def result_path(self, shard_id: str, epoch: int, nonce: str) -> Path:
        return self.results_dir / f"{shard_id}.e{epoch}.{nonce}.jsonl"


def shard_ids(count: int) -> List[str]:
    return [f"shard-{index:04d}" for index in range(count)]


def shard_tasks(spec: CampaignSpec, shard_size: int) -> List[List[TaskSpec]]:
    """Chunk the expanded grid into shards, in deterministic order."""
    size = max(1, shard_size)
    tasks = spec.tasks()
    return [tasks[start:start + size] for start in range(0, len(tasks), size)]


# ----- leases -----------------------------------------------------------------


def try_claim_lease(path: Path, shard: str, worker: str, nonce: str,
                    epoch: int, ttl: float) -> bool:
    """Claim a shard by creating its lease file with ``O_EXCL``.

    Exactly one concurrent claimant wins the create; everyone else gets
    ``FileExistsError`` and moves on.  The payload is written and
    fsynced through the held descriptor, so a reader never sees an
    empty lease from a claimant that died mid-write (a torn payload
    parses as None and is treated as expired).
    """
    payload = {"shard": shard, "worker": worker, "nonce": nonce,
               "epoch": epoch, "deadline": time.time() + ttl}
    data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return False
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    return True


def read_lease(path: Path) -> Optional[Dict[str, Any]]:
    return _read_json(path)


def lease_expired(lease: Optional[Dict[str, Any]],
                  now: Optional[float] = None) -> bool:
    """A missing, torn, or past-deadline lease is claimable."""
    if lease is None:
        return True
    try:
        return float(lease.get("deadline", 0.0)) <= \
            (time.time() if now is None else now)
    except (TypeError, ValueError):
        return True


def renew_lease(path: Path, nonce: str, ttl: float) -> bool:
    """Extend our own lease; returns False when the lease was lost.

    The nonce check makes renewal a (non-atomic) compare-and-swap: if a
    stealer replaced the lease between our read and our write, we might
    clobber it — the protocol tolerates that because the loser's
    results land in its own file and the merge dedupes.  What matters
    is that a worker that *has* lost its lease finds out here and stops
    claiming fresh work against it.
    """
    current = read_lease(path)
    if current is None or current.get("nonce") != nonce:
        return False
    current["deadline"] = time.time() + ttl
    try:
        atomic_write_json(path, current)
    except OSError:
        return False
    return True


def release_lease(path: Path, nonce: str) -> None:
    """Drop our lease (only if it is still ours)."""
    current = read_lease(path)
    if current is not None and current.get("nonce") == nonce:
        try:
            path.unlink()
        except OSError:
            pass


class _LeaseKeeper(threading.Thread):
    """Heartbeat thread: renews one lease until stopped or lost."""

    def __init__(self, path: Path, nonce: str, ttl: float,
                 interval: Optional[float] = None):
        super().__init__(daemon=True, name=f"lease-{path.stem}")
        self.path = path
        self.nonce = nonce
        self.ttl = ttl
        self.interval = interval if interval is not None else ttl / 3.0
        self.lost = threading.Event()
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            if not renew_lease(self.path, self.nonce, self.ttl):
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop_event.set()


# ----- the worker -------------------------------------------------------------


@dataclass
class WorkerResult:
    """What one :meth:`DistWorker.run` invocation accomplished."""

    worker: str
    shards_done: int = 0
    shards_stolen: int = 0
    shards_requeued: int = 0
    shards_quarantined: int = 0
    shards_abandoned: int = 0   # lease lost mid-shard; a peer took over
    tasks_done: int = 0
    tasks_failed: int = 0


class DistWorker:
    """Claims shards under leases and executes them until the campaign
    is complete (every shard acked done or quarantined).

    Safe to run any number of these, on any number of hosts sharing the
    campaign directory, starting at any time — including *restarting*
    after a crash, which is exactly the ``--resume`` story: a restarted
    worker simply claims whatever is still unclaimed or expired.
    """

    def __init__(self, root: PathLike, worker_id: Optional[str] = None,
                 poll_interval: Optional[float] = None,
                 join_timeout: float = 30.0):
        self.layout = CampaignLayout(root)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.join_timeout = join_timeout
        self._poll_override = poll_interval
        self.result = WorkerResult(worker=self.worker_id)
        self._next_try: Dict[str, float] = {}  # shard -> monotonic not-before

    # ----- campaign discovery ---------------------------------------------

    def _load_campaign(self) -> Dict[str, Any]:
        deadline = time.monotonic() + self.join_timeout
        while True:
            payload = _read_json(self.layout.campaign_file)
            if payload is not None:
                if payload.get("version") != DIST_VERSION:
                    raise CampaignError(
                        f"{self.layout.campaign_file}: unsupported"
                        f" distributed-campaign version"
                        f" {payload.get('version')!r}")
                return payload
            if time.monotonic() >= deadline:
                raise CampaignError(
                    f"no campaign published at {self.layout.campaign_file}"
                    f" after {self.join_timeout:.0f}s — start the"
                    " coordinator first (campaign --coordinator/--workers)")
            time.sleep(0.1)

    # ----- main loop ------------------------------------------------------

    def run(self) -> WorkerResult:
        campaign = self._load_campaign()
        spec = CampaignSpec.from_dict(campaign["spec"])
        fingerprint = campaign["fingerprint"]
        if fingerprint != spec.fingerprint():
            raise CampaignError(
                f"{self.layout.campaign_file}: fingerprint does not match"
                " its own spec — refusing to execute a torn campaign")
        options = campaign.get("options", {})
        self.lease_ttl = float(options.get("lease_ttl", 15.0))
        self.max_shard_attempts = int(options.get("max_shard_attempts", 3))
        self.executor = options.get("executor", "process")
        self.max_workers = int(options.get("max_workers", 2))
        self.task_timeout = float(options.get("task_timeout", 600.0))
        self.retries = int(options.get("retries", 1))
        self.backoff = float(options.get("backoff", 0.5))
        self.poll_interval = self._poll_override if self._poll_override \
            is not None else float(options.get("poll_interval", 0.2))
        trace_cache_dir = options.get("trace_cache_dir")
        if options.get("trace_cache", True) and trace_cache_dir is None:
            trace_cache_dir = str(self.layout.default_trace_cache)

        shards = shard_tasks(spec, int(campaign.get("shard_size", 1)))
        if len(shards) != int(campaign.get("shards", len(shards))):
            raise CampaignError(
                f"{self.layout.campaign_file}: shard plan mismatch"
                f" ({campaign.get('shards')} published,"
                f" {len(shards)} derived from the spec)")
        if trace_cache_dir:
            shards = [[dataclasses.replace(task,
                                           trace_cache_dir=trace_cache_dir)
                       for task in tasks] for tasks in shards]
        plan = dict(zip(shard_ids(len(shards)), shards))

        self._publish_status()
        try:
            while True:
                remaining = [sid for sid in plan
                             if _read_json(self.layout.ack_path(sid)) is None]
                if not remaining:
                    return self.result
                claimed_any = False
                for sid in remaining:
                    if self._try_shard(sid, plan[sid], fingerprint):
                        claimed_any = True
                if not claimed_any:
                    # peers hold every runnable lease (or backoff is
                    # pending); jitter the poll so a worker fleet does
                    # not scan the directory in lockstep
                    time.sleep(random.uniform(0.5, 1.0)
                               * self.poll_interval)
        finally:
            self._publish_status()

    # ----- one shard ------------------------------------------------------

    def _prior_epoch(self, shard_id: str) -> int:
        """Highest lease epoch this shard has ever been claimed under."""
        best = 0
        for path in self.layout.results_dir.glob(f"{shard_id}.e*.jsonl"):
            remainder = path.name[len(shard_id) + 2:]  # past ".e"
            try:
                best = max(best, int(remainder.split(".", 1)[0]))
            except ValueError:
                continue
        lease = read_lease(self.layout.lease_path(shard_id))
        if lease is not None:
            try:
                best = max(best, int(lease.get("epoch", 0)))
            except (TypeError, ValueError):
                pass
        return best

    def _try_shard(self, shard_id: str, tasks: Sequence[TaskSpec],
                   fingerprint: str) -> bool:
        """Claim and execute one shard if it is runnable now."""
        now = time.monotonic()
        if self._next_try.get(shard_id, 0.0) > now:
            return False
        # re-read the ack here, not just in the caller's snapshot: a
        # peer may have completed this shard (and released its lease)
        # since the snapshot, and a released lease must read as "done",
        # never as "claimable"
        if _read_json(self.layout.ack_path(shard_id)) is not None:
            return False
        lease_path = self.layout.lease_path(shard_id)
        lease = read_lease(lease_path)
        if not lease_expired(lease):
            return False
        prior = self._prior_epoch(shard_id)
        stolen = lease is not None
        if prior >= self.max_shard_attempts \
                and _read_json(self.layout.ack_path(shard_id)) is None:
            # poison shard: it has burned every allowed lease.  The ack
            # is written atomically; racing quarantiners write the same
            # deterministic payload, so last-write-wins is harmless.
            atomic_write_json(self.layout.ack_path(shard_id), {
                "shard": shard_id, "status": "quarantined",
                "attempts": prior, "worker": self.worker_id})
            if stolen:
                release_lease(lease_path, lease.get("nonce", ""))
            self.result.shards_quarantined += 1
            self._publish_status()
            return True
        if stolen:
            # expired lease: its owner is presumed dead.  Unlink, then
            # contend on the O_EXCL create like everyone else.  The
            # unlink/create window can double-run the shard in a worst
            # case; the merge dedupes, so safety never depends on it.
            try:
                lease_path.unlink()
            except OSError:
                pass
        epoch = prior + 1
        nonce = uuid.uuid4().hex[:12]
        if not try_claim_lease(lease_path, shard_id, self.worker_id, nonce,
                               epoch, self.lease_ttl):
            return False
        if stolen:
            self.result.shards_stolen += 1
        if prior:
            self.result.shards_requeued += 1
            # full-jitter backoff *before the work*, not after: the
            # shard already failed `prior` leases, so pause long enough
            # to let a transient cause (an OOMing host, a flaky share)
            # clear instead of hammering it in lockstep with peers
            delay = full_jitter_delay(self.backoff, prior)
            deadline = time.monotonic() + delay
            while time.monotonic() < deadline:
                time.sleep(min(0.05, deadline - time.monotonic()))
                if not renew_lease(lease_path, nonce, self.lease_ttl):
                    return False
        self._execute_shard(shard_id, tasks, fingerprint, epoch, nonce)
        return True

    def _execute_shard(self, shard_id: str, tasks: Sequence[TaskSpec],
                       fingerprint: str, epoch: int, nonce: str) -> None:
        lease_path = self.layout.lease_path(shard_id)
        manifest = ShardManifest.create(
            self.layout.result_path(shard_id, epoch, nonce),
            shard=shard_id, fingerprint=fingerprint,
            worker=self.worker_id, epoch=epoch)
        keeper = _LeaseKeeper(lease_path, nonce, self.lease_ttl)
        keeper.start()
        try:
            if self.executor == "inline":
                completed = self._run_shard_inline(manifest, tasks, keeper)
            else:
                completed = self._run_shard_pool(manifest, tasks, keeper)
        except BaseException:
            # interrupt/SIGTERM path: finalize what we journaled (the
            # manifest is already atomically flushed per task — this
            # guarantees the *last* state is the renamed file, not a
            # temp) and hand the lease back so a peer claims the shard
            # immediately instead of waiting out the ttl
            keeper.stop()
            manifest.flush()
            release_lease(lease_path, nonce)
            self._publish_status()
            raise
        keeper.stop()
        if completed and not keeper.lost.is_set():
            manifest.finalize(summary={
                "tasks_done": sum(
                    1 for rec in manifest.tasks.values()
                    if rec["status"] == "done"),
                "tasks_failed": sum(
                    1 for rec in manifest.tasks.values()
                    if rec["status"] == "failed")})
            atomic_write_json(self.layout.ack_path(shard_id), {
                "shard": shard_id, "status": "done",
                "worker": self.worker_id, "nonce": nonce, "epoch": epoch})
            release_lease(lease_path, nonce)
            self.result.shards_done += 1
        else:
            # lease lost mid-shard (we stalled past the ttl and were
            # stolen): abandon quietly.  Our journal stays on disk; if
            # we actually finished some cells they merge as duplicates.
            manifest.flush()
            self.result.shards_abandoned += 1
        self._publish_status()

    def _run_shard_inline(self, manifest: ShardManifest,
                          tasks: Sequence[TaskSpec],
                          keeper: _LeaseKeeper) -> bool:
        kill = os.environ.get(KILL_ENV)
        kill_target, kill_epochs = "", 0
        if kill:
            kill_target, _, upto = kill.partition("#")
            kill_epochs = int(upto) if upto else 1
        for task in tasks:
            if keeper.lost.is_set():
                return False
            if kill_target and kill_target == task.task_id \
                    and manifest.header["epoch"] <= kill_epochs:
                os.kill(os.getpid(), signal.SIGKILL)
            self._run_task_inline(manifest, task)
        return True

    def _run_task_inline(self, manifest: ShardManifest,
                         task: TaskSpec) -> None:
        attempt = 1
        cell = task_fingerprint(task)
        while True:
            started = time.monotonic()
            try:
                outcome = execute_task(task)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                elapsed = time.monotonic() - started
                if attempt <= self.retries:
                    time.sleep(full_jitter_delay(self.backoff, attempt))
                    attempt += 1
                    continue
                manifest.record_failed(task.task_id, cell, attempt, elapsed,
                                       error_payload(exc))
                self.result.tasks_failed += 1
                return
            manifest.record_done(task.task_id, cell, attempt,
                                 time.monotonic() - started, outcome)
            self.result.tasks_done += 1
            return

    def _run_shard_pool(self, manifest: ShardManifest,
                        tasks: Sequence[TaskSpec],
                        keeper: _LeaseKeeper) -> bool:
        pool = ProcessTaskPool(execute_task, max_workers=self.max_workers,
                               task_timeout=self.task_timeout,
                               retries=self.retries, backoff=self.backoff)
        items = [PoolItem(key=task.task_id, payload=task) for task in tasks]
        cells = {task.task_id: task_fingerprint(task) for task in tasks}

        def on_done(item: PoolItem, elapsed: float, payload: Any) -> None:
            manifest.record_done(item.key, cells[item.key], item.attempt,
                                 elapsed, payload)
            self.result.tasks_done += 1

        def on_failed(item: PoolItem, elapsed: float,
                      error: Dict[str, Any]) -> None:
            manifest.record_failed(item.key, cells[item.key], item.attempt,
                                   elapsed, error)
            self.result.tasks_failed += 1

        pool.run(items, on_done, on_failed)
        return True

    # ----- telemetry ------------------------------------------------------

    def _publish_status(self) -> None:
        """Atomically publish this worker's cumulative fabric metrics.

        One file per worker, rewritten whole: the coordinator merges the
        set with :meth:`MetricsRegistry.merge_all` (distinct workers
        sum; per-worker gauges carry the worker id in the name, so the
        merge never conflates two hosts).
        """
        res = self.result
        registry = MetricsRegistry()
        registry.inc("dist.shards.completed", res.shards_done)
        registry.inc("dist.shards.stolen", res.shards_stolen)
        registry.inc("dist.shards.requeued", res.shards_requeued)
        registry.inc("dist.shards.quarantined", res.shards_quarantined)
        registry.inc("dist.shards.abandoned", res.shards_abandoned)
        registry.inc("dist.tasks.done", res.tasks_done)
        registry.inc("dist.tasks.failed", res.tasks_failed)
        prefix = f"dist.worker.{self.worker_id}"
        registry.set_gauge(f"{prefix}.shards_done", res.shards_done)
        registry.set_gauge(f"{prefix}.tasks_done", res.tasks_done)
        registry.set_gauge(f"{prefix}.steals", res.shards_stolen)
        registry.set_gauge(f"{prefix}.requeues", res.shards_requeued)
        try:
            atomic_write_json(self.layout.worker_path(self.worker_id), {
                "worker": self.worker_id, "updated": time.time(),
                "metrics": registry.to_dict()})
        except OSError:
            pass  # status is advisory; never let it sink the worker


# ----- the coordinator --------------------------------------------------------


@dataclass
class DistResult:
    """Merged outcome of a distributed campaign (possibly mid-flight)."""

    total_tasks: int
    total_shards: int
    done: int = 0
    failed: int = 0
    shards_done: int = 0
    shards_quarantined: int = 0
    manifest_path: Optional[Path] = None
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Any] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.shards_done + self.shards_quarantined \
            == self.total_shards

    @property
    def remaining(self) -> int:
        return self.total_tasks - len(self.tasks)


class DistCoordinator:
    """Publishes the shard queue and merges shard manifests.

    Stateless across restarts by construction: everything lives in the
    campaign directory, so killing the coordinator mid-campaign loses
    nothing — re-running ``publish()`` (with ``resume=True``) validates
    the fingerprint, re-publishes any missing shard descriptors, and
    ``wait()``/``merge()`` pick up from the files on disk.
    """

    def __init__(self, spec: CampaignSpec, root: PathLike,
                 shard_size: int = 1,
                 lease_ttl: float = 15.0,
                 max_shard_attempts: int = 3,
                 executor: str = "process",
                 max_workers: int = 2,
                 task_timeout: float = 600.0,
                 retries: int = 1,
                 backoff: float = 0.5,
                 trace_cache: bool = True,
                 trace_cache_dir: Optional[PathLike] = None,
                 resume: bool = False,
                 poll_interval: float = 0.2):
        if executor not in ("process", "inline"):
            raise CampaignError("executor must be 'process' or 'inline'")
        self.spec = spec
        self.layout = CampaignLayout(root)
        self.shard_size = max(1, shard_size)
        self.options = {
            "lease_ttl": lease_ttl,
            "max_shard_attempts": max(1, max_shard_attempts),
            "executor": executor,
            "max_workers": max_workers,
            "task_timeout": task_timeout,
            "retries": retries,
            "backoff": backoff,
            "trace_cache": trace_cache,
            "trace_cache_dir": (str(trace_cache_dir)
                                if trace_cache_dir is not None else None),
            "poll_interval": poll_interval,
        }
        self.resume = resume
        self.poll_interval = poll_interval
        self.shards = shard_tasks(spec, self.shard_size)
        self.shard_ids = shard_ids(len(self.shards))

    # ----- publish --------------------------------------------------------

    def publish(self) -> None:
        """Write the shard queue, then the campaign file (in that order,
        so a worker that sees ``campaign.json`` sees the whole queue)."""
        self.layout.ensure()
        fingerprint = self.spec.fingerprint()
        existing = _read_json(self.layout.campaign_file)
        if existing is not None:
            if not self.resume:
                raise CampaignError(
                    f"{self.layout.campaign_file} already exists; pass"
                    " resume=True (CLI: --resume) to continue it, or"
                    " choose a fresh --dir")
            if existing.get("fingerprint") != fingerprint:
                raise CampaignError(
                    f"{self.layout.campaign_file} was published for a"
                    f" different campaign grid (fingerprint"
                    f" {existing.get('fingerprint')} != {fingerprint});"
                    " refusing to mix results")
        for sid, tasks in zip(self.shard_ids, self.shards):
            path = self.layout.shard_path(sid)
            if path.exists():
                continue  # descriptors are immutable; never rewrite
            atomic_write_json(path, {
                "shard": sid, "index": self.shard_ids.index(sid),
                "fingerprint": fingerprint,
                "tasks": [task.task_id for task in tasks]})
        atomic_write_json(self.layout.campaign_file, {
            "version": DIST_VERSION, "fingerprint": fingerprint,
            "spec": self.spec.to_dict(), "shards": len(self.shards),
            "shard_size": self.shard_size, "options": self.options})

    # ----- merge ----------------------------------------------------------

    def _ack_states(self) -> Dict[str, Optional[Dict[str, Any]]]:
        return {sid: _read_json(self.layout.ack_path(sid))
                for sid in self.shard_ids}

    def merge(self) -> DistResult:
        """Merge every shard manifest into the campaign manifest.

        Byte-stable: the output is a pure function of the record set
        (plus quarantine acks), independent of worker count, steal
        history, or merge timing — see ``manifest.merge_task_records``.
        """
        fingerprint = self.spec.fingerprint()
        acks = self._ack_states()
        records = list(read_shard_records(self.layout.results_dir))
        # quarantined shards: any cell without a real record becomes an
        # explicit, deterministic failure (epoch 0, so a genuine record
        # from a partially-successful lease always outranks it)
        for sid, tasks in zip(self.shard_ids, self.shards):
            ack = acks[sid]
            if ack is None or ack.get("status") != "quarantined":
                continue
            attempts = self.options["max_shard_attempts"]
            for task in tasks:
                records.append({
                    "event": "task", "id": task.task_id,
                    "cell": task_fingerprint(task), "status": "failed",
                    "epoch": 0, "attempts": 0,
                    "error": {"type": "ShardQuarantined",
                              "message": f"{sid} quarantined after"
                                         f" {attempts} failed lease"
                                         " attempts"}})
        merged = merge_task_records(records)
        write_merged_manifest(self.layout.manifest_path, fingerprint,
                              self.spec.to_dict(), merged)

        result = DistResult(
            total_tasks=sum(len(tasks) for tasks in self.shards),
            total_shards=len(self.shards),
            manifest_path=self.layout.manifest_path)
        result.tasks = {rec["id"]: rec for rec in merged.values()}
        result.done = sum(1 for rec in merged.values()
                          if rec["status"] == "done")
        result.failed = sum(1 for rec in merged.values()
                            if rec["status"] == "failed")
        result.shards_done = sum(
            1 for ack in acks.values()
            if ack is not None and ack.get("status") == "done")
        result.shards_quarantined = sum(
            1 for ack in acks.values()
            if ack is not None and ack.get("status") == "quarantined")

        fleet = MetricsRegistry.merge_all(
            status["metrics"]
            for status in (_read_json(path)
                           for path in sorted(
                               self.layout.workers_dir.glob("*.json")))
            if status is not None and "metrics" in status)
        result.counters = fleet.counter_values()
        result.gauges = fleet.gauge_values()
        try:
            atomic_write_json(self.layout.progress_path, {
                "shards_done": result.shards_done,
                "shards_quarantined": result.shards_quarantined,
                "total_shards": result.total_shards,
                "tasks_done": result.done, "tasks_failed": result.failed,
                "counters": result.counters, "gauges": result.gauges})
        except OSError:
            pass
        return result

    # ----- wait -----------------------------------------------------------

    def wait(self, timeout: Optional[float] = None,
             on_progress: Optional[Callable[[DistResult], None]] = None,
             merge_interval: float = 2.0) -> DistResult:
        """Block until every shard is terminal, merging as results land.

        Returns the final merged result; on ``timeout`` (seconds),
        returns the current (possibly incomplete) merge instead of
        raising, so a supervisor can report progress and retry.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        last_merge = 0.0
        while True:
            acks = self._ack_states()
            terminal = sum(1 for ack in acks.values() if ack is not None)
            if terminal == len(self.shard_ids):
                return self.merge()
            now = time.monotonic()
            if now - last_merge >= merge_interval:
                last_merge = now
                result = self.merge()
                if on_progress is not None:
                    on_progress(result)
            if deadline is not None and now >= deadline:
                return self.merge()
            time.sleep(self.poll_interval)


# ----- one-call driver --------------------------------------------------------


def _worker_entry(root: str, worker_id: str) -> None:
    """Subprocess entry point for locally spawned workers."""

    def _sigterm(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        DistWorker(root, worker_id=worker_id).run()
    except KeyboardInterrupt:  # pragma: no cover - shutdown path
        pass


def run_distributed(spec: CampaignSpec, root: PathLike,
                    workers: int = 1,
                    timeout: Optional[float] = None,
                    on_progress: Optional[Callable[[DistResult],
                                                   None]] = None,
                    **coordinator_kwargs) -> DistResult:
    """Publish a campaign and drive it with ``workers`` local workers.

    ``workers=0`` publishes and waits only — the fleet joins from other
    hosts/terminals via ``campaign --join``.  On ``KeyboardInterrupt``
    the local workers are terminated (they finalize their shard
    manifests and release their leases on SIGTERM), a final merge is
    written, and the interrupt propagates for the CLI's exit-130
    contract.
    """
    coordinator = DistCoordinator(spec, root, **coordinator_kwargs)
    coordinator.publish()
    if workers <= 0:
        return coordinator.wait(timeout=timeout, on_progress=on_progress)
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    procs = []
    for index in range(workers):
        worker_id = f"{socket.gethostname()}-w{index}"
        # not daemonic: workers parent their own task-pool children
        proc = ctx.Process(target=_worker_entry,
                           args=(str(root), worker_id))
        proc.start()
        procs.append(proc)
    deadline = None if timeout is None else time.monotonic() + timeout
    try:
        while True:
            slice_timeout = 2.0
            if deadline is not None:
                slice_timeout = min(slice_timeout,
                                    max(deadline - time.monotonic(), 0.0))
            result = coordinator.wait(timeout=slice_timeout,
                                      on_progress=on_progress)
            if result.complete:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if not any(proc.is_alive() for proc in procs):
                # the entire local fleet died (chaos kill, OOM sweep)
                # with shards outstanding: nobody is left to steal
                # them, so waiting out lease ttls would hang forever.
                # Everything journaled so far is merged and on disk —
                # this is the --resume entry point, not data loss.
                raise CampaignError(
                    "all local workers exited with"
                    f" {result.total_shards - result.shards_done - result.shards_quarantined}"
                    " shard(s) outstanding; re-run with --resume to"
                    " continue from the journaled results")
    except BaseException:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join(timeout=10)
        coordinator.merge()
        raise
    for proc in procs:
        proc.join(timeout=30)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=10)
    return result


__all__ = [
    "CampaignLayout", "DIST_VERSION", "DistCoordinator", "DistResult",
    "DistWorker", "KILL_ENV", "WorkerResult", "lease_expired",
    "read_lease", "release_lease", "renew_lease", "run_distributed",
    "shard_ids", "shard_tasks", "try_claim_lease",
]
