"""Fault-tolerant experiment-campaign runner.

Expands a declarative grid of (workload × machine config × fault rate)
tasks — each task scores every requested steering policy in one
simulation pass — and executes it across a pool of worker *processes*
with:

* **crash isolation** — a worker segfault, OOM kill, or exception
  marks that one task failed (with the captured traceback or exit
  code), never the campaign;
* **per-task timeouts** — an overdue worker is SIGKILLed and the task
  retried;
* **bounded retries with full-jitter exponential backoff** — transient
  failures get ``retries`` extra attempts, each delayed a uniformly
  random slice of the ``backoff * 2**(n-1)`` ceiling so fleets of
  workers never retry in lockstep;
* **journaled progress** — every outcome is recorded in a JSONL
  manifest rewritten atomically (write-temp-then-rename), so a
  campaign killed at any instant resumes from the last completed task;
* **graceful degradation** — the final report renders failed cells as
  explicit gaps carrying the failure reason instead of aborting.

The unit of work is deliberately one whole simulation: simulating is
the expensive part, and all policies share the pass via
:class:`~repro.core.steering.SharedEvaluationCoordinator`, exactly as
the interactive experiment drivers do.

Chaos hooks (for the failure-path tests and CI smoke): workers honour
``REPRO_CAMPAIGN_TEST_DELAY`` (sleep that many seconds before
simulating), ``REPRO_CAMPAIGN_TEST_CRASH`` and
``REPRO_CAMPAIGN_TEST_HANG`` (task-id substrings; matching workers
SIGKILL themselves / sleep forever).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .manifest import CampaignManifest, ManifestError
from .pool import (CRASH_ENV, DELAY_ENV, HANG_ENV, PoolItem, ProcessTaskPool,
                   error_payload as _error_payload, full_jitter_delay)

PathLike = Union[str, Path]

# MachineConfig fields a campaign grid may override per config cell;
# everything here is a scalar, so specs stay trivially JSON-able
CONFIG_FIELDS = frozenset({
    "fetch_width", "dispatch_width", "retire_width", "rob_entries",
    "rs_entries_per_class", "branch_predictor_entries", "branch_predictor",
    "mispredict_penalty", "max_cycles", "watchdog_cycles",
})

class CampaignError(RuntimeError):
    """The campaign cannot run (bad spec, unresumable manifest, ...)."""


@dataclass(frozen=True)
class TaskSpec:
    """One cell of the campaign grid — picklable, self-contained."""

    task_id: str
    workload: str
    scale: int
    config_name: str
    config: Dict[str, Any]
    policies: Tuple[str, ...]
    fault_rate: float = 0.0
    fault_mode: str = "info"
    fu: str = "ialu"
    seed: int = 0
    # execution detail injected by the runner, not part of the grid
    # identity: directory of content-addressed recorded issue streams.
    # Deliberately absent from CampaignSpec.to_dict()/fingerprint(), so
    # toggling the cache never invalidates a resumable manifest.
    trace_cache_dir: Optional[str] = None


@dataclass
class CampaignSpec:
    """Declarative description of the experiment grid.

    ``configs`` maps a config name to a dict of
    :class:`~repro.cpu.config.MachineConfig` overrides (scalar fields
    only, see ``CONFIG_FIELDS``).  The grid is the cross product
    workloads × scales × configs × fault_rates; each task evaluates all
    ``policies`` in a single simulation pass.
    """

    workloads: Tuple[str, ...]
    policies: Tuple[str, ...] = ("original", "lut-4")
    scales: Tuple[int, ...] = (1,)
    configs: Dict[str, Dict[str, Any]] = field(
        default_factory=lambda: {"default": {}})
    fault_rates: Tuple[float, ...] = (0.0,)
    fault_mode: str = "info"
    fu: str = "ialu"
    seed: int = 0

    def __post_init__(self) -> None:
        self.workloads = tuple(self.workloads)
        self.policies = tuple(self.policies)
        self.scales = tuple(int(s) for s in self.scales)
        self.fault_rates = tuple(float(r) for r in self.fault_rates)
        if not self.workloads:
            raise CampaignError("campaign needs at least one workload")
        if not self.policies:
            raise CampaignError("campaign needs at least one policy")
        # fail at spec build, not as "-" columns in the final report:
        # a typo'd policy name used to surface only after the grid ran
        from ..core.registry import PolicyNameError, REGISTRY
        for kind in self.policies:
            try:
                REGISTRY.resolve(kind)
            except PolicyNameError as exc:
                raise CampaignError(str(exc)) from None
        for name, overrides in self.configs.items():
            unknown = set(overrides) - CONFIG_FIELDS
            if unknown:
                raise CampaignError(
                    f"config '{name}' overrides unknown MachineConfig"
                    f" fields: {sorted(unknown)}")

    def tasks(self) -> List[TaskSpec]:
        """Expand the grid into concrete tasks, in deterministic order."""
        out = []
        for workload in self.workloads:
            for scale in self.scales:
                for config_name, overrides in sorted(self.configs.items()):
                    for rate in self.fault_rates:
                        task_id = (f"{workload}@s{scale}/{config_name}"
                                   f"/r{rate:g}")
                        out.append(TaskSpec(
                            task_id=task_id, workload=workload, scale=scale,
                            config_name=config_name, config=dict(overrides),
                            policies=self.policies, fault_rate=rate,
                            fault_mode=self.fault_mode, fu=self.fu,
                            seed=self.seed))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"workloads": list(self.workloads),
                "policies": list(self.policies),
                "scales": list(self.scales),
                "configs": {k: dict(v) for k, v in self.configs.items()},
                "fault_rates": list(self.fault_rates),
                "fault_mode": self.fault_mode,
                "fu": self.fu,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignSpec":
        return cls(workloads=tuple(payload["workloads"]),
                   policies=tuple(payload["policies"]),
                   scales=tuple(payload.get("scales", (1,))),
                   configs=payload.get("configs", {"default": {}}),
                   fault_rates=tuple(payload.get("fault_rates", (0.0,))),
                   fault_mode=payload.get("fault_mode", "info"),
                   fu=payload.get("fu", "ialu"),
                   seed=payload.get("seed", 0))

    def fingerprint(self) -> str:
        """Stable hash of the expanded grid, for resume validation."""
        canon = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def task_fingerprint(task: TaskSpec) -> str:
    """Content fingerprint of one grid cell.

    Hashes every field that determines the cell's *result* — and
    deliberately not ``trace_cache_dir``, which is an execution detail.
    This is the last-write-wins merge key for distributed campaigns:
    two records with the same cell fingerprint measured the same
    physics, so a duplicate from a stolen-then-completed shard is
    interchangeable with the original.
    """
    ident = {"task_id": task.task_id, "workload": task.workload,
             "scale": task.scale, "config_name": task.config_name,
             "config": dict(task.config), "policies": list(task.policies),
             "fault_rate": task.fault_rate, "fault_mode": task.fault_mode,
             "fu": task.fu, "seed": task.seed}
    canon = json.dumps(ident, sort_keys=True)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


# ----- the worker side --------------------------------------------------------


def execute_task(task: TaskSpec) -> Dict[str, Any]:
    """Run one task in the current process and return its result dict.

    Importable so the inline executor and unit tests can call it
    directly; the process pool runs it inside ``_child_main``.
    """
    from ..core.statistics import paper_statistics
    from ..core.steering import (PolicyEvaluator,
                                 SharedEvaluationCoordinator, make_policy)
    from ..cpu.config import MachineConfig
    from ..isa.instructions import FUClass
    from ..telemetry import TelemetryConfig, TelemetrySession
    from ..workloads import workload as get_workload
    from .. import streams
    from .faults import FaultInjector

    fu_class = FUClass(task.fu)
    config = MachineConfig(**task.config) if task.config else MachineConfig()
    # metrics-only session: counters merge across worker processes via
    # the summary dict in the manifest; sampling/tracing stay off so a
    # big grid does not bloat the JSONL or slow the sweep
    session = TelemetrySession(TelemetryConfig(metrics=True))
    load = get_workload(task.workload)
    program = load.build(task.scale)
    stats = paper_statistics(fu_class)
    num_modules = config.modules(fu_class)

    coordinator = SharedEvaluationCoordinator(fu_class)
    injectors: Dict[str, FaultInjector] = {}
    for kind in task.policies:
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        injector = None
        if task.fault_rate:
            # one injector per evaluator, same seed: every policy sees
            # the identical upset sequence on the identical stream
            injector = FaultInjector(task.fault_rate, mode=task.fault_mode,
                                     seed=task.seed)
            injectors[kind] = injector
        coordinator.add(PolicyEvaluator(fu_class, num_modules, policy,
                                        fault_injector=injector,
                                        telemetry=session))

    # fault injectors here corrupt only each policy's *view*, never the
    # published stream, so every cell that shares (workload, scale,
    # machine config) shares one recorded stream regardless of policy
    # set or fault rate — exactly what the content-addressed cache keys
    # on.  A hit replays the trace instead of simulating; its header
    # carries the original run's summary and counters.
    sim_result = None
    cache_state = "off"
    if task.trace_cache_dir:
        # fleet-safe lookup: across every worker process on every host
        # sharing this cache directory, one records and the rest replay
        # (streams.cached_or_record contends on the per-key advisory
        # lock).  On a miss our consumers rode the recording pass.
        source, cache_state = streams.cached_or_record(
            program, config, task.trace_cache_dir, (fu_class,),
            telemetry=session, extra_consumers=[coordinator])
        if cache_state == "hit":
            if injectors:
                # fault views are injected per evaluator inside the
                # shared pass; keep the object path
                streams.drive(source, [coordinator])
            else:
                # warm hit with no fault injection: score every
                # evaluator through the fused columnar kernels straight
                # off the packed sidecar (bit-identical to the shared
                # object pass; tests/batch/test_parity.py).  Any pack
                # problem degrades to the reference path.
                from ..batch import batch_drive, packed_cached
                try:
                    packed, _ = packed_cached(program, config,
                                              task.trace_cache_dir,
                                              (fu_class,))
                    batch_drive(packed, coordinator.evaluators)
                except Exception:
                    streams.drive(source, [coordinator])
            sim_result = source.result
            session.add_collector(sim_result.telemetry_counters)
        else:
            sim_result = source.result
    else:
        live = streams.LiveSource(program, config, telemetry=session)
        sim_result = streams.drive(live, [coordinator])

    policies: Dict[str, Dict[str, Any]] = {}
    baseline_bits: Optional[int] = None
    for kind, totals in zip(task.policies, coordinator.totals()):
        policies[kind] = {"switched_bits": totals.switched_bits,
                          "operations": totals.operations}
        if kind == "original" and baseline_bits is None:
            baseline_bits = totals.switched_bits
    if baseline_bits:
        for kind, cell in policies.items():
            cell["saving"] = 1.0 - cell["switched_bits"] / baseline_bits
    wrong_path_frac = (sim_result.squashed_ops / sim_result.executed_ops
                       if sim_result.executed_ops else 0.0)
    return {
        "workload": task.workload,
        "scale": task.scale,
        "config": task.config_name,
        "fault_rate": task.fault_rate,
        "cycles": sim_result.cycles,
        "retired": sim_result.retired_instructions,
        "ipc": round(sim_result.ipc, 4),
        "wrong_path_frac": round(wrong_path_frac, 4),
        "fault_flips": sum(i.flips for i in injectors.values()),
        "policies": policies,
        "trace_cache": cache_state,
        "telemetry": session.summary(),
    }


# ----- the scheduler side -----------------------------------------------------


@dataclass
class _PendingTask:
    task: TaskSpec
    attempt: int = 1
    not_before: float = 0.0


@dataclass
class CampaignResult:
    """Outcome of one ``CampaignRunner.run`` invocation."""

    total_tasks: int
    done: int = 0
    failed: int = 0
    skipped: int = 0       # satisfied by a previous run's manifest
    remaining: int = 0     # left pending (hit --limit or interrupt)
    interrupted: bool = False
    manifest_path: Optional[Path] = None
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.remaining == 0 and not self.interrupted


class CampaignRunner:
    """Executes a :class:`CampaignSpec` grid with fault tolerance.

    ``executor`` is ``"process"`` (default: full isolation, timeouts,
    crash containment) or ``"inline"`` (tasks run in this process —
    fast and deterministic for tests/sweeps, but a hang or crash is
    *not* contained).
    """

    def __init__(self, spec: CampaignSpec, out_dir: PathLike,
                 max_workers: int = 2,
                 task_timeout: float = 600.0,
                 retries: int = 1,
                 backoff: float = 0.5,
                 executor: str = "process",
                 resume: bool = False,
                 retry_failed: bool = False,
                 limit: int = 0,
                 trace_cache: bool = True,
                 jitter: bool = True):
        if executor not in ("process", "inline"):
            raise CampaignError("executor must be 'process' or 'inline'")
        self.spec = spec
        self.out_dir = Path(out_dir)
        # content-addressed recorded issue streams under out_dir; cells
        # sharing (workload, scale, machine config) simulate once and
        # replay thereafter.  Off: every task simulates, as before.
        self.trace_cache = trace_cache
        self.trace_cache_dir = self.out_dir / "trace-cache"
        self.max_workers = max(1, max_workers)
        self.task_timeout = task_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.jitter = jitter
        self.executor = executor
        self.resume = resume
        self.retry_failed = retry_failed
        self.limit = max(0, limit)
        self.manifest_path = self.out_dir / "manifest.jsonl"
        self.manifest: Optional[CampaignManifest] = None

    # ----- manifest lifecycle --------------------------------------------

    def _open_manifest(self) -> CampaignManifest:
        self.out_dir.mkdir(parents=True, exist_ok=True)
        fingerprint = self.spec.fingerprint()
        if self.manifest_path.exists():
            if not self.resume:
                raise CampaignError(
                    f"{self.manifest_path} already exists; pass"
                    " resume=True (CLI: --resume) to continue it, or"
                    " choose a fresh --dir")
            manifest = CampaignManifest.load(self.manifest_path)
            if manifest.fingerprint != fingerprint:
                raise CampaignError(
                    f"{self.manifest_path} was written by a different"
                    f" campaign grid (fingerprint {manifest.fingerprint}"
                    f" != {fingerprint}); refusing to mix results")
            return manifest
        if self.resume:
            # resuming onto an empty directory is just a fresh start
            pass
        return CampaignManifest.create(self.manifest_path, fingerprint,
                                       self.spec.to_dict())

    # ----- main loop ------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or resume) the grid; returns the campaign outcome.

        On ``KeyboardInterrupt`` the manifest is flushed, in-flight
        workers are killed, and the interrupt is re-raised for the CLI
        to translate into exit code 130.
        """
        manifest = self.manifest = self._open_manifest()
        all_tasks = self.spec.tasks()
        if self.trace_cache:
            cache_dir = str(self.trace_cache_dir)
            all_tasks = [dataclasses.replace(task,
                                             trace_cache_dir=cache_dir)
                         for task in all_tasks]
        result = CampaignResult(total_tasks=len(all_tasks),
                                manifest_path=self.manifest_path)

        pending: List[_PendingTask] = []
        for task in all_tasks:
            status = manifest.status_of(task.task_id)
            if status == "done":
                result.skipped += 1
            elif status == "failed" and not self.retry_failed:
                result.skipped += 1
            else:
                if status == "failed":
                    manifest.forget(task.task_id)
                pending.append(_PendingTask(task))

        try:
            if self.executor == "inline":
                self._run_inline(pending, manifest, result)
            else:
                self._run_pool(pending, manifest, result)
        except KeyboardInterrupt:
            result.interrupted = True
            manifest.flush()
            raise
        finally:
            result.tasks = dict(manifest.tasks)
            result.remaining = sum(
                1 for task in all_tasks
                if manifest.status_of(task.task_id) is None)
        return result

    # ----- inline executor ------------------------------------------------

    def _run_inline(self, pending: List[_PendingTask],
                    manifest: CampaignManifest,
                    result: CampaignResult) -> None:
        finished = 0
        queue = list(pending)
        while queue:
            if self.limit and finished >= self.limit:
                return
            item = queue.pop(0)
            wait = item.not_before - time.monotonic()
            if wait > 0:
                # serial executor: sleeping out the backoff is exact
                time.sleep(wait)
            started = time.monotonic()
            try:
                outcome = execute_task(item.task)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                elapsed = time.monotonic() - started
                if item.attempt <= self.retries:
                    delay = full_jitter_delay(self.backoff, item.attempt,
                                              jitter=self.jitter)
                    item.attempt += 1
                    item.not_before = time.monotonic() + delay
                    queue.append(item)
                    continue
                manifest.record_failed(item.task.task_id, item.attempt,
                                       elapsed, _error_payload(exc))
                result.failed += 1
                finished += 1
                continue
            manifest.record_done(item.task.task_id, item.attempt,
                                 time.monotonic() - started, outcome)
            result.done += 1
            finished += 1

    # ----- process-pool executor -----------------------------------------

    def _run_pool(self, pending: List[_PendingTask],
                  manifest: CampaignManifest,
                  result: CampaignResult) -> None:
        pool = ProcessTaskPool(execute_task,
                               max_workers=self.max_workers,
                               task_timeout=self.task_timeout,
                               retries=self.retries,
                               backoff=self.backoff,
                               jitter=self.jitter)
        items = [PoolItem(key=p.task.task_id, payload=p.task,
                          attempt=p.attempt, not_before=p.not_before)
                 for p in pending]

        def on_done(item: PoolItem, elapsed: float, payload: Any) -> None:
            manifest.record_done(item.key, item.attempt, elapsed, payload)
            result.done += 1

        def on_failed(item: PoolItem, elapsed: float,
                      error: Dict[str, Any]) -> None:
            manifest.record_failed(item.key, item.attempt, elapsed, error)
            result.failed += 1

        pool.run(items, on_done, on_failed, limit=self.limit)


def run_campaign(spec: CampaignSpec, out_dir: PathLike,
                 **runner_kwargs) -> CampaignResult:
    """Convenience wrapper: build a runner and execute the grid."""
    return CampaignRunner(spec, out_dir, **runner_kwargs).run()
