"""Transient-fault injection on the steering path.

The paper's routing logic steers on one-bit operand summaries (the
*information bits*), which makes the scheme's savings a statistical
claim about those bits being right.  :class:`FaultInjector` measures
how fragile that claim is: it flips info bits (or arbitrary operand
bits) at a configurable per-operand rate, modelling transient upsets
on the issue/routing path — the architectural computation is never
touched, only what the steering and power-accounting layers observe.

Two hook points:

* **simulator stream** — pass the injector as ``Simulator(...,
  fault_injector=injector)``: every published :class:`MicroOp` is
  corrupted in place, so *all* listeners see the upset, as real routing
  hardware downstream of a flipped latch would.
* **policy view** — pass it as ``PolicyEvaluator(...,
  fault_injector=injector)``: only the steering policy's view is
  corrupted while the power model charges the true operand images.
  This isolates the *steering decision* degradation, which is what
  :func:`fault_sweep` charts.

At ``rate == 0.0`` both hooks are exact no-ops (the same objects pass
through untouched), so a zero-rate run is bit-identical to a clean run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from ..cpu.trace import MicroOp
from ..isa.instructions import FUClass
from ..core.info_bits import FLOAT_CLASSES

INT_SIGN_BIT = 1 << 31
FP_LOW_NIBBLE = 0xF

FAULT_MODES = ("info", "operand")


class FaultInjector:
    """Flip info bits / operand bits at a per-operand rate.

    ``mode``:

    * ``"info"`` — flip exactly the information bit the steering logic
      reads: the sign bit for integer classes; for floating point, the
      low mantissa nibble is toggled between zero and non-zero so the
      OR-of-low-4 summary inverts.
    * ``"operand"`` — flip one uniformly random bit of the operand
      image (32-bit integer, 64-bit float), the classic single-event
      upset model.

    Deterministic for a given ``seed``; ``flips`` counts bits actually
    flipped so sweeps can report observed fault pressure.
    """

    def __init__(self, rate: float, mode: str = "info", seed: int = 0,
                 fu_classes: Optional[Iterable[FUClass]] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}")
        self.rate = rate
        self.mode = mode
        self.seed = seed
        self._filter = frozenset(fu_classes) if fu_classes is not None \
            else None
        self._rng = random.Random(seed)
        self.flips = 0
        self.operands_seen = 0

    def reset(self) -> None:
        """Restore the seeded RNG state and counters."""
        self._rng = random.Random(self.seed)
        self.flips = 0
        self.operands_seen = 0

    # ----- bit flipping ---------------------------------------------------

    def _corrupt_image(self, bits: int, is_float: bool) -> int:
        if self.mode == "info":
            if is_float:
                # toggle the OR-of-low-4 info bit: zero nibble becomes
                # non-zero, non-zero nibble is cleared
                if bits & FP_LOW_NIBBLE:
                    return bits & ~FP_LOW_NIBBLE
                return bits | 1
            return bits ^ INT_SIGN_BIT
        width = 64 if is_float else 32
        return bits ^ (1 << self._rng.randrange(width))

    def __call__(self, micro: MicroOp, fu_class: FUClass) -> None:
        """Simulator hook: corrupt a published MicroOp in place."""
        rate = self.rate
        if not rate:
            return
        if self._filter is not None and fu_class not in self._filter:
            return
        rng_random = self._rng.random
        is_float = fu_class in FLOAT_CLASSES
        self.operands_seen += 1
        if rng_random() < rate:
            micro.op1 = self._corrupt_image(micro.op1, is_float)
            self.flips += 1
        if micro.has_two:
            self.operands_seen += 1
            if rng_random() < rate:
                micro.op2 = self._corrupt_image(micro.op2, is_float)
                self.flips += 1

    def stream_consumer(self):
        """The simulator-stream hook as an issue-source consumer.

        Returns a ``(IssueGroup) -> None`` callable for
        :func:`repro.streams.drive` that corrupts each group's MicroOps
        *in place* — put it **first** in the consumer list so every
        later consumer sees the upset, exactly as all listeners of a
        live run see ops the simulator hook corrupted before
        publication.  Note that it therefore also mutates a
        MemorySource's stored groups; replay a fresh capture per fault
        configuration.
        """
        call = self.__call__

        def consume(group) -> None:
            fu_class = group.fu_class
            for op in group.ops:
                call(op, fu_class)

        return consume

    def corrupt_view(self, ops: Sequence[MicroOp],
                     fu_class: FUClass) -> Sequence[MicroOp]:
        """Evaluator hook: return the ops as the faulted policy sees them.

        Untouched operations are shared, corrupted ones are copies —
        the caller's list is never mutated, so the power model can
        still charge the true images.
        """
        rate = self.rate
        if not rate:
            return ops
        if self._filter is not None and fu_class not in self._filter:
            return ops
        rng_random = self._rng.random
        is_float = fu_class in FLOAT_CLASSES
        out: Optional[List[MicroOp]] = None
        for index, op in enumerate(ops):
            op1, op2 = op.op1, op.op2
            hit = False
            self.operands_seen += 1
            if rng_random() < rate:
                op1 = self._corrupt_image(op1, is_float)
                self.flips += 1
                hit = True
            if op.has_two:
                self.operands_seen += 1
                if rng_random() < rate:
                    op2 = self._corrupt_image(op2, is_float)
                    self.flips += 1
                    hit = True
            if hit:
                if out is None:
                    out = list(ops)
                out[index] = MicroOp(op.op, op1, op2, has_two=op.has_two,
                                     static_index=op.static_index,
                                     speculative=op.speculative,
                                     swapped=op.swapped,
                                     critical=op.critical)
        return ops if out is None else out


def fault_sweep(workload_name: str, rates: Sequence[float],
                fu_class: FUClass = FUClass.IALU,
                policy_kind: str = "lut-4",
                scale: Optional[int] = None,
                mode: str = "info",
                seed: int = 0,
                config=None) -> Dict[float, float]:
    """Steering savings of one policy as a function of fault rate.

    Simulates the workload once, captures its issue stream, then
    replays the same stream into one faulted evaluator per rate (plus
    an unfaulted ``original`` baseline), so every point of the curve
    sees identical traffic.  Returns ``{rate: fractional saving}`` —
    under rising fault pressure the steering decisions degrade toward
    random and the curve falls toward zero.
    """
    from ..core.statistics import paper_statistics
    from ..core.steering import PolicyEvaluator, make_policy
    from ..streams import LiveSource, capture, drive
    from ..workloads import workload

    load = workload(workload_name)
    live = LiveSource(load.build(scale), config)
    stream = capture(live, (fu_class,))

    stats = paper_statistics(fu_class)
    num_modules = live.config.modules(fu_class)
    baseline = PolicyEvaluator(fu_class, num_modules,
                               make_policy("original", fu_class,
                                           num_modules, stats=stats))
    evaluators = {}
    for rate in rates:
        injector = FaultInjector(rate, mode=mode, seed=seed)
        policy = make_policy(policy_kind, fu_class, num_modules,
                             stats=stats)
        evaluators[rate] = PolicyEvaluator(fu_class, num_modules, policy,
                                           fault_injector=injector)
    drive(stream, [baseline, *evaluators.values()])
    base_bits = baseline.totals().switched_bits
    curve = {}
    for rate, evaluator in evaluators.items():
        bits = evaluator.totals().switched_bits
        curve[rate] = (1.0 - bits / base_bits) if base_bits else 0.0
    return curve
