"""Generic fault-tolerant worker-process pool.

The scheduling core extracted from the campaign runner so other drivers
(the parallel Figure 4 runner, future sweeps) get the same guarantees
without re-implementing them:

* **crash isolation** — a worker segfault, OOM kill, or exception fails
  that one task (with the captured traceback or exit code), never the
  run;
* **per-task timeouts** — an overdue worker is SIGKILLed and the task
  retried;
* **bounded retries with full-jitter exponential backoff** — transient
  failures get ``retries`` extra attempts, each delayed a uniformly
  random amount of the ``backoff * 2**(n-1)`` ceiling (deterministic
  backoff synchronises retry storms across a fleet of workers; the
  jitter decorrelates them — pass ``jitter=False`` for the old
  fixed-delay behaviour in deterministic tests);
* **graceful shutdown** — on any exit (including ``KeyboardInterrupt``)
  every in-flight worker is killed and collected.

A task is a :class:`PoolItem` — a string ``key`` plus an arbitrary
picklable ``payload`` — and the pool runs ``worker(payload)`` in a
child process for each.  Outcomes are delivered through the caller's
``on_done(item, elapsed, payload)`` / ``on_failed(item, elapsed,
error)`` callbacks, invoked in the parent as results land.

Chaos hooks (for the failure-path tests and CI smoke): workers honour
``REPRO_CAMPAIGN_TEST_DELAY`` (sleep that many seconds before working),
``REPRO_CAMPAIGN_TEST_CRASH`` and ``REPRO_CAMPAIGN_TEST_HANG`` (key
substrings; matching workers SIGKILL themselves / sleep forever).
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

DELAY_ENV = "REPRO_CAMPAIGN_TEST_DELAY"
CRASH_ENV = "REPRO_CAMPAIGN_TEST_CRASH"
HANG_ENV = "REPRO_CAMPAIGN_TEST_HANG"


def full_jitter_delay(base: float, attempt: int, jitter: bool = True,
                      rng: Optional[random.Random] = None) -> float:
    """Retry delay before attempt ``attempt + 1``: full-jitter backoff.

    The ceiling grows exponentially (``base * 2**(attempt-1)``) and the
    actual delay is drawn uniformly from ``[0, ceiling]`` — the "full
    jitter" scheme, which keeps the expected delay at half the ceiling
    while decorrelating retries across independent workers so a shared
    failure (an overloaded host, a briefly unavailable shared
    directory) does not produce synchronised thundering-herd retries.
    ``jitter=False`` returns the deterministic ceiling itself.
    """
    ceiling = base * (2 ** (max(1, attempt) - 1))
    if not jitter:
        return ceiling
    return (rng or random).uniform(0.0, ceiling)


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Serialise an exception (plus any diagnostic snapshot)."""
    payload = {"type": type(exc).__name__, "message": str(exc),
               "traceback": traceback.format_exc()}
    snapshot = getattr(exc, "snapshot", None)
    if snapshot is not None and hasattr(snapshot, "to_dict"):
        payload["snapshot"] = snapshot.to_dict()
    return payload


@dataclass
class PoolItem:
    """One schedulable unit: an identifying key plus worker input."""

    key: str
    payload: Any
    attempt: int = 1
    not_before: float = 0.0


@dataclass
class _Running:
    item: PoolItem
    process: Any
    conn: Any
    started: float
    deadline: float
    message: Optional[Tuple[str, Any]] = None


def _child_main(worker: Callable[[Any], Any], key: str, payload: Any,
                conn) -> None:
    """Worker process entry: run one task, ship the outcome back."""
    try:
        delay = float(os.environ.get(DELAY_ENV, "0") or 0)
        if delay > 0:
            time.sleep(delay)
        crash = os.environ.get(CRASH_ENV)
        if crash and crash in key:
            os.kill(os.getpid(), signal.SIGKILL)
        hang = os.environ.get(HANG_ENV)
        if hang and hang in key:
            while True:
                time.sleep(3600)
        result = worker(payload)
        conn.send(("ok", result))
    except BaseException as exc:  # the parent must never inherit this
        try:
            conn.send(("error", error_payload(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class ProcessTaskPool:
    """Runs ``worker(payload)`` per task across isolated processes.

    ``worker`` must be picklable under the spawn start method (a module
    top-level function); with fork any callable works.  Callbacks run
    in the parent, so they may touch non-picklable state (manifests,
    result aggregates) freely.
    """

    def __init__(self, worker: Callable[[Any], Any],
                 max_workers: int = 2,
                 task_timeout: float = 600.0,
                 retries: int = 1,
                 backoff: float = 0.5,
                 jitter: bool = True):
        self.worker = worker
        self.max_workers = max(1, max_workers)
        self.task_timeout = task_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.jitter = jitter
        if "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context("spawn")

    # ----- lifecycle of one worker ----------------------------------------

    def _launch(self, item: PoolItem) -> _Running:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_child_main,
            args=(self.worker, item.key, item.payload, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        now = time.monotonic()
        return _Running(item=item, process=process, conn=parent_conn,
                        started=now, deadline=now + self.task_timeout)

    @staticmethod
    def _reap(running: _Running) -> None:
        """Close the pipe and collect the process, forcefully if needed."""
        try:
            running.conn.close()
        except OSError:
            pass
        running.process.join(timeout=5)
        if running.process.is_alive():  # pragma: no cover - defensive
            running.process.kill()
            running.process.join(timeout=5)

    def _requeue_or_fail(self, item: PoolItem, elapsed: float,
                         error: Dict[str, Any],
                         pending: List[PoolItem],
                         on_failed: Callable[[PoolItem, float,
                                              Dict[str, Any]], None]) -> bool:
        """Apply the retry policy; returns True when the task finished
        (failed for good)."""
        if item.attempt <= self.retries:
            delay = full_jitter_delay(self.backoff, item.attempt,
                                      jitter=self.jitter)
            item.attempt += 1
            item.not_before = time.monotonic() + delay
            pending.append(item)
            return False
        on_failed(item, elapsed, error)
        return True

    # ----- the scheduler loop ---------------------------------------------

    def run(self, items: List[PoolItem],
            on_done: Callable[[PoolItem, float, Any], None],
            on_failed: Callable[[PoolItem, float, Dict[str, Any]], None],
            limit: int = 0) -> None:
        """Drain ``items`` through the pool; ``limit`` > 0 stops after
        that many tasks finish (done or failed for good)."""
        pending = list(items)
        running: List[_Running] = []
        finished = 0
        try:
            while pending or running:
                if limit and finished >= limit and not running:
                    return
                now = time.monotonic()

                # launch ready tasks up to capacity (unless limited out)
                if not limit or finished < limit:
                    ready = [p for p in pending if p.not_before <= now]
                    while ready and len(running) < self.max_workers:
                        item = ready.pop(0)
                        pending.remove(item)
                        running.append(self._launch(item))

                if not running:
                    # everything pending is backing off; sleep to the
                    # earliest wake-up
                    wake = min(p.not_before for p in pending)
                    time.sleep(min(max(wake - now, 0.01), 1.0))
                    continue

                # wait for output, a death, or the nearest deadline
                budget = min(r.deadline for r in running) - now
                timeout = min(max(budget, 0.01), 0.25)
                ready_conns = _conn_wait([r.conn for r in running],
                                         timeout=timeout)
                for run_item in running:
                    if run_item.conn in ready_conns:
                        try:
                            run_item.message = run_item.conn.recv()
                        except (EOFError, OSError):
                            run_item.message = None  # died silently

                now = time.monotonic()
                still_running: List[_Running] = []
                for run_item in running:
                    item = run_item.item
                    elapsed = now - run_item.started
                    if run_item.message is None \
                            and not run_item.process.is_alive():
                        # a sibling can send its result and exit while
                        # this round is busy recv()ing another worker's
                        # message; once dead, anything it sent is fully
                        # buffered, so one poll() here is authoritative —
                        # without it a clean exit reads as WorkerCrashed
                        try:
                            if run_item.conn.poll():
                                run_item.message = run_item.conn.recv()
                        except (EOFError, OSError):
                            pass
                    if run_item.message is not None:
                        kind, payload = run_item.message
                        self._reap(run_item)
                        if kind == "ok":
                            on_done(item, elapsed, payload)
                            finished += 1
                        else:
                            if self._requeue_or_fail(item, elapsed, payload,
                                                     pending, on_failed):
                                finished += 1
                    elif (run_item.conn in ready_conns
                          or not run_item.process.is_alive()):
                        # EOF (or a dead child) without a message: the
                        # worker died before reporting (segfault, OOM
                        # kill, os._exit)
                        self._reap(run_item)
                        error = {"type": "WorkerCrashed",
                                 "message": "worker died without reporting"
                                 f" (exit code"
                                 f" {run_item.process.exitcode})"}
                        if self._requeue_or_fail(item, elapsed, error,
                                                 pending, on_failed):
                            finished += 1
                    elif now >= run_item.deadline:
                        run_item.process.kill()
                        self._reap(run_item)
                        error = {"type": "TaskTimeout",
                                 "message": f"exceeded {self.task_timeout}s"
                                 f" task timeout (attempt {item.attempt})"}
                        if self._requeue_or_fail(item, elapsed, error,
                                                 pending, on_failed):
                            finished += 1
                    else:
                        still_running.append(run_item)
                running = still_running
        finally:
            for run_item in running:
                run_item.process.kill()
                self._reap(run_item)


__all__ = ["CRASH_ENV", "DELAY_ENV", "HANG_ENV", "PoolItem",
           "ProcessTaskPool", "error_payload", "full_jitter_delay"]
