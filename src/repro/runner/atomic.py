"""Atomic file writes: write-temp-then-rename with durability.

Every JSON/report artifact the repository produces (campaign manifests,
``BENCH_*.json``, CLI report files) goes through these helpers so a
crash or SIGKILL mid-write can never leave a half-written file — the
reader sees either the previous complete version or the new one.

``os.replace`` is atomic on POSIX and Windows when source and target
are on the same filesystem, which is guaranteed here by creating the
temporary file in the target's directory.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The data is flushed and fsynced before the rename so the journal
    survives power loss as well as process death.
    """
    target = Path(path)
    tmp_name = None
    try:
        # mkstemp sits inside the try: a KeyboardInterrupt delivered
        # between creating the temp file and entering a cleanup block
        # is exactly the stale-temp leak the interrupt contract forbids
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{target.name}.", suffix=".tmp",
            dir=str(target.parent))
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # never leave temp droppings behind, even on KeyboardInterrupt
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        raise


def atomic_write_json(path: PathLike, payload: Any, indent: int = 2) -> None:
    """Serialise ``payload`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent,
                                       sort_keys=False) + "\n")


def atomic_append_jsonl(path: PathLike, records: list) -> None:
    """Atomically rewrite a JSONL file from a full record list.

    JSONL journals here are small (one record per campaign task), so
    the whole file is rewritten on every update rather than appended —
    an append interrupted mid-line corrupts the journal, a rename never
    does.
    """
    text = "".join(json.dumps(record, sort_keys=False) + "\n"
                   for record in records)
    atomic_write_text(path, text)
