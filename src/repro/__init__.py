"""repro — reproduction of *Dynamic Functional Unit Assignment for Low
Power* (Haga, Reeves, Barua, Marculescu; DATE 2003).

The package is layered bottom-up:

* :mod:`repro.isa` — a MIPS-like mini ISA with a two-pass assembler;
* :mod:`repro.cpu` — an out-of-order Tomasulo cycle simulator (the
  SimpleScalar ``sim-outorder`` stand-in) emitting per-cycle operand
  issue groups;
* :mod:`repro.core` — the paper's contribution: information bits, the
  Hamming-distance power model, steering policies (Full/1-bit Hamming,
  LUT, Original), LUT synthesis, and operand swapping;
* :mod:`repro.compiler` — profile-guided static operand swapping;
* :mod:`repro.workloads` — SPEC95-analogue kernels and calibrated
  statistical stream generators;
* :mod:`repro.analysis` — Table 1/2/3 collectors, the Figure 4 energy
  experiment driver, and report rendering;
* :mod:`repro.telemetry` — metrics registry, time-series sampling, and
  Chrome-trace pipeline event export (stdlib-only, importable from
  every other layer).

Quick start::

    from repro import assemble, Simulator, PolicyEvaluator, make_policy
    from repro.core import paper_statistics
    from repro.isa.instructions import FUClass

    program = assemble(SOURCE)
    stats = paper_statistics(FUClass.IALU)
    policy = make_policy("lut-4", FUClass.IALU, 4, stats=stats)
    evaluator = PolicyEvaluator(FUClass.IALU, 4, policy)
    sim = Simulator(program)
    sim.add_listener(evaluator)
    sim.run()
    print(evaluator.totals().bits_per_operation)
"""

from . import (analysis, compiler, core, cpu, isa, runner, streams, telemetry,
               workloads)
from .analysis import (chip_level_estimate, run_figure4,
                       run_multiplier_experiment)
from .core import (FUPowerModel, HardwareSwapper, LUTPolicy,
                   MultiplierSwapper, PolicyEvaluator, SteeringLUT,
                   build_lut, make_policy, paper_statistics)
from .cpu import (MachineConfig, Simulator, TraceCollector, default_config,
                  run_program, simulate)
from .isa import Program, assemble
from .runner import (CampaignRunner, CampaignSpec, FaultInjector,
                     fault_sweep, run_campaign)
from .streams import (IssueSource, LiveSource, MemorySource, ReplaySource,
                      SyntheticSource, capture, drive, record)
from .telemetry import (MetricsRegistry, PipelineTracer, TelemetryConfig,
                        TelemetrySession, validate_chrome_trace)
from .workloads import SyntheticStream, all_workloads, workload

# single source of truth is the installed distribution metadata
# (pyproject.toml); the literal fallback covers PYTHONPATH=src runs of
# an uninstalled checkout and must match pyproject's version field
try:
    from importlib.metadata import PackageNotFoundError as _PkgNotFound
    from importlib.metadata import version as _dist_version
    __version__ = _dist_version("repro")
except _PkgNotFound:
    __version__ = "1.0.0"
del _PkgNotFound, _dist_version

__all__ = [
    "analysis", "compiler", "core", "cpu", "isa", "runner", "streams",
    "telemetry", "workloads",
    "IssueSource", "LiveSource", "MemorySource", "ReplaySource",
    "SyntheticSource", "capture", "drive", "record",
    "CampaignRunner", "CampaignSpec", "FaultInjector", "fault_sweep",
    "run_campaign",
    "MetricsRegistry", "PipelineTracer", "TelemetryConfig",
    "TelemetrySession", "validate_chrome_trace",
    "chip_level_estimate", "run_figure4", "run_multiplier_experiment",
    "FUPowerModel", "HardwareSwapper", "LUTPolicy", "MultiplierSwapper",
    "PolicyEvaluator", "SteeringLUT", "build_lut", "make_policy",
    "paper_statistics",
    "MachineConfig", "Simulator", "TraceCollector", "default_config",
    "run_program", "simulate",
    "Program", "assemble",
    "SyntheticStream", "all_workloads", "workload",
    "__version__",
]
