"""Two-pass text assembler for the mini ISA.

Supported syntax (MIPS-flavoured)::

    .data
    arr:    .word 1, 2, 3
    vals:   .double 1.5, -2.25
    buf:    .space 64
    .text
    main:
        li   r1, 10
        la   r2, arr
    loop:
        lw   r3, 0(r2)
        add  r4, r4, r3
        addi r2, r2, 4
        addi r1, r1, -1
        bne  r1, r0, loop
        halt

Comments start with ``#`` or ``;``.  Pseudo-instructions ``li`` (load
32-bit constant), ``la`` (load data symbol address), ``mov`` and ``nop``
expand to real instructions, so label arithmetic stays exact.

Immediate handling mirrors MIPS: arithmetic/compare immediates are
16-bit sign-extended, logical immediates are 16-bit zero-extended, and
shift amounts are 5 bits.  The assembler stores the final 32-bit
*image* in ``Instruction.imm`` so simulators never re-interpret it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from . import encoding
from .instructions import (Instruction, OpcodeInfo, OperandKind, fp_reg,
                           int_reg, opcode)
from .program import DATA_BASE, DataImage, Program, ProgramError


class AssemblerError(ProgramError):
    """Raised with a line number for any syntactic or semantic error."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_LOGICAL_IMM = {"andi", "ori", "xori"}
_SHIFT_IMM = {"slli", "srli", "srai"}

# Operand register-bank signatures that differ from the opcode's own
# operand kind: (dest_bank, src_banks...).  'i' = integer, 'f' = float.
_BANK_OVERRIDES: Dict[str, Tuple[str, ...]] = {
    "flt": ("i", "f", "f"),
    "fgt": ("i", "f", "f"),
    "fle": ("i", "f", "f"),
    "fge": ("i", "f", "f"),
    "feq": ("i", "f", "f"),
    "cvtif": ("f", "i"),
    "cvtfi": ("i", "f"),
    "cvtsd": ("f", "f"),
}

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line_number, f"bad integer '{token}'") from None


def _parse_float(token: str, line_number: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(line_number, f"bad float '{token}'") from None


class Assembler:
    """Assembles source text into a :class:`Program`."""

    def __init__(self, name: str = "program"):
        self.name = name

    def assemble(self, source: str) -> Program:
        data_lines, text_lines = self._split_sections(source)
        data, symbols = self._assemble_data(data_lines)
        instructions, labels = self._assemble_text(text_lines, symbols)
        program = Program(instructions, labels=labels, symbols=symbols,
                          data=data, name=self.name)
        program.validate()
        return program

    # ----- section splitting -------------------------------------------------

    def _split_sections(self, source: str):
        data_lines: List[Tuple[int, str]] = []
        text_lines: List[Tuple[int, str]] = []
        section = "text"
        for number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line == ".data":
                section = "data"
                continue
            if line == ".text":
                section = "text"
                continue
            (data_lines if section == "data" else text_lines).append((number, line))
        return data_lines, text_lines

    # ----- data section ------------------------------------------------------

    def _assemble_data(self, lines: Sequence[Tuple[int, str]]):
        data = DataImage()
        symbols: Dict[str, int] = {}
        cursor = DATA_BASE
        for number, line in lines:
            label, rest = self._take_label(line, number)
            if label is not None:
                if label in symbols:
                    raise AssemblerError(number, f"duplicate data symbol '{label}'")
            if not rest:
                if label is not None:
                    symbols[label] = cursor
                continue
            parts = rest.split(None, 1)
            directive = parts[0]
            arguments = parts[1] if len(parts) > 1 else ""
            if directive == ".word":
                cursor = self._align(cursor, 4)
                if label is not None:
                    symbols[label] = cursor
                for token in self._split_args(arguments, number):
                    data.store_word(cursor, encoding.wrap_int(_parse_int(token, number)))
                    cursor += 4
            elif directive == ".double":
                cursor = self._align(cursor, 8)
                if label is not None:
                    symbols[label] = cursor
                for token in self._split_args(arguments, number):
                    data.store_double(cursor, encoding.float_to_bits(
                        _parse_float(token, number)))
                    cursor += 8
            elif directive == ".space":
                cursor = self._align(cursor, 8)
                if label is not None:
                    symbols[label] = cursor
                size = _parse_int(arguments.strip(), number)
                if size < 0:
                    raise AssemblerError(number, ".space size must be non-negative")
                cursor += size
            elif directive == ".align":
                amount = _parse_int(arguments.strip(), number)
                cursor = self._align(cursor, 1 << amount)
                if label is not None:
                    symbols[label] = cursor
            else:
                raise AssemblerError(number, f"unknown data directive '{directive}'")
        return data, symbols

    @staticmethod
    def _align(cursor: int, boundary: int) -> int:
        remainder = cursor % boundary
        return cursor if remainder == 0 else cursor + boundary - remainder

    @staticmethod
    def _split_args(arguments: str, line_number: int) -> List[str]:
        tokens = [token.strip() for token in arguments.split(",")]
        if not arguments.strip() or any(not token for token in tokens):
            raise AssemblerError(line_number, "empty argument list")
        return tokens

    def _take_label(self, line: str, number: int):
        if ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblerError(number, f"bad label '{label}'")
            return label, rest.strip()
        return None, line

    # ----- text section ------------------------------------------------------

    def _assemble_text(self, lines: Sequence[Tuple[int, str]],
                       symbols: Dict[str, int]):
        instructions: List[Instruction] = []
        labels: Dict[str, int] = {}
        pending_branches: List[Tuple[int, str, int]] = []  # (instr idx, label, line)
        for number, line in lines:
            label, rest = self._take_label(line, number)
            if label is not None:
                if label in labels:
                    raise AssemblerError(number, f"duplicate label '{label}'")
                labels[label] = len(instructions)
            if not rest:
                continue
            expanded = self._parse_statement(rest, number, symbols)
            for instr, branch_label in expanded:
                if branch_label is not None:
                    pending_branches.append((len(instructions), branch_label, number))
                instructions.append(instr)
        for index, target_label, number in pending_branches:
            if target_label not in labels:
                raise AssemblerError(number, f"undefined label '{target_label}'")
            instructions[index].target = labels[target_label]
            instructions[index].label = target_label
        return instructions, labels

    def _parse_statement(self, statement: str, number: int,
                         symbols: Dict[str, int]):
        parts = statement.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = ([token.strip() for token in operand_text.split(",")]
                    if operand_text.strip() else [])
        if mnemonic in ("li", "la", "mov", "nop"):
            return self._expand_pseudo(mnemonic, operands, number, symbols)
        try:
            info = opcode(mnemonic)
        except ValueError:
            raise AssemblerError(number, f"unknown mnemonic '{mnemonic}'") from None
        return [(self._parse_real(info, operands, number), self._branch_label(info, operands))]

    @staticmethod
    def _branch_label(info: OpcodeInfo, operands: Sequence[str]) -> Optional[str]:
        if info.is_branch:
            return operands[-1] if operands else None
        if info.is_jump:
            return operands[0] if operands else None
        return None

    # ----- pseudo-instructions ------------------------------------------------

    def _expand_pseudo(self, mnemonic: str, operands: Sequence[str],
                       number: int, symbols: Dict[str, int]):
        if mnemonic == "nop":
            if operands:
                raise AssemblerError(number, "nop takes no operands")
            instr = Instruction(opcode("add"), dest=int_reg(0),
                                src1=int_reg(0), src2=int_reg(0))
            return [(instr, None)]
        if mnemonic == "mov":
            if len(operands) != 2:
                raise AssemblerError(number, "mov needs 2 operands")
            dest = self._parse_reg(operands[0], "i", number)
            src = self._parse_reg(operands[1], "i", number)
            instr = Instruction(opcode("add"), dest=dest, src1=src, src2=int_reg(0))
            return [(instr, None)]
        if mnemonic == "li":
            if len(operands) != 2:
                raise AssemblerError(number, "li needs 2 operands")
            dest = self._parse_reg(operands[0], "i", number)
            value = _parse_int(operands[1], number)
            return [(instr, None) for instr in self._load_constant(dest, value, number)]
        if mnemonic == "la":
            if len(operands) != 2:
                raise AssemblerError(number, "la needs 2 operands")
            dest = self._parse_reg(operands[0], "i", number)
            symbol = operands[1]
            if symbol not in symbols:
                raise AssemblerError(number, f"undefined data symbol '{symbol}'")
            return [(instr, None)
                    for instr in self._load_constant(dest, symbols[symbol], number)]
        raise AssemblerError(number, f"unknown pseudo '{mnemonic}'")

    def _load_constant(self, dest: int, value: int, number: int) -> List[Instruction]:
        image = encoding.wrap_int(value)
        signed = encoding.to_signed(image)
        if -32768 <= signed <= 32767:
            return [Instruction(opcode("addi"), dest=dest, src1=int_reg(0),
                                imm=image)]
        high = (image >> 16) & 0xFFFF
        low = image & 0xFFFF
        sequence = [Instruction(opcode("lui"), dest=dest, imm=high)]
        if low:
            sequence.append(Instruction(opcode("ori"), dest=dest, src1=dest, imm=low))
        return sequence

    # ----- real instructions ---------------------------------------------------

    def _parse_real(self, info: OpcodeInfo, operands: Sequence[str],
                    number: int) -> Instruction:
        if info.name == "halt":
            self._expect_count(info, operands, 0, number)
            return Instruction(info)
        if info.is_jump:
            self._expect_count(info, operands, 1, number)
            return Instruction(info)
        if info.is_branch:
            self._expect_count(info, operands, 3, number)
            src1 = self._parse_reg(operands[0], "i", number)
            src2 = self._parse_reg(operands[1], "i", number)
            return Instruction(info, src1=src1, src2=src2)
        if info.is_memory:
            return self._parse_memory(info, operands, number)
        if info.name == "lui":
            self._expect_count(info, operands, 2, number)
            dest = self._parse_reg(operands[0], "i", number)
            imm = _parse_int(operands[1], number)
            if not (0 <= imm <= 0xFFFF):
                raise AssemblerError(number, "lui immediate must fit 16 bits")
            return Instruction(info, dest=dest, imm=imm)
        banks = _BANK_OVERRIDES.get(info.name)
        default_bank = "f" if info.operand_kind is OperandKind.FLOAT else "i"
        if info.has_immediate:
            self._expect_count(info, operands, 3, number)
            dest = self._parse_reg(operands[0], default_bank, number)
            src1 = self._parse_reg(operands[1], default_bank, number)
            imm = self._immediate_image(info, operands[2], number)
            return Instruction(info, dest=dest, src1=src1, imm=imm)
        if not info.reads_two_regs:
            self._expect_count(info, operands, 2, number)
            dest_bank = banks[0] if banks else default_bank
            src_bank = banks[1] if banks else default_bank
            dest = self._parse_reg(operands[0], dest_bank, number)
            src1 = self._parse_reg(operands[1], src_bank, number)
            return Instruction(info, dest=dest, src1=src1)
        self._expect_count(info, operands, 3, number)
        dest_bank = banks[0] if banks else default_bank
        src_banks = banks[1:] if banks else (default_bank, default_bank)
        dest = self._parse_reg(operands[0], dest_bank, number)
        src1 = self._parse_reg(operands[1], src_banks[0], number)
        src2 = self._parse_reg(operands[2], src_banks[1], number)
        return Instruction(info, dest=dest, src1=src1, src2=src2)

    def _parse_memory(self, info: OpcodeInfo, operands: Sequence[str],
                      number: int) -> Instruction:
        self._expect_count(info, operands, 2, number)
        value_bank = "f" if info.name in ("ld", "sd") else "i"
        match = _MEM_RE.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblerError(number, f"bad memory operand '{operands[1]}'")
        offset = _parse_int(match.group(1), number)
        if not (-32768 <= offset <= 32767):
            raise AssemblerError(number, "memory offset must fit 16 bits signed")
        base = self._parse_reg(match.group(2), "i", number)
        imm = encoding.wrap_int(offset)
        if info.is_load:
            dest = self._parse_reg(operands[0], value_bank, number)
            return Instruction(info, dest=dest, src1=base, imm=imm)
        value = self._parse_reg(operands[0], value_bank, number)
        return Instruction(info, src1=base, src2=value, imm=imm)

    def _immediate_image(self, info: OpcodeInfo, token: str, number: int) -> int:
        value = _parse_int(token, number)
        if info.name in _SHIFT_IMM:
            if not (0 <= value <= 31):
                raise AssemblerError(number, "shift amount must be 0..31")
            return value
        if info.name in _LOGICAL_IMM:
            if not (0 <= value <= 0xFFFF):
                raise AssemblerError(number, "logical immediate must fit 16 bits unsigned")
            return value
        if not (-32768 <= value <= 32767):
            raise AssemblerError(number, "immediate must fit 16 bits signed")
        return encoding.wrap_int(value)

    @staticmethod
    def _expect_count(info: OpcodeInfo, operands: Sequence[str],
                      expected: int, number: int) -> None:
        if len(operands) != expected:
            raise AssemblerError(
                number, f"'{info.name}' expects {expected} operands, got {len(operands)}")

    def _parse_reg(self, token: str, bank: str, number: int) -> int:
        token = token.strip()
        match = re.match(r"^([rf])(\d+)$", token)
        if not match:
            raise AssemblerError(number, f"bad register '{token}'")
        kind, index_text = match.groups()
        expected_kind = "r" if bank == "i" else "f"
        if kind != expected_kind:
            want = "integer" if bank == "i" else "floating point"
            raise AssemblerError(number, f"expected {want} register, got '{token}'")
        index = int(index_text)
        try:
            return int_reg(index) if kind == "r" else fp_reg(index)
        except ValueError as error:
            raise AssemblerError(number, str(error)) from None


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    return Assembler(name=name).assemble(source)
