"""Program representation: assembled code plus an initial data image.

A :class:`Program` is what the assembler produces and what both the
out-of-order simulator and the in-order golden model execute.  Code is a
flat list of :class:`~repro.isa.instructions.Instruction`; data is a
sparse byte image with word (4-byte) and double (8-byte) convenience
accessors used when building initial memory contents.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from . import encoding
from .instructions import Instruction


class ProgramError(ValueError):
    """Raised for malformed programs (bad labels, unaligned data, ...)."""


DATA_BASE = 0x1000_0000
STACK_BASE = 0x7FFF_F000


@dataclass
class DataImage:
    """Sparse initial memory contents, byte addressed, little endian."""

    bytes_: Dict[int, int] = field(default_factory=dict)

    def store_byte(self, address: int, value: int) -> None:
        self.bytes_[address] = value & 0xFF

    def load_byte(self, address: int) -> int:
        return self.bytes_.get(address, 0)

    def store_word(self, address: int, bits: int) -> None:
        """Store a 32-bit image at a 4-byte-aligned address."""
        if address % 4:
            raise ProgramError(f"unaligned word store at 0x{address:x}")
        for i in range(4):
            self.store_byte(address + i, (bits >> (8 * i)) & 0xFF)

    def load_word(self, address: int) -> int:
        if address % 4:
            raise ProgramError(f"unaligned word load at 0x{address:x}")
        return sum(self.load_byte(address + i) << (8 * i) for i in range(4))

    def store_double(self, address: int, bits: int) -> None:
        """Store a 64-bit image at an 8-byte-aligned address."""
        if address % 8:
            raise ProgramError(f"unaligned double store at 0x{address:x}")
        for i in range(8):
            self.store_byte(address + i, (bits >> (8 * i)) & 0xFF)

    def load_double(self, address: int) -> int:
        if address % 8:
            raise ProgramError(f"unaligned double load at 0x{address:x}")
        return sum(self.load_byte(address + i) << (8 * i) for i in range(8))

    def store_float_value(self, address: int, value: float) -> None:
        self.store_double(address, encoding.float_to_bits(value))

    def store_int_value(self, address: int, value: int) -> None:
        self.store_word(address, encoding.to_unsigned(value))

    def copy(self) -> "DataImage":
        return DataImage(dict(self.bytes_))


@dataclass
class Program:
    """An assembled program: code, resolved labels, and data image."""

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    data: DataImage = field(default_factory=DataImage)
    name: str = "program"

    def __post_init__(self) -> None:
        for index, instr in enumerate(self.instructions):
            instr.address = index

    def __len__(self) -> int:
        return len(self.instructions)

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError(f"undefined label '{label}'") from None

    def symbol_address(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise ProgramError(f"undefined data symbol '{symbol}'") from None

    def fingerprint(self) -> str:
        """Content hash of the code and initial data image.

        Deliberately excludes ``name``: two identically assembled
        programs are the same cache entry regardless of labelling,
        while a compiler-swapped variant differs in instruction content
        (operand order / ``static_swapped``) and therefore hashes — and
        caches — separately.
        """
        hasher = hashlib.sha256()
        for instr in self.instructions:
            hasher.update(repr((instr.op.name, instr.dest, instr.src1,
                                instr.src2, instr.imm, instr.target,
                                instr.static_swapped)).encode("ascii"))
        for address in sorted(self.data.bytes_):
            hasher.update(b"%d:%d;" % (address, self.data.bytes_[address]))
        return hasher.hexdigest()[:16]

    def validate(self) -> None:
        """Check referential integrity of control-flow targets."""
        limit = len(self.instructions)
        for instr in self.instructions:
            if instr.op.is_control and not instr.op.name == "halt":
                if instr.target is None:
                    raise ProgramError(f"unresolved control target in '{instr}'")
                if not (0 <= instr.target < limit):
                    raise ProgramError(
                        f"control target {instr.target} out of range in '{instr}'")

    def listing(self) -> str:
        """Human-readable disassembly with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for index, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"  {index:5d}  {instr}")
        return "\n".join(lines)
