"""Instruction set of the mini ISA.

The instruction set is modelled on SimpleScalar's MIPS-like PISA target,
which is what the paper simulates: 32 general-purpose 32-bit integer
registers (``r0`` hardwired to zero) and 32 64-bit floating point
registers.  Each opcode carries the metadata the rest of the system
needs:

* which functional-unit class executes it (the paper steers IALU and
  FPAU operations and swaps multiplier operands);
* whether it is commutative in hardware (operands may be swapped by the
  router) — immediate forms are never hardware-swappable because the
  immediate is architecturally always the second operand;
* whether it is *compiler*-commutable via an opcode change (e.g. the
  paper's ``>`` versus ``<=`` example);
* its execution latency in cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

ZERO_REG = 0  # r0 reads as zero and ignores writes


class FUClass(enum.Enum):
    """Functional-unit classes of the simulated machine.

    The paper's default configuration has 4 IALUs, 4 FPAUs, one integer
    multiplier and one floating point multiplier.  Loads and stores
    occupy a memory port after their address is generated on an IALU,
    matching sim-outorder's split of memory operations.
    """

    IALU = "ialu"
    IMULT = "imult"
    FPAU = "fpau"
    FPMULT = "fpmult"
    LSU = "lsu"


# Dense per-member index for array-based lookups on simulator hot paths:
# Enum.__hash__ is a Python-level call, and dict-by-member lookups show
# up in cycle-loop profiles.  ``FUClass.IALU.index`` is stable within a
# process and matches iteration order.
for _index, _fu in enumerate(FUClass):
    _fu.index = _index
del _index, _fu


class OperandKind(enum.Enum):
    """Datatype of an instruction's register operands."""

    INT = "int"
    FLOAT = "float"


def int_reg(index: int) -> int:
    """Architectural register id of integer register ``r<index>``."""
    if not (0 <= index < NUM_INT_REGS):
        raise ValueError(f"no integer register r{index}")
    return index


def fp_reg(index: int) -> int:
    """Architectural register id of floating point register ``f<index>``."""
    if not (0 <= index < NUM_FP_REGS):
        raise ValueError(f"no floating point register f{index}")
    return NUM_INT_REGS + index


def is_fp_reg(reg: int) -> bool:
    """True when an architectural register id names an FP register."""
    return reg >= NUM_INT_REGS


def reg_name(reg: int) -> str:
    """Human-readable name (``r5`` / ``f3``) of an architectural id."""
    if not (0 <= reg < NUM_ARCH_REGS):
        raise ValueError(f"no architectural register {reg}")
    if is_fp_reg(reg):
        return f"f{reg - NUM_INT_REGS}"
    return f"r{reg}"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    name: str
    fu_class: FUClass
    operand_kind: OperandKind
    commutative: bool = False
    has_immediate: bool = False
    compiler_swap_to: Optional[str] = None
    latency: int = 1
    is_branch: bool = False
    is_jump: bool = False
    is_load: bool = False
    is_store: bool = False
    writes_dest: bool = True
    reads_two_regs: bool = True

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def hardware_swappable(self) -> bool:
        """May the router swap the two source operands dynamically?"""
        return self.commutative and not self.has_immediate

    @property
    def compiler_swappable(self) -> bool:
        """May the compiler statically reorder the source operands?

        True for register-form commutative opcodes and for opcodes with a
        commuted twin (``compiler_swap_to``).  Immediate forms are not
        swappable: machine encoding fixes the immediate as operand two —
        the paper's third compiler disadvantage.
        """
        if self.has_immediate:
            return False
        return self.commutative or self.compiler_swap_to is not None


_OPCODES: Dict[str, OpcodeInfo] = {}


def _define(info: OpcodeInfo) -> None:
    if info.name in _OPCODES:
        raise ValueError(f"duplicate opcode {info.name}")
    _OPCODES[info.name] = info


def opcode(name: str) -> OpcodeInfo:
    """Look up an opcode by mnemonic."""
    try:
        return _OPCODES[name]
    except KeyError:
        raise ValueError(f"unknown opcode '{name}'") from None


def all_opcodes() -> Tuple[OpcodeInfo, ...]:
    """All defined opcodes, in definition order."""
    return tuple(_OPCODES.values())


def _int_alu(name: str, commutative: bool = False, swap_to: Optional[str] = None) -> None:
    _define(OpcodeInfo(name, FUClass.IALU, OperandKind.INT,
                       commutative=commutative, compiler_swap_to=swap_to))


def _int_alu_imm(name: str) -> None:
    _define(OpcodeInfo(name, FUClass.IALU, OperandKind.INT,
                       has_immediate=True, reads_two_regs=False))


# --- integer ALU, register forms ------------------------------------------
_int_alu("add", commutative=True)
_int_alu("sub")
_int_alu("and", commutative=True)
_int_alu("or", commutative=True)
_int_alu("xor", commutative=True)
_int_alu("nor", commutative=True)
_int_alu("sll")
_int_alu("srl")
_int_alu("sra")
_int_alu("slt", swap_to="sgt")
_int_alu("sgt", swap_to="slt")
_int_alu("sle", swap_to="sge")
_int_alu("sge", swap_to="sle")
_int_alu("seq", commutative=True)
_int_alu("sne", commutative=True)

# --- integer ALU, immediate forms ------------------------------------------
_int_alu_imm("addi")
_int_alu_imm("subi")
_int_alu_imm("andi")
_int_alu_imm("ori")
_int_alu_imm("xori")
_int_alu_imm("slli")
_int_alu_imm("srli")
_int_alu_imm("srai")
_int_alu_imm("slti")
_int_alu_imm("sgti")
_int_alu_imm("seqi")
_int_alu_imm("snei")
# load upper immediate: one source (the immediate), still an IALU op
_define(OpcodeInfo("lui", FUClass.IALU, OperandKind.INT,
                   has_immediate=True, reads_two_regs=False))

# --- integer multiply / divide ---------------------------------------------
_define(OpcodeInfo("mult", FUClass.IMULT, OperandKind.INT,
                   commutative=True, latency=3))
_define(OpcodeInfo("div", FUClass.IMULT, OperandKind.INT, latency=12))
_define(OpcodeInfo("rem", FUClass.IMULT, OperandKind.INT, latency=12))

# --- floating point add/sub/compare (FPAU) ---------------------------------
_define(OpcodeInfo("fadd", FUClass.FPAU, OperandKind.FLOAT,
                   commutative=True, latency=2))
_define(OpcodeInfo("fsub", FUClass.FPAU, OperandKind.FLOAT, latency=2))
_define(OpcodeInfo("fabs", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, reads_two_regs=False))
_define(OpcodeInfo("fneg", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, reads_two_regs=False))
_define(OpcodeInfo("fmov", FUClass.FPAU, OperandKind.FLOAT,
                   latency=1, reads_two_regs=False))
_define(OpcodeInfo("fmin", FUClass.FPAU, OperandKind.FLOAT,
                   commutative=True, latency=2))
_define(OpcodeInfo("fmax", FUClass.FPAU, OperandKind.FLOAT,
                   commutative=True, latency=2))
# comparisons produce an integer 0/1 in an int register but execute on the FPAU
_define(OpcodeInfo("flt", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, compiler_swap_to="fgt"))
_define(OpcodeInfo("fgt", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, compiler_swap_to="flt"))
_define(OpcodeInfo("fle", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, compiler_swap_to="fge"))
_define(OpcodeInfo("fge", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, compiler_swap_to="fle"))
_define(OpcodeInfo("feq", FUClass.FPAU, OperandKind.FLOAT,
                   commutative=True, latency=2))
# int <-> float conversions execute on the FPAU, single source
_define(OpcodeInfo("cvtif", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, reads_two_regs=False))
_define(OpcodeInfo("cvtfi", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, reads_two_regs=False))
_define(OpcodeInfo("cvtsd", FUClass.FPAU, OperandKind.FLOAT,
                   latency=2, reads_two_regs=False))

# --- floating point multiply / divide ---------------------------------------
_define(OpcodeInfo("fmul", FUClass.FPMULT, OperandKind.FLOAT,
                   commutative=True, latency=4))
_define(OpcodeInfo("fdiv", FUClass.FPMULT, OperandKind.FLOAT, latency=12))
_define(OpcodeInfo("fsqrt", FUClass.FPMULT, OperandKind.FLOAT,
                   latency=18, reads_two_regs=False))

# --- memory -----------------------------------------------------------------
_define(OpcodeInfo("lw", FUClass.LSU, OperandKind.INT,
                   has_immediate=True, is_load=True, latency=2,
                   reads_two_regs=False))
_define(OpcodeInfo("sw", FUClass.LSU, OperandKind.INT,
                   has_immediate=True, is_store=True, latency=1,
                   writes_dest=False, reads_two_regs=False))
_define(OpcodeInfo("ld", FUClass.LSU, OperandKind.FLOAT,
                   has_immediate=True, is_load=True, latency=2,
                   reads_two_regs=False))
_define(OpcodeInfo("sd", FUClass.LSU, OperandKind.FLOAT,
                   has_immediate=True, is_store=True, latency=1,
                   writes_dest=False, reads_two_regs=False))

# --- control ----------------------------------------------------------------
# Branches compare two integer registers on an IALU, as in sim-outorder.
_define(OpcodeInfo("beq", FUClass.IALU, OperandKind.INT,
                   commutative=True, is_branch=True, writes_dest=False))
_define(OpcodeInfo("bne", FUClass.IALU, OperandKind.INT,
                   commutative=True, is_branch=True, writes_dest=False))
_define(OpcodeInfo("blt", FUClass.IALU, OperandKind.INT,
                   is_branch=True, writes_dest=False, compiler_swap_to="bgt"))
_define(OpcodeInfo("bgt", FUClass.IALU, OperandKind.INT,
                   is_branch=True, writes_dest=False, compiler_swap_to="blt"))
_define(OpcodeInfo("ble", FUClass.IALU, OperandKind.INT,
                   is_branch=True, writes_dest=False, compiler_swap_to="bge"))
_define(OpcodeInfo("bge", FUClass.IALU, OperandKind.INT,
                   is_branch=True, writes_dest=False, compiler_swap_to="ble"))
_define(OpcodeInfo("j", FUClass.IALU, OperandKind.INT,
                   is_jump=True, writes_dest=False, reads_two_regs=False))
_define(OpcodeInfo("halt", FUClass.IALU, OperandKind.INT,
                   writes_dest=False, reads_two_regs=False))


@dataclass
class Instruction:
    """One assembled instruction.

    ``dest``/``src1``/``src2`` are architectural register ids (or None).
    ``imm`` is the immediate for immediate forms, the address offset for
    memory forms, and unused otherwise.  ``target`` is the resolved
    instruction index for control transfers.
    """

    op: OpcodeInfo
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None
    address: int = 0
    static_swapped: bool = field(default=False, compare=False)

    def source_regs(self) -> Tuple[int, ...]:
        """Architectural registers this instruction reads."""
        sources = []
        if self.src1 is not None:
            sources.append(self.src1)
        if self.src2 is not None:
            sources.append(self.src2)
        return tuple(sources)

    def __str__(self) -> str:
        parts = [self.op.name]
        operands = []
        if self.dest is not None:
            operands.append(reg_name(self.dest))
        if self.op.is_memory:
            base = reg_name(self.src1) if self.src1 is not None else "?"
            if self.op.is_store:
                operands = [reg_name(self.src2)] if self.src2 is not None else []
            operands.append(f"{self.imm}({base})")
        else:
            if self.src1 is not None:
                operands.append(reg_name(self.src1))
            if self.src2 is not None:
                operands.append(reg_name(self.src2))
            if self.op.has_immediate:
                operands.append(str(self.imm))
        if self.op.is_control and self.label is not None:
            operands.append(self.label)
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
