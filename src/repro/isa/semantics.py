"""Architectural semantics of the mini ISA.

Pure functions from operand bit images to result bit images; the cycle
simulator and the in-order golden model both call into this module so
the two can never disagree about what an opcode computes.

Integer values are 32-bit unsigned images (two's complement view where
signedness matters); floating point values are IEEE-754 double images.
Conversion opcodes cross the two domains.
"""

from __future__ import annotations

from . import encoding
from .instructions import Instruction, OpcodeInfo


class SemanticsError(ValueError):
    """Raised for opcodes with no defined evaluation."""


def _signed(bits: int) -> int:
    return encoding.to_signed(bits & encoding.INT_MASK)


def _bool_bits(flag: bool) -> int:
    return 1 if flag else 0


def _float(bits: int) -> float:
    return encoding.bits_to_float(bits & encoding.FLOAT_MASK)


def _fbits(value: float) -> int:
    return encoding.float_to_bits(value)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        return encoding.INT_MASK  # architectural: division by zero yields all ones
    quotient = abs(_signed(a)) // abs(_signed(b))
    if (_signed(a) < 0) != (_signed(b) < 0):
        quotient = -quotient
    return encoding.wrap_int(quotient)


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        return a & encoding.INT_MASK
    remainder = abs(_signed(a)) % abs(_signed(b))
    if _signed(a) < 0:
        remainder = -remainder
    return encoding.wrap_int(remainder)


# direct (a, b) -> result functions per integer opcode name, for callers
# that dispatch once per *static* instruction (the cycle simulator's
# decode table) instead of re-comparing names per dynamic instance
_M = encoding.INT_MASK
_INT_FUNCS = {
    "add": lambda a, b: (a + b) & _M,
    "addi": lambda a, b: (a + b) & _M,
    "sub": lambda a, b: (a - b) & _M,
    "subi": lambda a, b: (a - b) & _M,
    "and": lambda a, b: a & b,
    "andi": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "ori": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xori": lambda a, b: a ^ b,
    "nor": lambda a, b: _M & ~(a | b),
    "sll": lambda a, b: (a << (b & 31)) & _M,
    "slli": lambda a, b: (a << (b & 31)) & _M,
    "srl": lambda a, b: (a & _M) >> (b & 31),
    "srli": lambda a, b: (a & _M) >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & _M,
    "srai": lambda a, b: (_signed(a) >> (b & 31)) & _M,
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "slti": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sgt": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
    "sgti": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
    "sle": lambda a, b: 1 if _signed(a) <= _signed(b) else 0,
    "sge": lambda a, b: 1 if _signed(a) >= _signed(b) else 0,
    "seq": lambda a, b: 1 if a == b else 0,
    "seqi": lambda a, b: 1 if a == b else 0,
    "sne": lambda a, b: 1 if a != b else 0,
    "snei": lambda a, b: 1 if a != b else 0,
    "lui": lambda a, b: (b << 16) & _M,
    "mult": lambda a, b: (_signed(a) * _signed(b)) & _M,
    "div": _int_div,
    "rem": _int_rem,
}


def int_function(op: OpcodeInfo):
    """The direct ``(a, b) -> result`` function for an integer opcode.

    Agrees with :func:`evaluate_int` by construction; raises
    :class:`SemanticsError` for opcodes with no integer semantics.
    """
    try:
        return _INT_FUNCS[op.name]
    except KeyError:
        raise SemanticsError(f"no integer semantics for '{op.name}'") from None


def evaluate_int(op: OpcodeInfo, a: int, b: int) -> int:
    """Evaluate an integer ALU/multiplier opcode on 32-bit images.

    ``b`` is either the second register image or the (already wrapped)
    immediate image, whichever the instruction form supplies.
    """
    try:
        fn = _INT_FUNCS[op.name]
    except KeyError:
        raise SemanticsError(
            f"no integer semantics for '{op.name}'") from None
    return fn(a, b)


def evaluate_float(op: OpcodeInfo, a: int, b: int) -> int:
    """Evaluate a floating point opcode on double bit images.

    Comparison opcodes return a 0/1 integer image; conversions cross the
    int/float domains as noted per opcode.
    """
    name = op.name
    if name == "fadd":
        return _fbits(_float(a) + _float(b))
    if name == "fsub":
        return _fbits(_float(a) - _float(b))
    if name == "fmul":
        return _fbits(_float(a) * _float(b))
    if name == "fdiv":
        divisor = _float(b)
        if divisor == 0.0:
            return _fbits(float("inf") if _float(a) >= 0 else float("-inf"))
        return _fbits(_float(a) / divisor)
    if name == "fsqrt":
        value = _float(a)
        return _fbits(value ** 0.5 if value >= 0.0 else float("nan"))
    if name == "fabs":
        return a & ~(1 << encoding.FLOAT_SIGN_SHIFT)
    if name == "fneg":
        return a ^ (1 << encoding.FLOAT_SIGN_SHIFT)
    if name == "fmov":
        return a
    if name == "fmin":
        return a if _float(a) <= _float(b) else b
    if name == "fmax":
        return a if _float(a) >= _float(b) else b
    if name == "flt":
        return _bool_bits(_float(a) < _float(b))
    if name == "fgt":
        return _bool_bits(_float(a) > _float(b))
    if name == "fle":
        return _bool_bits(_float(a) <= _float(b))
    if name == "fge":
        return _bool_bits(_float(a) >= _float(b))
    if name == "feq":
        return _bool_bits(_float(a) == _float(b))
    if name == "cvtif":
        return _fbits(float(_signed(a)))
    if name == "cvtfi":
        value = _float(a)
        truncated = int(value) if abs(value) < 2 ** 31 else (2 ** 31 - 1 if value > 0 else -(2 ** 31))
        return encoding.wrap_int(truncated)
    if name == "cvtsd":
        return encoding.cast_single_to_double_bits(_float(a))
    raise SemanticsError(f"no floating point semantics for '{name}'")


def branch_taken(op: OpcodeInfo, a: int, b: int) -> bool:
    """Resolve a conditional branch from its two integer source images."""
    name = op.name
    if name == "beq":
        return a == b
    if name == "bne":
        return a != b
    if name == "blt":
        return _signed(a) < _signed(b)
    if name == "bgt":
        return _signed(a) > _signed(b)
    if name == "ble":
        return _signed(a) <= _signed(b)
    if name == "bge":
        return _signed(a) >= _signed(b)
    raise SemanticsError(f"'{name}' is not a conditional branch")


def effective_address(instr: Instruction, base_bits: int) -> int:
    """Compute the memory address of a load/store: base + offset."""
    return encoding.wrap_int(base_bits + encoding.wrap_int(instr.imm))
