"""Mini MIPS-like ISA: encodings, instructions, semantics, assembler."""

from . import encoding, semantics
from .assembler import Assembler, AssemblerError, assemble
from .disasm import instruction_text, program_to_source
from .instructions import (FUClass, Instruction, OpcodeInfo, OperandKind,
                           all_opcodes, fp_reg, int_reg, is_fp_reg, opcode,
                           reg_name)
from .program import DATA_BASE, STACK_BASE, DataImage, Program, ProgramError

__all__ = [
    "Assembler", "AssemblerError", "assemble",
    "instruction_text", "program_to_source",
    "FUClass", "Instruction", "OpcodeInfo", "OperandKind",
    "all_opcodes", "fp_reg", "int_reg", "is_fp_reg", "opcode", "reg_name",
    "DATA_BASE", "STACK_BASE", "DataImage", "Program", "ProgramError",
    "encoding", "semantics",
]
