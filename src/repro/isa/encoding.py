"""Bit-level encodings for the mini ISA.

The paper's machine is SimpleScalar's MIPS-like target: 32-bit integer
registers (two's complement) and 64-bit IEEE-754 floating point
registers.  Everything in the power model works on the *bit images* of
operand values, so this module is the single place where Python numbers
are converted to and from fixed-width bit patterns.

Integer values are carried as Python ints constrained to the unsigned
range ``[0, 2**32)``; helpers convert between the signed and unsigned
views.  Floating point values are carried as IEEE-754 double bit images
in ``[0, 2**64)``.
"""

from __future__ import annotations

import math
import struct

INT_BITS = 32
INT_MASK = (1 << INT_BITS) - 1
INT_SIGN_BIT = 1 << (INT_BITS - 1)
INT_MIN = -(1 << (INT_BITS - 1))
INT_MAX = (1 << (INT_BITS - 1)) - 1

FLOAT_BITS = 64
FLOAT_MASK = (1 << FLOAT_BITS) - 1
MANTISSA_BITS = 52
MANTISSA_MASK = (1 << MANTISSA_BITS) - 1
EXPONENT_BITS = 11
EXPONENT_MASK = (1 << EXPONENT_BITS) - 1
FLOAT_SIGN_SHIFT = 63
EXPONENT_SHIFT = MANTISSA_BITS
EXPONENT_BIAS = 1023


class EncodingError(ValueError):
    """Raised when a value cannot be represented in the target width."""


def to_unsigned(value: int) -> int:
    """Convert a signed 32-bit integer to its unsigned bit image.

    Values already in the unsigned range are passed through, so this is
    idempotent for bit images.

    >>> to_unsigned(-20) == 0xFFFFFFEC
    True
    """
    if not (INT_MIN <= value <= INT_MASK):
        raise EncodingError(f"{value} does not fit in {INT_BITS} bits")
    return value & INT_MASK


def to_signed(bits: int) -> int:
    """Interpret a 32-bit image as a signed (two's complement) integer.

    >>> to_signed(0xFFFFFFEC)
    -20
    """
    if not (0 <= bits <= INT_MASK):
        raise EncodingError(f"0x{bits:x} is not a {INT_BITS}-bit image")
    if bits & INT_SIGN_BIT:
        return bits - (1 << INT_BITS)
    return bits


def wrap_int(value: int) -> int:
    """Truncate an arbitrary Python int to a 32-bit unsigned image.

    This models the machine's silent modular arithmetic (overflow wraps).
    """
    return value & INT_MASK


def int_sign_bit(bits: int) -> int:
    """Return the sign bit (0 or 1) of a 32-bit image."""
    return (bits >> (INT_BITS - 1)) & 1


def float_to_bits(value: float) -> int:
    """Pack a Python float into its IEEE-754 double bit image."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_float(bits: int) -> float:
    """Unpack an IEEE-754 double bit image into a Python float."""
    if not (0 <= bits <= FLOAT_MASK):
        raise EncodingError(f"0x{bits:x} is not a {FLOAT_BITS}-bit image")
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def mantissa(bits: int) -> int:
    """Return the 52-bit stored mantissa of a double bit image.

    The paper's FP power model considers the mantissa portion only, and
    its floating point information bit is computed from the mantissa's
    least significant four bits.
    """
    return bits & MANTISSA_MASK


def exponent(bits: int) -> int:
    """Return the raw (biased) 11-bit exponent field."""
    return (bits >> EXPONENT_SHIFT) & EXPONENT_MASK


def float_sign_bit(bits: int) -> int:
    """Return the sign bit of a double bit image."""
    return (bits >> FLOAT_SIGN_SHIFT) & 1


def make_double(sign: int, biased_exponent: int, mantissa_bits: int) -> int:
    """Assemble a double bit image from its three fields."""
    if sign not in (0, 1):
        raise EncodingError("sign must be 0 or 1")
    if not (0 <= biased_exponent <= EXPONENT_MASK):
        raise EncodingError("exponent field out of range")
    if not (0 <= mantissa_bits <= MANTISSA_MASK):
        raise EncodingError("mantissa field out of range")
    return (sign << FLOAT_SIGN_SHIFT) | (biased_exponent << EXPONENT_SHIFT) | mantissa_bits


try:
    # Python >= 3.10: CPython's native popcount.  ``int.bit_count`` used
    # as an unbound descriptor is a plain C call — the fastest popcount
    # available without dependencies.
    bit_count = int.bit_count
except AttributeError:  # pragma: no cover - Python 3.9 fallback
    def bit_count(bits: int) -> int:
        """Set-bit count of a non-negative int (pre-3.10 fallback)."""
        return bin(bits).count("1")


def popcount(bits: int) -> int:
    """Number of set bits in a non-negative integer.

    This is the single popcount entry point for the whole code base; it
    validates its input.  Hot loops that operate on already-masked
    images may bind :data:`bit_count` directly to skip the check.

    >>> popcount(0b1011)
    3
    >>> popcount(0)
    0
    >>> popcount(0xFFFFFFFF)
    32
    >>> popcount(-1)
    Traceback (most recent call last):
        ...
    repro.isa.encoding.EncodingError: popcount is defined on non-negative images
    """
    if bits < 0:
        raise EncodingError("popcount is defined on non-negative images")
    return bit_count(bits)


def hamming(a: int, b: int) -> int:
    """Hamming distance between two equal-width bit images."""
    return popcount(a ^ b)


def hamming_int(a: int, b: int) -> int:
    """Hamming distance between two 32-bit integer images."""
    return popcount((a ^ b) & INT_MASK)


def hamming_mantissa(a: int, b: int) -> int:
    """Hamming distance between the mantissas of two double images.

    Per section 2 of the paper, only the mantissa portions of floating
    point operands are considered when computing Hamming distances.
    """
    return popcount((a ^ b) & MANTISSA_MASK)


def trailing_zeros(bits: int, width: int) -> int:
    """Count trailing zero bits of a ``width``-bit image.

    A zero image has ``width`` trailing zeros by convention.  Negative
    inputs are rejected, consistently with :func:`popcount` — a negative
    Python int is not a bit image, and the two's-complement view would
    silently yield a wrong count.

    >>> trailing_zeros(0b1000, 32)
    3
    >>> trailing_zeros(0, 52)
    52
    >>> trailing_zeros(20, 32)
    2
    >>> trailing_zeros(-2, 32)
    Traceback (most recent call last):
        ...
    repro.isa.encoding.EncodingError: trailing_zeros is defined on non-negative images
    """
    if bits < 0:
        raise EncodingError(
            "trailing_zeros is defined on non-negative images")
    if bits == 0:
        return width
    # isolate the lowest set bit; its position is the trailing-zero count
    return min((bits & -bits).bit_length() - 1, width)


def leading_sign_bits(bits: int) -> int:
    """Number of leading bits equal to the sign bit of a 32-bit image.

    For 0x00000014 (decimal 20) this is 27; the paper uses exactly this
    redundancy to justify the integer information bit.
    """
    sign = int_sign_bit(bits)
    count = 0
    for position in range(INT_BITS - 1, -1, -1):
        if (bits >> position) & 1 == sign:
            count += 1
        else:
            break
    return count


def cast_int_to_double_bits(value: int) -> int:
    """Bit image of ``float(value)`` for a signed 32-bit integer.

    Casting integers into floating point is one of the three reasons the
    paper gives for FP mantissas with many trailing zeros.
    """
    if not (INT_MIN <= value <= INT_MAX):
        raise EncodingError(f"{value} is not a signed {INT_BITS}-bit value")
    return float_to_bits(float(value))


def cast_single_to_double_bits(value: float) -> int:
    """Bit image of a single-precision value widened to double.

    SimpleScalar has no separate single-precision register file, so
    singles live in doubles; the widened mantissa has at least 29
    trailing zeros (52 - 23).  Non-finite singles widen exactly.
    """
    single = struct.unpack("<f", struct.pack("<f", value))[0]
    return float_to_bits(single)


def is_finite_bits(bits: int) -> bool:
    """True when the image encodes a finite number (not inf or NaN)."""
    return exponent(bits) != EXPONENT_MASK


def ulp_round(value: float, fractional_bits: int) -> float:
    """Round ``value`` to ``fractional_bits`` bits after the binary point.

    Workload kernels use this to model fixed-point-like "round numbers"
    that the paper observes are common in FP programs.
    """
    if not math.isfinite(value):
        return value
    scale = 1 << fractional_bits
    return round(value * scale) / scale


def bit_string(bits: int, width: int) -> str:
    """Render a bit image as a fixed-width binary string (MSB first)."""
    if not (0 <= bits < (1 << width)):
        raise EncodingError(f"0x{bits:x} is not a {width}-bit image")
    return format(bits, f"0{width}b")
