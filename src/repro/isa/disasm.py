"""Disassembler: turn a :class:`Program` back into assembler source.

The emitted text re-assembles to an equivalent program (same opcodes,
registers, immediates, control targets, and data image) — the
round-trip is property-tested.  Useful for inspecting generated or
transformed programs (e.g. after the compiler swap pass) and for
persisting programs as text.
"""

from __future__ import annotations

from typing import Dict, List

from . import encoding
from .instructions import Instruction, reg_name
from .program import DATA_BASE, Program

_LOGICAL_IMM = {"andi", "ori", "xori"}
_SHIFT_IMM = {"slli", "srli", "srai"}


def _immediate_text(instr: Instruction) -> str:
    name = instr.op.name
    if name in _SHIFT_IMM or name in _LOGICAL_IMM or name == "lui":
        return str(instr.imm)
    return str(encoding.to_signed(instr.imm))


def _offset_text(instr: Instruction) -> str:
    return str(encoding.to_signed(instr.imm))


def instruction_text(instr: Instruction, labels: Dict[int, str]) -> str:
    """Assembler-compatible text for one instruction."""
    op = instr.op
    if op.name == "halt":
        return "halt"
    if op.is_jump:
        return f"j {labels[instr.target]}"
    if op.is_branch:
        return (f"{op.name} {reg_name(instr.src1)},"
                f" {reg_name(instr.src2)}, {labels[instr.target]}")
    if op.is_memory:
        base = reg_name(instr.src1)
        if op.is_load:
            return (f"{op.name} {reg_name(instr.dest)},"
                    f" {_offset_text(instr)}({base})")
        return (f"{op.name} {reg_name(instr.src2)},"
                f" {_offset_text(instr)}({base})")
    if op.name == "lui":
        return f"lui {reg_name(instr.dest)}, {instr.imm}"
    if op.has_immediate:
        return (f"{op.name} {reg_name(instr.dest)},"
                f" {reg_name(instr.src1)}, {_immediate_text(instr)}")
    if not op.reads_two_regs:
        return f"{op.name} {reg_name(instr.dest)}, {reg_name(instr.src1)}"
    return (f"{op.name} {reg_name(instr.dest)}, {reg_name(instr.src1)},"
            f" {reg_name(instr.src2)}")


def _data_section(program: Program) -> List[str]:
    """Re-emit the data image as byte-exact ``.word`` runs.

    Symbols are re-declared at their original offsets relative to
    ``DATA_BASE`` using ``.space`` padding, so ``la`` references resolve
    to the same addresses.
    """
    if not program.data.bytes_ and not program.symbols:
        return []
    lines = [".data"]
    addresses = sorted(program.data.bytes_)
    end = addresses[-1] + 1 if addresses else DATA_BASE
    for address in program.symbols.values():
        end = max(end, address + 1)
    # round the image up to whole words
    span = end - DATA_BASE
    span = (span + 3) // 4 * 4
    by_address = {address: name for name, address in program.symbols.items()}
    for offset in range(0, span, 4):
        address = DATA_BASE + offset
        if address in by_address:
            lines.append(f"{by_address[address]}:")
        word = program.data.load_word(address) \
            if address % 4 == 0 else 0
        lines.append(f".word {encoding.to_signed(word)}")
    # symbols that do not sit on word boundaries cannot occur: the
    # assembler aligns every allocation to at least 4 bytes
    return lines


def program_to_source(program: Program) -> str:
    """Full assembler source whose assembly is equivalent to ``program``."""
    labels: Dict[int, str] = {}
    for instr in program.instructions:
        if instr.op.is_control and instr.target is not None:
            labels.setdefault(instr.target, f"L{instr.target}")
    lines = _data_section(program)
    lines.append(".text")
    for index, instr in enumerate(program.instructions):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append(f"    {instruction_text(instr, labels)}")
    return "\n".join(lines) + "\n"
