"""Evaluation execution for the server: the work behind a cache miss.

Two executors share one worker contract (``_eval_worker(payload) ->
response dict``):

* :class:`PoolBatchExecutor` — the production path.  A dispatcher
  thread drains the admitted-work queue in *batches* and runs each
  batch on a :class:`~repro.runner.pool.ProcessTaskPool`, so the
  server inherits the pool's crash isolation, per-task SIGKILL
  timeouts, and bounded parallelism.  One batch is one ``pool.run``;
  results land back on the event loop as each task completes.
* :class:`InlineExecutor` — in-process evaluation on a thread, bounded
  by a semaphore.  No crash isolation, but tests can monkeypatch
  module state (e.g. a counting ``Simulator``) and have the evaluation
  observe it, and platforms without ``fork`` get a fallback.

The evaluation itself (:func:`evaluate_request`) is the CLI's own
figure-4 driver against the server's shared trace cache.  Before
running it, every unmodified program version is pre-warmed through
:func:`repro.streams.cached_or_record`, which contends on
``TraceCacheLock`` — so coalescing holds *across server processes*
sharing one cache directory: one process simulates a given
(program, config) stream, the rest replay it.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.energy import (Figure4Result, run_figure4,
                               run_figure4_synthetic)
from ..analysis.report import render_figure4
from ..batch import resolve_engine
from ..runner.pool import PoolItem, ProcessTaskPool
from ..streams import cached_or_record
from ..workloads import workload
from .protocol import EvalRequest, request_key


def build_programs(request: EvalRequest) -> List[Any]:
    """Assemble the request's (unmodified) program versions."""
    return [workload(name).build(request.scale)
            for name in request.workloads]


def _render_result(request: EvalRequest, key: str,
                   panel: Figure4Result) -> Dict[str, Any]:
    """The response body: a pure function of the request.

    Volatile provenance (simulation counts, cache hits, wall time)
    deliberately lives in the ``meta`` sub-object, which the server
    strips into headers — the ``body`` proper must come out
    byte-identical however the result was obtained (cold simulate,
    warm replay, any engine).
    """
    cells = {}
    for (scheme, mode), cell in sorted(panel.cells.items()):
        cells[f"{scheme}|{mode}"] = {
            "switched_bits": cell.switched_bits,
            "operations": cell.operations,
            "hardware_swaps": cell.hardware_swaps,
            "reduction_pct": round(100 * panel.reduction(scheme, mode), 4),
        }
    body = {
        "key": key,
        "fu": request.fu,
        "workloads": list(panel.workload_names),
        "policies": list(request.policies),
        "swap_modes": list(request.swap_modes),
        "stats": request.stats,
        "synthetic": request.synthetic,
        "baseline_bits": panel.baseline_bits,
        "cells": cells,
        "report": render_figure4(
            panel,
            title=(f"Figure 4 (calibrated synthetic),"
                   f" {request.fu.upper()}" if request.synthetic else None)),
    }
    meta = {
        "simulations": panel.simulations,
        "trace_cache_hits": panel.cache_hits,
        "trace_cache_misses": panel.cache_misses,
    }
    return {"body": body, "meta": meta}


def evaluate_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one evaluation; the worker entry for every executor.

    ``payload`` is ``request.to_payload()`` plus ``cache_dir`` (may be
    None) and ``key``.  Runs in a pool child process or an inline
    thread; must stay picklable-in, picklable-out.
    """
    payload = dict(payload)
    cache_dir = payload.pop("cache_dir", None)
    key = payload.pop("key", None)
    request = EvalRequest.from_payload(payload)
    if request.delay_ms:
        # test-only knob (gated server-side): hold the evaluation open
        # so drain/timeout behaviour can be exercised deterministically
        time.sleep(request.delay_ms / 1000.0)
    started = time.perf_counter()
    engine = resolve_engine(request.engine)
    if request.synthetic:
        panel = run_figure4_synthetic(
            request.fu_class, cycles=request.cycles,
            seed=request.seed, schemes=request.policies,
            swap_modes=request.swap_modes)
    else:
        config = request.machine_config()
        programs = build_programs(request)
        if key is None:
            key = request_key(request, [p.fingerprint() for p in programs])
        if cache_dir is not None:
            # fleet-wide single flight: cached_or_record contends on
            # TraceCacheLock, so across every server process sharing
            # this cache directory each stream is simulated once
            for program in programs:
                cached_or_record(program, config, cache_dir,
                                 (request.fu_class,))
        panel = run_figure4(
            request.fu_class,
            workloads=[workload(name) for name in request.workloads],
            scale=request.scale, config=config,
            stats_source=request.stats, schemes=request.policies,
            swap_modes=request.swap_modes, trace_cache_dir=cache_dir,
            engine=engine)
    result = _render_result(request, key or "", panel)
    result["meta"]["compute_seconds"] = round(
        time.perf_counter() - started, 6)
    return result


class ExecutionError(RuntimeError):
    """An evaluation failed in the worker (HTTP 500 for every waiter)."""

    def __init__(self, error: Dict[str, Any]):
        super().__init__(error.get("message", "evaluation failed"))
        self.error = error


class InlineExecutor:
    """Run evaluations on threads in this process, ``max_workers`` at
    a time.  No crash isolation — for tests and fork-less platforms."""

    kind = "inline"

    def __init__(self, max_workers: int = 2, task_timeout: float = 600.0):
        self.max_workers = max(1, max_workers)
        # the per-request timeout is enforced by the server's wait_for;
        # kept here so both executors expose the same knobs
        self.task_timeout = task_timeout
        self._semaphore: Optional[asyncio.Semaphore] = None

    async def submit(self, key: str, payload: Dict[str, Any]
                     ) -> Dict[str, Any]:
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.max_workers)
        async with self._semaphore:
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, evaluate_request, payload)
            except Exception as exc:  # noqa: BLE001 - boundary
                raise ExecutionError({"type": type(exc).__name__,
                                      "message": str(exc)}) from exc

    def close(self) -> None:
        pass


class PoolBatchExecutor:
    """Batch admitted work through a crash-isolated process pool.

    A single dispatcher thread blocks on the work queue, drains up to
    ``max_batch`` waiting items, and runs them as one
    :meth:`ProcessTaskPool.run` batch — so concurrent distinct requests
    ride one pool invocation (``max_workers``-wide) instead of paying
    pool startup per request.  Completion callbacks hop back onto the
    event loop with ``call_soon_threadsafe``.
    """

    kind = "pool"

    def __init__(self, max_workers: int = 2, task_timeout: float = 600.0,
                 max_batch: int = 32):
        self.max_workers = max(1, max_workers)
        self.task_timeout = task_timeout
        self.max_batch = max(1, max_batch)
        self._pool = ProcessTaskPool(evaluate_request,
                                     max_workers=self.max_workers,
                                     task_timeout=task_timeout,
                                     retries=0)
        self._queue: "queue.Queue[Optional[Tuple[str, Dict[str, Any], Any, asyncio.AbstractEventLoop]]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self.batches = 0
        self.batched_items = 0

    async def submit(self, key: str, payload: Dict[str, Any]
                     ) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._ensure_thread()
        self._queue.put((key, payload, future, loop))
        return await future

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._drain,
                                            name="repro-server-executor",
                                            daemon=True)
            self._thread.start()

    def _drain(self) -> None:
        while not self._closed:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._closed = True
                    break
                batch.append(extra)
            self._run_batch(batch)

    def _run_batch(self, batch) -> None:
        self.batches += 1
        self.batched_items += len(batch)
        waiters = {}
        items = []
        for index, (key, payload, future, loop) in enumerate(batch):
            # index-suffixed so two admitted items for one key (possible
            # across response-cache evictions) stay distinct pool tasks
            task_key = f"{key}#{index}"
            waiters[task_key] = (future, loop)
            items.append(PoolItem(key=task_key, payload=payload))

        def _resolve(task_key: str, action) -> None:
            future, loop = waiters[task_key]
            try:
                loop.call_soon_threadsafe(action, future)
            except RuntimeError:
                pass  # event loop already closed (server shutdown)

        def on_done(item: PoolItem, _elapsed: float, result) -> None:
            def _set(future: "asyncio.Future") -> None:
                if not future.done():
                    future.set_result(result)
            _resolve(item.key, _set)

        def on_failed(item: PoolItem, _elapsed: float, error) -> None:
            def _set(future: "asyncio.Future") -> None:
                if not future.done():
                    future.set_exception(ExecutionError(error))
            _resolve(item.key, _set)

        self._pool.run(items, on_done, on_failed)

    def close(self) -> None:
        self._closed = True
        self._queue.put(None)
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5)


def make_executor(kind: str, max_workers: int, task_timeout: float,
                  max_batch: int = 32):
    if kind == "inline":
        return InlineExecutor(max_workers=max_workers,
                              task_timeout=task_timeout)
    if kind == "pool":
        return PoolBatchExecutor(max_workers=max_workers,
                                 task_timeout=task_timeout,
                                 max_batch=max_batch)
    raise ValueError(f"executor must be 'pool' or 'inline', not '{kind}'")


__all__ = ["ExecutionError", "InlineExecutor", "PoolBatchExecutor",
           "build_programs", "evaluate_request", "make_executor"]
