"""Steering-as-a-service: the asyncio evaluation server.

``repro serve`` binds :class:`~repro.server.app.EvalServer` — a
stdlib-only HTTP/1.1 service whose request path is a memoization
ladder (ETag revalidation, response cache, single-flight coalescing,
trace-cache replay, simulation last).  ``repro loadtest`` drives
:mod:`repro.server.loadgen` against it.  See ``docs/server.md``.
"""

from .app import EvalServer, ServerConfig, run_server, serve_main
from .executor import (ExecutionError, InlineExecutor, PoolBatchExecutor,
                       evaluate_request, make_executor)
from .protocol import (EvalRequest, ProtocolError, etag_for, parse_request,
                       request_key)

__all__ = [
    "EvalRequest",
    "EvalServer",
    "ExecutionError",
    "InlineExecutor",
    "PoolBatchExecutor",
    "ProtocolError",
    "ServerConfig",
    "etag_for",
    "evaluate_request",
    "make_executor",
    "parse_request",
    "request_key",
    "run_server",
    "serve_main",
]
