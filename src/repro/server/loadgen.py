"""Load-test harness for the evaluation server.

Drives concurrent keep-alive clients (each an asyncio task owning one
connection) against a server and measures what the serving layer is
*for* — not raw evaluation speed, but how well the memoization ladder
absorbs traffic:

* **burst phase** — every client fires the *same cold request* at
  once.  A correct single flight runs one evaluation; the coalesce
  ratio (requests served without a new execution / requests served)
  comes from ``/metrics.json`` counter deltas, not client guesses.
* **steady phase** — clients hammer the now-warm key (optionally mixed
  with a fraction of distinct keys) for wall-clock latency: p50/p99,
  throughput, cache hit rate.
* **revalidation phase** — clients resend with ``If-None-Match`` and
  expect ``304`` with empty bodies.

Results land in ``BENCH_server.json`` (same shape discipline as
``BENCH_hotpath.json``): assertion flags (``--assert-coalesce-ratio``,
``--assert-p99-ms``, ``--assert-zero-5xx``) turn measured claims into
CI gates.  ``--spawn`` runs its own server subprocess on an ephemeral
port so the bench is one command; ``--drain-check`` is a separate
scenario proving graceful shutdown: SIGTERM with a request in flight
must finish that request and refuse new evaluations with 429.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runner.atomic import atomic_write_json

DEFAULT_REQUEST = {
    "fu": "ialu",
    "synthetic": True,
    "cycles": 4000,
    "policies": ["original", "lut-4"],
    "swap_modes": ["none", "hw"],
}


@dataclass
class Sample:
    status: int
    ms: float
    body: bytes
    headers: Dict[str, str]


@dataclass
class PhaseStats:
    name: str
    samples: List[Sample] = field(default_factory=list)
    wall_seconds: float = 0.0

    def summary(self) -> Dict[str, Any]:
        lat = sorted(s.ms for s in self.samples)
        statuses: Dict[str, int] = {}
        for sample in self.samples:
            statuses[str(sample.status)] = statuses.get(
                str(sample.status), 0) + 1
        n = len(lat)
        return {
            "requests": n,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(n / self.wall_seconds, 2)
            if self.wall_seconds else 0.0,
            "p50_ms": round(_percentile(lat, 0.50), 3),
            "p99_ms": round(_percentile(lat, 0.99), 3),
            "max_ms": round(lat[-1], 3) if lat else 0.0,
            "statuses": statuses,
        }

    def count_5xx(self) -> int:
        return sum(1 for s in self.samples if s.status >= 500)


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


class Client:
    """One keep-alive HTTP/1.1 connection, minimal on purpose."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)

    async def request(self, method: str, path: str,
                      body: Optional[bytes] = None,
                      headers: Optional[Dict[str, str]] = None,
                      timeout: float = 120.0) -> Sample:
        if self.writer is None:
            await self.connect()
        assert self.reader is not None and self.writer is not None
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}",
                 f"Content-Length: {len(body or b'')}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        started = time.perf_counter()
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
        if body:
            self.writer.write(body)
        await self.writer.drain()
        status, resp_headers, resp_body = await asyncio.wait_for(
            self._read_response(), timeout)
        elapsed = (time.perf_counter() - started) * 1000.0
        return Sample(status=status, ms=elapsed, body=resp_body,
                      headers=resp_headers)

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        assert self.reader is not None
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        status = int(line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await self.reader.readexactly(length) if length else b""
        return status, headers, body

    async def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.writer = None
            self.reader = None


async def _metrics(client: Client) -> Dict[str, Any]:
    sample = await client.request("GET", "/metrics.json")
    if sample.status != 200:
        raise RuntimeError(f"/metrics.json returned {sample.status}")
    return json.loads(sample.body)


def _counter(snapshot: Dict[str, Any], name: str) -> int:
    return snapshot.get("counters", {}).get(name, 0)


async def run_load(host: str, port: int, *, clients: int, requests: int,
                   request_body: Dict[str, Any],
                   distinct_fraction: float = 0.0,
                   timeout: float = 120.0) -> Dict[str, Any]:
    """The main scenario: burst (cold, all-duplicate), steady (warm),
    revalidate (If-None-Match).  Returns the merged summary dict."""
    body = json.dumps(request_body).encode("utf-8")
    probe = Client(host, port)
    before = await _metrics(probe)

    # ---- burst: N concurrent identical requests against a cold key
    burst = PhaseStats("burst")
    pool = [Client(host, port) for _ in range(clients)]
    started = time.perf_counter()
    burst.samples = list(await asyncio.gather(*(
        client.request("POST", "/v1/evaluate", body, timeout=timeout)
        for client in pool)))
    burst.wall_seconds = time.perf_counter() - started
    after_burst = await _metrics(probe)

    bodies = {s.body for s in burst.samples if s.status == 200}
    executions = (_counter(after_burst, "server.executions")
                  - _counter(before, "server.executions"))
    served = sum(1 for s in burst.samples if s.status == 200)
    coalesce_ratio = (served - executions) / served if served else 0.0

    # ---- steady: every client loops on the warm key
    steady = PhaseStats("steady")
    per_client = max(1, requests // max(1, clients))
    distinct_every = (int(1 / distinct_fraction)
                      if distinct_fraction > 0 else 0)

    async def _steady_worker(index: int, client: Client) -> List[Sample]:
        samples = []
        for i in range(per_client):
            payload = request_body
            if distinct_every and i % distinct_every == distinct_every - 1:
                # a fresh key: same shape, different seed -> cache miss
                payload = dict(request_body,
                               seed=1_000_000 + index * per_client + i)
            data = json.dumps(payload).encode("utf-8")
            samples.append(await client.request(
                "POST", "/v1/evaluate", data, timeout=timeout))
        return samples

    started = time.perf_counter()
    results = await asyncio.gather(*(
        _steady_worker(index, client) for index, client in enumerate(pool)))
    steady.wall_seconds = time.perf_counter() - started
    steady.samples = [s for batch in results for s in batch]
    after_steady = await _metrics(probe)

    # ---- revalidate: conditional requests answered from the hash alone
    etag = next((s.headers.get("etag") for s in burst.samples
                 if s.status == 200 and "etag" in s.headers), None)
    revalidate = PhaseStats("revalidate")
    if etag:
        started = time.perf_counter()
        revalidate.samples = list(await asyncio.gather(*(
            client.request("POST", "/v1/evaluate", body,
                           headers={"If-None-Match": etag},
                           timeout=timeout)
            for client in pool)))
        revalidate.wall_seconds = time.perf_counter() - started
    final = await _metrics(probe)

    await asyncio.gather(*(client.close() for client in pool))
    await probe.close()

    hits = (_counter(final, "server.cache.hits")
            - _counter(before, "server.cache.hits"))
    total_2xx = (_counter(final, "server.http.2xx")
                 - _counter(before, "server.http.2xx"))
    not_modified = (_counter(final, "server.http.304")
                    - _counter(before, "server.http.304"))
    answered = total_2xx + not_modified
    summary = {
        "clients": clients,
        "burst": burst.summary(),
        "steady": steady.summary(),
        "revalidate": revalidate.summary(),
        "coalesce": {
            "burst_requests": served,
            "executions": executions,
            "ratio": round(coalesce_ratio, 4),
            "identical_bodies": len(bodies) <= 1,
        },
        "cache": {
            "hits": hits,
            "not_modified": not_modified,
            "hit_rate": round((hits + not_modified) / answered, 4)
            if answered else 0.0,
        },
        "errors_5xx": (burst.count_5xx() + steady.count_5xx()
                       + revalidate.count_5xx()),
        "revalidate_all_304": bool(revalidate.samples) and all(
            s.status == 304 for s in revalidate.samples),
        "steady_executions": (_counter(after_steady, "server.executions")
                              - _counter(after_burst, "server.executions")),
    }
    return summary


async def run_drain_check(host: str, port: int, pid: int,
                          process: "subprocess.Popen") -> Dict[str, Any]:
    """SIGTERM with a request in flight: the in-flight request must
    complete 200, new evaluations must bounce 429, exit must be 0."""
    slow = dict(DEFAULT_REQUEST, delay_ms=1500)
    slow_body = json.dumps(slow).encode("utf-8")
    fresh = dict(DEFAULT_REQUEST, seed=424242)
    fresh_body = json.dumps(fresh).encode("utf-8")

    inflight_client = Client(host, port)
    late_client = Client(host, port)
    inflight = asyncio.ensure_future(
        inflight_client.request("POST", "/v1/evaluate", slow_body,
                                timeout=60.0))
    await asyncio.sleep(0.4)  # let the slow evaluation get admitted
    os.kill(pid, signal.SIGTERM)
    await asyncio.sleep(0.2)  # let the drain flag latch
    late = await late_client.request("POST", "/v1/evaluate", fresh_body,
                                     timeout=30.0)
    inflight_sample = await inflight
    await inflight_client.close()
    await late_client.close()
    exit_code = process.wait(timeout=30)
    return {
        "inflight_status": inflight_sample.status,
        "late_status": late.status,
        "late_retry_after": late.headers.get("retry-after"),
        "exit_code": exit_code,
        "ok": (inflight_sample.status == 200 and late.status == 429
               and exit_code == 0),
    }


def spawn_server(extra_args: Sequence[str] = (),
                 timeout: float = 30.0
                 ) -> Tuple["subprocess.Popen", str, int]:
    """Start ``repro serve --port 0`` and parse its listening line."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True)
    assert process.stdout is not None
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before listening (rc={process.poll()})")
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if event.get("event") == "listening":
            return process, event["host"], event["port"]
    process.kill()
    raise RuntimeError("server did not announce a listening port in time")


def stop_server(process: "subprocess.Popen", timeout: float = 30.0) -> int:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            return process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            return process.wait(timeout=5)
    return process.returncode


def add_arguments(parser: argparse.ArgumentParser,
                  policy_type=str) -> argparse.ArgumentParser:
    """Install the loadtest flags on ``parser``.

    ``policy_type`` lets the CLI pass its registry-validating
    ``_policy_kind`` argparse type, so a typo'd ``--policies`` dies at
    parse time with the registry's error message instead of as a 400
    from the server mid-run.
    """
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="target an already-running server; omit to"
                             " spawn one on an ephemeral port")
    parser.add_argument("--clients", type=int, default=50,
                        help="concurrent keep-alive connections")
    parser.add_argument("--requests", type=int, default=500,
                        help="total steady-phase requests across clients")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: fewer clients/requests")
    parser.add_argument("--distinct-fraction", type=float, default=0.0,
                        help="fraction of steady requests using fresh keys")
    parser.add_argument("--cycles", type=int, default=4000,
                        help="synthetic stream length per evaluation")
    parser.add_argument("--policies", nargs="*", type=policy_type,
                        default=None,
                        help="policy kinds in the load request (default:"
                             " original + lut-4)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout (seconds)")
    parser.add_argument("--output", default=None,
                        help="write the summary JSON here")
    parser.add_argument("--drain-check", action="store_true",
                        help="run the SIGTERM graceful-drain scenario"
                             " instead of the load scenario (spawns its"
                             " own server)")
    parser.add_argument("--assert-coalesce-ratio", type=float, default=None,
                        help="fail unless burst coalesce ratio >= this")
    parser.add_argument("--assert-p99-ms", type=float, default=None,
                        help="fail unless steady p99 <= this many ms")
    parser.add_argument("--assert-zero-5xx", action="store_true",
                        help="fail if any request returned a 5xx")
    return parser


def build_parser() -> argparse.ArgumentParser:
    return add_arguments(argparse.ArgumentParser(
        prog="repro loadtest",
        description="Load-test the evaluation server."))


def run_from_args(args, serve_args: Sequence[str] = ()) -> int:
    if args.quick:
        args.clients = min(args.clients, 20)
        args.requests = min(args.requests, 120)

    process = None
    failures: List[str] = []
    try:
        if args.drain_check:
            process, host, port = spawn_server(
                ("--executor", "inline", "--allow-delay", *serve_args))
            result = asyncio.run(run_drain_check(host, port, process.pid,
                                                 process))
            summary: Dict[str, Any] = {"drain_check": result}
            if not result["ok"]:
                failures.append(f"drain check failed: {result}")
            process = None  # already exited (or wait() raised)
        else:
            if args.port is None:
                process, host, port = spawn_server(serve_args)
            else:
                host, port = args.host, args.port
            request_body = dict(DEFAULT_REQUEST, cycles=args.cycles)
            if args.policies:
                request_body["policies"] = list(args.policies)
            summary = asyncio.run(run_load(
                host, port, clients=args.clients, requests=args.requests,
                request_body=request_body,
                distinct_fraction=args.distinct_fraction,
                timeout=args.timeout))
            summary["request"] = request_body

            if not summary["coalesce"]["identical_bodies"]:
                failures.append("burst responses were not bit-identical")
            if args.assert_coalesce_ratio is not None and \
                    summary["coalesce"]["ratio"] < args.assert_coalesce_ratio:
                failures.append(
                    f"coalesce ratio {summary['coalesce']['ratio']:.3f}"
                    f" < {args.assert_coalesce_ratio}")
            if args.assert_p99_ms is not None and \
                    summary["steady"]["p99_ms"] > args.assert_p99_ms:
                failures.append(
                    f"steady p99 {summary['steady']['p99_ms']:.1f}ms"
                    f" > {args.assert_p99_ms}ms")
            if args.assert_zero_5xx and summary["errors_5xx"]:
                failures.append(f"{summary['errors_5xx']} 5xx responses")
    finally:
        if process is not None:
            stop_server(process)

    summary["ok"] = not failures
    if failures:
        summary["failures"] = failures
    if args.output:
        atomic_write_json(args.output, summary)
    print(json.dumps(summary, indent=2, sort_keys=True))
    for failure in failures:
        print(f"ASSERTION FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
