"""Request schema for the evaluation service.

A request names an evaluation the repository can already perform from
the CLI — one Figure-4 panel: an FU class, a workload list (or a
calibrated synthetic stream), a policy grid, swap regimes, and optional
:class:`~repro.cpu.config.MachineConfig` overrides.  The server's whole
caching story rides on :func:`request_key`, which reduces a parsed
request to the *content* fingerprints the trace cache already uses —
program instruction/data hashes and the machine-config hash — so two
requests that would replay the same streams and build the same
evaluators share one key whatever their JSON spelling, workload
labelling, or policy ordering.

Deliberately excluded from the key (mirroring how
``MachineConfig.fingerprint`` excludes telemetry): the evaluation
``engine``, because every engine is property-tested bit-identical, and
the test-only ``delay_ms`` knob.  The ETag served for a response is
just the key in quotes, so a client holding a response can revalidate
with ``If-None-Match`` and the server can answer ``304`` from the
fingerprint alone — no simulation, no replay, no cache lookup.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..batch import ENGINES
from ..core.registry import PolicyNameError, REGISTRY
from ..cpu.config import MachineConfig
from ..isa.instructions import FUClass
from ..workloads import all_workloads

#: swap regimes a request may ask for, in render order
SWAP_MODES = ("none", "hw", "compiler", "hw+compiler")

#: MachineConfig fields a request may override (simple scalars only;
#: nested cache/telemetry config stays server-side)
CONFIG_OVERRIDE_FIELDS = frozenset({
    "fetch_width", "dispatch_width", "retire_width", "rob_entries",
    "rs_entries_per_class", "branch_predictor_entries", "branch_predictor",
    "mispredict_penalty", "max_cycles", "watchdog_cycles",
})

MAX_WORKLOADS = 32
MAX_POLICIES = 32


class ProtocolError(ValueError):
    """A malformed or unsupported request (HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


@dataclasses.dataclass(frozen=True)
class EvalRequest:
    """One normalised evaluation request.

    Instances are produced by :func:`parse_request` only; every field is
    already validated and canonically ordered, so equality between two
    instances means "same evaluation".
    """

    fu: str
    workloads: Tuple[str, ...]
    policies: Tuple[str, ...]
    swap_modes: Tuple[str, ...]
    scale: Optional[int]
    stats: str
    synthetic: bool
    cycles: int
    seed: int
    config_overrides: Tuple[Tuple[str, Any], ...]
    engine: str
    delay_ms: int

    @property
    def fu_class(self) -> FUClass:
        return FUClass(self.fu)

    def machine_config(self) -> MachineConfig:
        return MachineConfig(**dict(self.config_overrides))

    def to_payload(self) -> Dict[str, Any]:
        """Picklable plain-dict form for the worker pool."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "EvalRequest":
        data = dict(payload)
        data["workloads"] = tuple(data["workloads"])
        data["policies"] = tuple(data["policies"])
        data["swap_modes"] = tuple(data["swap_modes"])
        data["config_overrides"] = tuple(
            (name, value) for name, value in data["config_overrides"])
        return cls(**data)


def _parse_policies(raw: Any) -> Tuple[str, ...]:
    if raw is None:
        return tuple(REGISTRY.grid_kinds())
    _require(isinstance(raw, (list, tuple)) and raw,
             "'policies' must be a non-empty list of policy kinds")
    _require(len(raw) <= MAX_POLICIES,
             f"at most {MAX_POLICIES} policies per request")
    seen = []
    for kind in raw:
        _require(isinstance(kind, str), "policy kinds must be strings")
        try:
            REGISTRY.resolve(kind)
        except PolicyNameError as exc:
            raise ProtocolError(str(exc)) from None
        if kind not in seen:
            seen.append(kind)
    if "original" not in seen:
        # the baseline cell anchors every reduction (and baseline_bits)
        seen.append("original")
    # canonical order: the registry's grid order (which is also how the
    # report renders rows), so permutations of one grid share a key
    seen.sort(key=REGISTRY.grid_sort_key)
    return tuple(seen)


def _parse_swap_modes(raw: Any, synthetic: bool) -> Tuple[str, ...]:
    if raw is None:
        modes = ["none", "hw"]
    else:
        _require(isinstance(raw, (list, tuple)) and raw,
                 "'swap_modes' must be a non-empty list")
        for mode in raw:
            _require(mode in SWAP_MODES,
                     f"unknown swap mode '{mode}'"
                     f" (choose from {', '.join(SWAP_MODES)})")
        modes = [mode for mode in SWAP_MODES if mode in raw]  # dedupe+order
    if synthetic:
        _require(not any("compiler" in mode for mode in modes),
                 "compiler swap modes need real programs, not synthetic"
                 " streams")
    return tuple(modes)


def _parse_config_overrides(raw: Any) -> Tuple[Tuple[str, Any], ...]:
    if raw is None:
        return ()
    _require(isinstance(raw, dict), "'config' must be an object")
    overrides = []
    for name in sorted(raw):
        _require(name in CONFIG_OVERRIDE_FIELDS,
                 f"unknown config override '{name}' (allowed:"
                 f" {', '.join(sorted(CONFIG_OVERRIDE_FIELDS))})")
        value = raw[name]
        if name == "branch_predictor":
            _require(isinstance(value, str),
                     "config override 'branch_predictor' must be a string")
        else:
            _require(isinstance(value, int)
                     and not isinstance(value, bool),
                     f"config override '{name}' must be an int")
        overrides.append((name, value))
    try:  # surface bad values (e.g. rob_entries=0) as a 400, not a 500
        MachineConfig(**dict(overrides))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid machine config: {exc}") from None
    return tuple(overrides)


def parse_request(payload: Any) -> EvalRequest:
    """Validate and normalise one decoded JSON request body."""
    _require(isinstance(payload, dict), "request body must be a JSON object")
    known = {"fu", "workloads", "policies", "swap_modes", "scale", "stats",
             "synthetic", "cycles", "seed", "config", "engine", "delay_ms"}
    unknown = sorted(set(payload) - known)
    _require(not unknown, f"unknown request field(s): {', '.join(unknown)}")

    fu = payload.get("fu", "ialu")
    _require(fu in ("ialu", "fpau"), "'fu' must be 'ialu' or 'fpau'")

    synthetic = payload.get("synthetic", False)
    _require(isinstance(synthetic, bool), "'synthetic' must be a boolean")

    cycles = payload.get("cycles", 15_000)
    _require(isinstance(cycles, int) and not isinstance(cycles, bool)
             and 0 < cycles <= 10_000_000,
             "'cycles' must be an int in (0, 10_000_000]")

    seed = payload.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             "'seed' must be an int")

    scale = payload.get("scale")
    if scale is not None:
        _require(isinstance(scale, int) and not isinstance(scale, bool)
                 and 1 <= scale <= 64, "'scale' must be an int in [1, 64]")

    stats = payload.get("stats", "measured")
    _require(stats in ("measured", "paper"),
             "'stats' must be 'measured' or 'paper'")

    engine = payload.get("engine", "auto")
    _require(engine == "auto" or engine in ENGINES,
             f"'engine' must be 'auto' or one of {', '.join(ENGINES)}")

    delay_ms = payload.get("delay_ms", 0)
    _require(isinstance(delay_ms, int) and not isinstance(delay_ms, bool)
             and 0 <= delay_ms <= 60_000,
             "'delay_ms' must be an int in [0, 60000]")

    raw_workloads = payload.get("workloads")
    if synthetic:
        _require(raw_workloads in (None, []),
                 "synthetic requests take no 'workloads'")
        workloads: Tuple[str, ...] = ()
    else:
        suite = {load.name for load in all_workloads()}
        if raw_workloads is None:
            kind = "int" if fu == "ialu" else "fp"
            workloads = tuple(load.name for load in all_workloads(kind))
        else:
            _require(isinstance(raw_workloads, (list, tuple))
                     and raw_workloads,
                     "'workloads' must be a non-empty list of names")
            _require(len(raw_workloads) <= MAX_WORKLOADS,
                     f"at most {MAX_WORKLOADS} workloads per request")
            for name in raw_workloads:
                _require(isinstance(name, str) and name in suite,
                         f"unknown workload '{name}' (see 'repro"
                         f" workloads')")
            # canonical order: a suite is a set; dedupe and sort so
            # ["li","compress"] and ["compress","li"] share a key
            workloads = tuple(sorted(set(raw_workloads)))

    return EvalRequest(
        fu=fu,
        workloads=workloads,
        policies=_parse_policies(payload.get("policies")),
        swap_modes=_parse_swap_modes(payload.get("swap_modes"), synthetic),
        scale=scale,
        stats=stats,
        synthetic=synthetic,
        cycles=cycles,
        seed=seed,
        config_overrides=_parse_config_overrides(payload.get("config")),
        engine=engine,
        delay_ms=delay_ms,
    )


def request_key(request: EvalRequest,
                program_fingerprints: Sequence[str]) -> str:
    """Content-addressed identity of one evaluation.

    Built from the *existing* fingerprints — the assembled programs'
    content hashes and ``MachineConfig.fingerprint()`` — plus the
    normalised evaluation grid.  Engine and ``delay_ms`` are excluded:
    neither changes a single response byte.
    """
    canon = json.dumps([
        "eval-v1", request.fu, list(program_fingerprints),
        request.machine_config().fingerprint(),
        list(request.policies), list(request.swap_modes), request.stats,
        ["synthetic", request.cycles, request.seed] if request.synthetic
        else ["programs", list(request.workloads), request.scale],
    ], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:32]


def etag_for(key: str) -> str:
    """The HTTP ETag a response under ``key`` carries."""
    return f'"{key}"'


__all__ = ["CONFIG_OVERRIDE_FIELDS", "EvalRequest", "MAX_POLICIES",
           "MAX_WORKLOADS", "ProtocolError", "SWAP_MODES", "etag_for",
           "parse_request", "request_key"]
