"""The asyncio evaluation server: steering-as-a-service.

A deliberately dependency-free HTTP/1.1 service on stdlib asyncio
streams.  The request path is a memoization ladder, cheapest rung
first, mirroring way-memoization in low-power caches — a hit must
bypass every heavier mechanism below it:

1. **fingerprint revalidation** — the ETag *is* the request key, so a
   matching ``If-None-Match`` answers ``304`` from the hash alone;
2. **response cache** — an LRU of rendered response bodies by key;
3. **single flight** — concurrent misses for one key coalesce onto one
   in-flight future; exactly one evaluation runs, every waiter gets
   the same bytes;
4. **trace cache** — the evaluation itself replays content-addressed
   recorded streams (and ``TraceCacheLock`` extends the single flight
   across server *processes* sharing a cache directory);
5. **simulation** — only a stream nobody anywhere has recorded yet.

Backpressure: admission is bounded by the number of distinct
evaluations in flight (coalesced waiters are free); past the limit the
server answers ``429`` with ``Retry-After``.  ``SIGTERM``/``SIGINT``
begin a graceful drain — in-flight work finishes and is delivered,
new evaluations are refused with ``429``.

Every decision increments a counter or moves a gauge in a
:class:`~repro.telemetry.metrics.MetricsRegistry`, served at
``/metrics`` (table) and ``/metrics.json`` (merge-ready dict), so the
load harness and the future dashboard read the same numbers.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..telemetry import MetricsRegistry, format_metrics
from .executor import ExecutionError, evaluate_request, make_executor
from .protocol import (EvalRequest, ProtocolError, etag_for, parse_request,
                       request_key)

MAX_BODY_BYTES = 1 << 20  # a request is a small JSON object
MAX_HEADER_BYTES = 32 * 1024
IDLE_TIMEOUT = 75.0  # keep-alive connections idle longer are dropped

#: histogram edges for request latency, in milliseconds
LATENCY_EDGES = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
                 10_000, 30_000)

_STATUS_TEXT = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can turn."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = OS-assigned; the bound port is announced
    cache_dir: Optional[str] = None
    executor: str = "pool"
    max_workers: int = 2
    max_batch: int = 32
    queue_limit: int = 64
    request_timeout: float = 300.0
    drain_grace: float = 30.0
    response_cache_entries: int = 256
    retry_after: float = 1.0
    allow_delay: bool = False  # honour the test-only delay_ms knob
    #: when non-empty, only these policy kinds may be evaluated — a
    #: deployment cap on per-request work ('original' is always allowed;
    #: it is the baseline every request carries)
    allowed_policies: Tuple[str, ...] = ()


@dataclass
class _InFlight:
    """One single-flight entry: the leader's future plus accounting."""

    future: "asyncio.Future[Dict[str, Any]]"
    waiters: int = 0


@dataclass
class _HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    close: bool = False


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class EvalServer:
    """The evaluation service.  One instance per listening socket."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.executor = make_executor(self.config.executor,
                                      self.config.max_workers,
                                      self.config.request_timeout,
                                      self.config.max_batch)
        self._inflight: Dict[str, _InFlight] = {}
        self._responses: "OrderedDict[str, bytes]" = OrderedDict()
        self._key_cache: "OrderedDict[Tuple, str]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._open_requests = 0
        self._connections = 0
        self.address: Optional[Tuple[str, int]] = None

        reg = self.registry
        self._c_requests = reg.counter("server.http.requests")
        self._c_2xx = reg.counter("server.http.2xx")
        self._c_4xx = reg.counter("server.http.4xx")
        self._c_5xx = reg.counter("server.http.5xx")
        self._c_304 = reg.counter("server.http.304")
        self._c_hits = reg.counter("server.cache.hits")
        self._c_misses = reg.counter("server.cache.misses")
        self._c_coalesced = reg.counter("server.coalesced.waiters")
        self._c_executions = reg.counter("server.executions")
        self._c_failures = reg.counter("server.executions.failed")
        self._c_simulations = reg.counter("server.simulations")
        self._c_rejected_full = reg.counter("server.rejected.queue_full")
        self._c_rejected_drain = reg.counter("server.rejected.draining")
        self._c_timeouts = reg.counter("server.timeouts")
        self._g_queue = reg.gauge("server.queue.depth")
        self._g_inflight = reg.gauge("server.inflight.singles")
        self._g_connections = reg.gauge("server.connections.open")
        self._h_latency = reg.histogram("server.request.ms", LATENCY_EDGES)

    # ----- lifecycle ------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    def begin_drain(self) -> None:
        """Stop admitting evaluations; finish what is in flight."""
        if self._draining:
            return
        self._draining = True
        if not self._inflight and self._open_requests == 0:
            self._drained.set()

    @property
    def draining(self) -> bool:
        return self._draining

    async def serve_until_drained(self) -> None:
        """Serve until a drain completes (SIGTERM/SIGINT or
        :meth:`begin_drain`), then shut the listener down."""
        assert self._server is not None, "call start() first"
        await self._drained.wait()
        grace = self.config.drain_grace
        if self._inflight:
            waiting = [entry.future for entry in self._inflight.values()]
            await asyncio.wait(waiting, timeout=grace)
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.executor.close()

    # ----- connection handling -------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        self._g_connections.high_water(self._connections)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), IDLE_TIMEOUT)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ConnectionError):
                    return
                if request is None:
                    return
                self._open_requests += 1
                try:
                    status, headers, body = await self._dispatch(request)
                finally:
                    self._open_requests -= 1
                    self._maybe_drained()
                try:
                    await self._write_response(writer, request, status,
                                               headers, body)
                except (ConnectionError, asyncio.CancelledError):
                    return
                if request.close:
                    return
        finally:
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: server.close() cancels client tasks
                # mid-wait; the transport is already being torn down
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[_HttpRequest]:
        line = await reader.readline()
        if not line:
            return None
        if len(line) > MAX_HEADER_BYTES:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, version = parts
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        close = (headers.get("connection", "").lower() == "close"
                 or version == "HTTP/1.0")
        return _HttpRequest(method, path, headers, body, close)

    async def _write_response(self, writer: asyncio.StreamWriter,
                              request: _HttpRequest, status: int,
                              headers: Dict[str, str], body: bytes) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Server: repro/{__version__}",
                 f"Content-Length: {len(body)}"]
        if "Content-Type" not in headers and body:
            lines.append("Content-Type: application/json")
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        lines.append(
            f"Connection: {'close' if request.close else 'keep-alive'}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        if request.method != "HEAD":
            writer.write(body)
        await writer.drain()

    # ----- routing --------------------------------------------------------

    async def _dispatch(self, request: _HttpRequest
                        ) -> Tuple[int, Dict[str, str], bytes]:
        self._c_requests.inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            status, headers, body = await self._route(request)
        except _HttpError as exc:
            status, headers, body = exc.status, {}, _json_error(exc.message)
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            status, headers, body = 500, {}, _json_error(
                f"internal error: {type(exc).__name__}: {exc}")
        self._h_latency.observe((loop.time() - started) * 1000.0)
        if status == 304:
            self._c_304.inc()
        elif status < 300:
            self._c_2xx.inc()
        elif status < 500:
            self._c_4xx.inc()
        else:
            self._c_5xx.inc()
        return status, headers, body

    async def _route(self, request: _HttpRequest
                     ) -> Tuple[int, Dict[str, str], bytes]:
        path = request.path.split("?", 1)[0]
        if path == "/v1/evaluate":
            if request.method != "POST":
                return 405, {"Allow": "POST"}, _json_error(
                    "evaluate takes POST")
            return await self._handle_evaluate(request)
        if request.method not in ("GET", "HEAD"):
            return 405, {"Allow": "GET"}, _json_error(
                f"{path} takes GET")
        if path == "/healthz":
            payload = {"status": "draining" if self._draining else "ok",
                       "version": __version__,
                       "inflight": len(self._inflight)}
            return 200, {}, _json_bytes(payload)
        if path == "/metrics":
            text = format_metrics(self.registry, title="server metrics")
            return 200, {"Content-Type": "text/plain; charset=utf-8"}, \
                (text + "\n").encode("utf-8")
        if path == "/metrics.json":
            return 200, {}, _json_bytes(self.metrics_snapshot())
        return 404, {}, _json_error(f"no route for {path}")

    # ----- the evaluation ladder -----------------------------------------

    async def _handle_evaluate(self, request: _HttpRequest
                               ) -> Tuple[int, Dict[str, str], bytes]:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, _json_error(f"invalid JSON body: {exc}")
        try:
            parsed = parse_request(payload)
        except ProtocolError as exc:
            return 400, {}, _json_error(str(exc))
        if parsed.delay_ms and not self.config.allow_delay:
            return 400, {}, _json_error(
                "delay_ms requires the server to run with --allow-delay")
        if self.config.allowed_policies:
            allowed = set(self.config.allowed_policies) | {"original"}
            refused = sorted(set(parsed.policies) - allowed)
            if refused:
                return 400, {}, _json_error(
                    f"policy kind(s) not served here:"
                    f" {', '.join(refused)} (this server evaluates:"
                    f" {', '.join(sorted(allowed))})")

        key = await self._key_for(parsed)
        etag = etag_for(key)
        base_headers = {"ETag": etag, "X-Request-Key": key}

        # rung 1: fingerprint revalidation — nothing below this runs
        if request.headers.get("if-none-match") == etag:
            return 304, base_headers, b""

        # rung 2: rendered-response cache
        cached = self._responses.get(key)
        if cached is not None:
            self._responses.move_to_end(key)
            self._c_hits.inc()
            return 200, {**base_headers, "X-Cache": "hit"}, cached
        self._c_misses.inc()

        # rung 3: single flight
        entry = self._inflight.get(key)
        if entry is not None:
            entry.waiters += 1
            self._c_coalesced.inc()
            return await self._await_result(key, entry.future, base_headers,
                                            coalesced=True)
        if self._draining:
            self._c_rejected_drain.inc()
            return 429, {"Retry-After": "60"}, _json_error(
                "server is draining; retry against another replica")
        if len(self._inflight) >= self.config.queue_limit:
            self._c_rejected_full.inc()
            return 429, {"Retry-After": str(self.config.retry_after)}, \
                _json_error(f"admission queue full"
                            f" ({self.config.queue_limit} evaluations in"
                            f" flight); retry after Retry-After seconds")

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = _InFlight(future=future)
        self._g_queue.set(len(self._inflight))
        self._g_inflight.high_water(len(self._inflight))
        self._c_executions.inc()
        asyncio.ensure_future(self._execute(key, parsed, future))
        return await self._await_result(key, future, base_headers,
                                        coalesced=False)

    async def _execute(self, key: str, parsed: EvalRequest,
                       future: "asyncio.Future[Dict[str, Any]]") -> None:
        payload = parsed.to_payload()
        payload["cache_dir"] = self.config.cache_dir
        payload["key"] = key
        try:
            result = await self.executor.submit(key, payload)
        except ExecutionError as exc:
            self._c_failures.inc()
            if not future.done():
                future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 - executor boundary
            self._c_failures.inc()
            if not future.done():
                future.set_exception(
                    ExecutionError({"type": type(exc).__name__,
                                    "message": str(exc)}))
        else:
            self._c_simulations.inc(result["meta"].get("simulations", 0))
            body = _json_bytes(result["body"])
            self._responses[key] = body
            while len(self._responses) > self.config.response_cache_entries:
                self._responses.popitem(last=False)
            if not future.done():
                future.set_result(result)
        finally:
            self._inflight.pop(key, None)
            self._g_queue.set(len(self._inflight))
            self._maybe_drained()

    async def _await_result(self, key: str,
                            future: "asyncio.Future[Dict[str, Any]]",
                            base_headers: Dict[str, str],
                            coalesced: bool
                            ) -> Tuple[int, Dict[str, str], bytes]:
        try:
            # shield: one waiter timing out must not cancel the shared
            # computation the other waiters (and the cache) depend on
            result = await asyncio.wait_for(asyncio.shield(future),
                                            self.config.request_timeout)
        except asyncio.TimeoutError:
            self._c_timeouts.inc()
            return 504, base_headers, _json_error(
                f"evaluation exceeded {self.config.request_timeout:.0f}s")
        except ExecutionError as exc:
            return 500, base_headers, _json_error(
                f"evaluation failed: {exc.error.get('type')}:"
                f" {exc.error.get('message')}")
        meta = result["meta"]
        headers = {
            **base_headers,
            "X-Cache": "coalesced" if coalesced else "computed",
            "X-Simulations": str(meta.get("simulations", 0)),
            "X-Trace-Cache": f"{meta.get('trace_cache_hits', 0)} hits"
                             f" {meta.get('trace_cache_misses', 0)} misses",
            "X-Compute-Seconds": str(meta.get("compute_seconds", 0)),
        }
        return 200, headers, _json_bytes(result["body"])

    async def _key_for(self, parsed: EvalRequest) -> str:
        """Fingerprint-derived key, memoised on the normalised request.

        Building programs to fingerprint them costs a few milliseconds,
        so the (request -> key) edge is itself a small LRU — duplicate
        traffic (the common case under load) never reassembles."""
        ident = (parsed.fu, parsed.workloads, parsed.policies,
                 parsed.swap_modes, parsed.scale, parsed.stats,
                 parsed.synthetic, parsed.cycles, parsed.seed,
                 parsed.config_overrides)
        key = self._key_cache.get(ident)
        if key is not None:
            self._key_cache.move_to_end(ident)
            return key
        if parsed.synthetic:
            fingerprints: List[str] = []
        else:
            from .executor import build_programs
            loop = asyncio.get_running_loop()
            programs = await loop.run_in_executor(None, build_programs,
                                                  parsed)
            fingerprints = [program.fingerprint() for program in programs]
        key = request_key(parsed, fingerprints)
        self._key_cache[ident] = key
        while len(self._key_cache) > 1024:
            self._key_cache.popitem(last=False)
        return key

    # ----- reporting ------------------------------------------------------

    def _maybe_drained(self) -> None:
        if self._draining and not self._inflight \
                and self._open_requests == 0:
            self._drained.set()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Registry dump plus the ratios the load harness asserts on."""
        snapshot = self.registry.to_dict()
        counters = snapshot["counters"]
        evaluated = (counters.get("server.cache.hits", 0)
                     + counters.get("server.coalesced.waiters", 0)
                     + counters.get("server.executions", 0)
                     + counters.get("server.http.304", 0))
        served_cheap = evaluated - counters.get("server.executions", 0)
        snapshot["derived"] = {
            "coalesce_ratio": (served_cheap / evaluated) if evaluated else 0.0,
            "cache_hit_rate": ((counters.get("server.cache.hits", 0)
                                + counters.get("server.http.304", 0))
                               / evaluated) if evaluated else 0.0,
            "queue_depth": len(self._inflight),
            "draining": self._draining,
        }
        return snapshot


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _json_error(message: str) -> bytes:
    return _json_bytes({"error": message})


async def run_server(config: ServerConfig, announce=print) -> int:
    """``repro serve``: bind, announce, serve until drained."""
    server = EvalServer(config)
    host, port = await server.start()
    server.install_signal_handlers()
    announce(json.dumps({"event": "listening", "host": host, "port": port,
                         "executor": server.executor.kind,
                         "cache_dir": config.cache_dir,
                         "pid": os.getpid()}), flush=True)
    await server.serve_until_drained()
    counters = server.registry.counter_values()
    announce(json.dumps({
        "event": "drained",
        "requests": counters.get("server.http.requests", 0),
        "executions": counters.get("server.executions", 0),
        "coalesced": counters.get("server.coalesced.waiters", 0),
        "rejected": counters.get("server.rejected.queue_full", 0)
        + counters.get("server.rejected.draining", 0),
    }), flush=True)
    return 0


def serve_main(config: ServerConfig) -> int:
    try:
        return asyncio.run(run_server(config))
    except KeyboardInterrupt:  # pragma: no cover - signal race on exit
        return 0


__all__ = ["EvalServer", "LATENCY_EDGES", "ServerConfig", "run_server",
           "serve_main"]
