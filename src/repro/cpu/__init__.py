"""Out-of-order superscalar cycle simulator (SimpleScalar stand-in)."""

from .branch import BimodalPredictor
from .cache import CacheConfig, DataCache
from .config import DEFAULT_FU_COUNTS, MachineConfig, default_config
from .golden import ExecutionLimitExceeded, GoldenResult, run_program
from .memory import Memory, MemoryError_
from .simulator import (CycleLimitExceeded, DeadlockDetected,
                        DiagnosticSnapshot, Simulator, simulate)
from .trace import (IssueGroup, IssueListener, ListenerFanout, MicroOp,
                    SimulationResult, TraceCollector)
from .tracefile import (FORMAT_VERSION, SUPPORTED_VERSIONS, TraceFormatError,
                        TraceWriter, header_result, load_trace,
                        read_trace_header, replay, save_trace, write_trace)

__all__ = [
    "BimodalPredictor",
    "CacheConfig", "DataCache",
    "DEFAULT_FU_COUNTS", "MachineConfig", "default_config",
    "ExecutionLimitExceeded", "GoldenResult", "run_program",
    "Memory", "MemoryError_",
    "CycleLimitExceeded", "DeadlockDetected", "DiagnosticSnapshot",
    "Simulator", "simulate",
    "IssueGroup", "IssueListener", "ListenerFanout", "MicroOp",
    "SimulationResult", "TraceCollector",
    "FORMAT_VERSION", "SUPPORTED_VERSIONS", "TraceFormatError",
    "TraceWriter", "header_result", "load_trace", "read_trace_header",
    "replay", "save_trace", "write_trace",
]
