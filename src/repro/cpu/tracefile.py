"""Trace persistence: save and replay issue-group streams.

Simulating a workload is far more expensive than evaluating a steering
policy on its operand stream, so experiments that sweep many policies
benefit from capturing the stream once.  Traces are stored as
gzip-compressed JSON lines — one line of metadata, then one line per
issue group:

    [cycle, fu_class,
     [[op, op1, op2, has_two, static, spec, swap, critical], ...]]

Operand images are serialised as hex strings to stay compact and
byte-exact.  ``TraceWriter`` doubles as a simulator listener so capture
happens inline with simulation.

Reading is hardened against the failure modes long campaigns actually
hit — truncated gzip streams (a killed writer), corrupt JSON lines,
and missing or malformed headers — all of which raise
:class:`TraceFormatError` naming the file and line instead of a raw
``EOFError`` / ``json.JSONDecodeError`` deep in the stack.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..isa.instructions import FUClass, opcode
from .trace import IssueGroup, MicroOp

FORMAT_VERSION = 1

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file is truncated, corrupt, or not a trace at all.

    ``path`` and ``line`` (1-based; 0 when the failure is not tied to a
    specific line, e.g. a bad gzip container) locate the damage.
    """

    def __init__(self, path: PathLike, line: int, reason: str):
        self.path = str(path)
        self.line = line
        where = f"{self.path}, line {line}" if line else self.path
        super().__init__(f"bad trace file ({where}): {reason}")


def _encode_group(group: IssueGroup) -> str:
    ops = [[op.op.name, format(op.op1, "x"), format(op.op2, "x"),
            int(op.has_two), op.static_index, int(op.speculative),
            int(op.swapped), int(op.critical)]
           for op in group.ops]
    return json.dumps([group.cycle, group.fu_class.value, ops],
                      separators=(",", ":"))


def _decode_group(line: str) -> IssueGroup:
    cycle, fu_value, raw_ops = json.loads(line)
    ops = [MicroOp(opcode(name), int(op1, 16), int(op2, 16),
                   has_two=bool(has_two), static_index=static,
                   speculative=bool(spec), swapped=bool(swap),
                   critical=bool(critical))
           for name, op1, op2, has_two, static, spec, swap, critical
           in raw_ops]
    return IssueGroup(cycle, FUClass(fu_value), ops)


class TraceWriter:
    """Simulator listener streaming issue groups to a trace file."""

    def __init__(self, path: PathLike,
                 fu_classes: Optional[Iterable[FUClass]] = None,
                 name: str = "trace"):
        self._filter = set(fu_classes) if fu_classes is not None else None
        self._file = gzip.open(Path(path), "wt", encoding="utf-8")
        self.groups_written = 0
        header = {"version": FORMAT_VERSION, "name": name,
                  "fu_classes": sorted(fu.value for fu in self._filter)
                  if self._filter is not None else None}
        self._file.write(json.dumps(header) + "\n")

    def __call__(self, group: IssueGroup) -> None:
        if self._filter is not None and group.fu_class not in self._filter:
            return
        self._file.write(_encode_group(group) + "\n")
        self.groups_written += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def save_trace(path: PathLike, groups: Iterable[IssueGroup],
               name: str = "trace") -> int:
    """Write an iterable of issue groups to ``path``; returns count."""
    with TraceWriter(path, name=name) as writer:
        for group in groups:
            writer(group)
        return writer.groups_written


def _parse_header(path: PathLike, line: str) -> dict:
    """Decode and validate the metadata line."""
    if not line:
        raise TraceFormatError(path, 1, "empty file, expected a JSON header")
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(path, 1, f"corrupt header: {exc}") from exc
    if not isinstance(header, dict) or "version" not in header:
        raise TraceFormatError(
            path, 1, "missing header (first line must be a JSON object"
            " with a 'version' key)")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            path, 1, f"unsupported trace version {header.get('version')!r}"
            f" (expected {FORMAT_VERSION})")
    return header


def read_trace_header(path: PathLike) -> dict:
    """Read a trace file's metadata line."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        try:
            line = handle.readline()
        except (EOFError, OSError, gzip.BadGzipFile) as exc:
            raise TraceFormatError(path, 0, str(exc)) from exc
    return _parse_header(path, line)


def load_trace(path: PathLike) -> Iterator[IssueGroup]:
    """Stream issue groups back from a trace file.

    Raises :class:`TraceFormatError` for a truncated gzip stream, a
    corrupt JSON line, or a bad/missing header, identifying the file
    and the (1-based) line the damage starts at.
    """
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        try:
            first = handle.readline()
        except (EOFError, OSError, gzip.BadGzipFile) as exc:
            raise TraceFormatError(path, 0, str(exc)) from exc
        _parse_header(path, first)
        lineno = 1
        while True:
            lineno += 1
            try:
                line = handle.readline()
            except (EOFError, OSError, gzip.BadGzipFile) as exc:
                # a killed TraceWriter leaves a truncated gzip member;
                # everything up to here replayed fine, but the tail is
                # unrecoverable and silently dropping it would corrupt
                # statistics
                raise TraceFormatError(
                    path, lineno, f"truncated gzip stream: {exc}") from exc
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                yield _decode_group(line)
            except (json.JSONDecodeError, ValueError, KeyError, TypeError,
                    IndexError) as exc:
                raise TraceFormatError(
                    path, lineno, f"corrupt issue group: {exc}") from exc


def replay(path: PathLike, listeners: Iterable) -> int:
    """Feed a stored trace to evaluator listeners; returns group count."""
    listeners = list(listeners)
    count = 0
    for group in load_trace(path):
        for listener in listeners:
            listener(group)
        count += 1
    return count
