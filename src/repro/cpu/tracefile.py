"""Trace persistence: save and replay issue-group streams.

Simulating a workload is far more expensive than evaluating a steering
policy on its operand stream, so experiments that sweep many policies
benefit from capturing the stream once.  Traces are stored as
gzip-compressed JSON lines — one line of metadata, then one line per
issue group:

    [cycle, fu_class,
     [[op, op1, op2, has_two, static, spec, swap, critical], ...]]

Operand images are serialised as hex strings to stay compact and
byte-exact.  ``TraceWriter`` doubles as a simulator listener so capture
happens inline with simulation.

Reading is hardened against the failure modes long campaigns actually
hit — truncated gzip streams (a killed writer), corrupt JSON lines,
and missing or malformed headers — all of which raise
:class:`TraceFormatError` naming the file and line instead of a raw
``EOFError`` / ``json.JSONDecodeError`` deep in the stack.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from ..isa.instructions import FUClass, opcode
from .trace import IssueGroup, MicroOp, SimulationResult

# Version 2 headers carry the machine-config fingerprint and source
# kind used by the content-addressed trace cache, plus (for complete
# post-run writes) the run's SimulationResult summary.  Version 1
# traces lack those keys but the group lines are identical, so they
# still replay; unknown *future* versions are refused.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file is truncated, corrupt, or not a trace at all.

    ``path`` and ``line`` (1-based; 0 when the failure is not tied to a
    specific line, e.g. a bad gzip container) locate the damage.
    """

    def __init__(self, path: PathLike, line: int, reason: str):
        self.path = str(path)
        self.line = line
        where = f"{self.path}, line {line}" if line else self.path
        super().__init__(f"bad trace file ({where}): {reason}")


def _encode_group(group: IssueGroup) -> str:
    ops = [[op.op.name, format(op.op1, "x"), format(op.op2, "x"),
            int(op.has_two), op.static_index, int(op.speculative),
            int(op.swapped), int(op.critical)]
           for op in group.ops]
    return json.dumps([group.cycle, group.fu_class.value, ops],
                      separators=(",", ":"))


def _decode_group(line: str) -> IssueGroup:
    cycle, fu_value, raw_ops = json.loads(line)
    ops = [MicroOp(opcode(name), int(op1, 16), int(op2, 16),
                   has_two=bool(has_two), static_index=static,
                   speculative=bool(spec), swapped=bool(swap),
                   critical=bool(critical))
           for name, op1, op2, has_two, static, spec, swap, critical
           in raw_ops]
    return IssueGroup(cycle, FUClass(fu_value), ops)


class TraceWriter:
    """Simulator listener streaming issue groups to a trace file."""

    def __init__(self, path: PathLike,
                 fu_classes: Optional[Iterable[FUClass]] = None,
                 name: str = "trace",
                 config_fingerprint: Optional[str] = None,
                 source_kind: str = "live"):
        self._filter = set(fu_classes) if fu_classes is not None else None
        self._file = gzip.open(Path(path), "wt", encoding="utf-8")
        self.groups_written = 0
        header = {"version": FORMAT_VERSION, "name": name,
                  "fu_classes": sorted(fu.value for fu in self._filter)
                  if self._filter is not None else None,
                  "config": config_fingerprint,
                  "source": source_kind}
        self._file.write(json.dumps(header) + "\n")

    def __call__(self, group: IssueGroup) -> None:
        if self._filter is not None and group.fu_class not in self._filter:
            return
        self._file.write(_encode_group(group) + "\n")
        self.groups_written += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def save_trace(path: PathLike, groups: Iterable[IssueGroup],
               name: str = "trace") -> int:
    """Write an iterable of issue groups to ``path``; returns count."""
    with TraceWriter(path, name=name) as writer:
        for group in groups:
            writer(group)
        return writer.groups_written


def write_trace(path: PathLike, groups: Iterable[IssueGroup],
                name: str = "trace",
                fu_classes: Optional[Iterable[FUClass]] = None,
                config_fingerprint: Optional[str] = None,
                source_kind: str = "live",
                result: Optional[SimulationResult] = None) -> int:
    """Write a *complete* trace atomically; returns the group count.

    Unlike the streaming :class:`TraceWriter` (which emits each group
    as it is published, before retroactive wrong-path marking), this
    takes an already-final group list — speculative flags included —
    and writes temp-then-rename, so a killed writer can never leave a
    truncated file under a cache key.  ``result`` (the run's
    :class:`~repro.cpu.trace.SimulationResult`) is stored in the header
    so replay can report cycles/IPC without re-simulating.
    """
    target = Path(path)
    wanted = set(fu_classes) if fu_classes is not None else None
    header: Dict[str, Any] = {
        "version": FORMAT_VERSION, "name": name,
        "fu_classes": sorted(fu.value for fu in wanted)
        if wanted is not None else None,
        "config": config_fingerprint,
        "source": source_kind,
    }
    if result is not None:
        header["result"] = result.to_dict()
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent))
    count = 0
    try:
        with gzip.open(os.fdopen(fd, "wb"), "wt",
                       encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for group in groups:
                if wanted is not None and group.fu_class not in wanted:
                    continue
                handle.write(_encode_group(group) + "\n")
                count += 1
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return count


def header_result(header: Dict[str, Any]) -> Optional[SimulationResult]:
    """Reconstruct the stored run summary from a v2 header, if any."""
    payload = header.get("result")
    if payload is None:
        return None
    return SimulationResult.from_dict(payload)


def _parse_header(path: PathLike, line: str) -> dict:
    """Decode and validate the metadata line."""
    if not line:
        raise TraceFormatError(path, 1, "empty file, expected a JSON header")
    try:
        header = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(path, 1, f"corrupt header: {exc}") from exc
    if not isinstance(header, dict) or "version" not in header:
        raise TraceFormatError(
            path, 1, "missing header (first line must be a JSON object"
            " with a 'version' key)")
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise TraceFormatError(
            path, 1, f"unsupported trace version {header.get('version')!r}"
            f" (supported: {', '.join(map(str, SUPPORTED_VERSIONS))})")
    return header


def read_trace_header(path: PathLike) -> dict:
    """Read a trace file's metadata line."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        try:
            line = handle.readline()
        except (EOFError, OSError, gzip.BadGzipFile) as exc:
            raise TraceFormatError(path, 0, str(exc)) from exc
    return _parse_header(path, line)


def load_trace(path: PathLike) -> Iterator[IssueGroup]:
    """Stream issue groups back from a trace file.

    Raises :class:`TraceFormatError` for a truncated gzip stream, a
    corrupt JSON line, or a bad/missing header, identifying the file
    and the (1-based) line the damage starts at.
    """
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        try:
            first = handle.readline()
        except (EOFError, OSError, gzip.BadGzipFile) as exc:
            raise TraceFormatError(path, 0, str(exc)) from exc
        _parse_header(path, first)
        lineno = 1
        while True:
            lineno += 1
            try:
                line = handle.readline()
            except (EOFError, OSError, gzip.BadGzipFile) as exc:
                # a killed TraceWriter leaves a truncated gzip member;
                # everything up to here replayed fine, but the tail is
                # unrecoverable and silently dropping it would corrupt
                # statistics
                raise TraceFormatError(
                    path, lineno, f"truncated gzip stream: {exc}") from exc
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            try:
                yield _decode_group(line)
            except (json.JSONDecodeError, ValueError, KeyError, TypeError,
                    IndexError) as exc:
                raise TraceFormatError(
                    path, lineno, f"corrupt issue group: {exc}") from exc


def replay(path: PathLike, listeners: Iterable) -> int:
    """Feed a stored trace to evaluator listeners; returns group count."""
    listeners = list(listeners)
    count = 0
    for group in load_trace(path):
        for listener in listeners:
            listener(group)
        count += 1
    return count
