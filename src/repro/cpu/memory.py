"""Byte-addressed sparse memory for the simulators.

Backed by a dict so multi-megabyte address spaces cost only what is
touched.  Words are 4 bytes, doubles 8 bytes, little endian, and both
must be naturally aligned — the mini ISA has no unaligned accesses.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.program import DataImage


class MemoryError_(Exception):
    """Raised on unaligned access."""


class Memory:
    """Sparse main memory with word and double accessors."""

    def __init__(self, image: Optional[DataImage] = None):
        self._bytes: Dict[int, int] = dict(image.bytes_) if image else {}

    def load_byte(self, address: int) -> int:
        return self._bytes.get(address, 0)

    def store_byte(self, address: int, value: int) -> None:
        self._bytes[address] = value & 0xFF

    def load_word(self, address: int) -> int:
        if address % 4:
            raise MemoryError_(f"unaligned word load at 0x{address:x}")
        get = self._bytes.get
        return (get(address, 0)
                | (get(address + 1, 0) << 8)
                | (get(address + 2, 0) << 16)
                | (get(address + 3, 0) << 24))

    def store_word(self, address: int, bits: int) -> None:
        if address % 4:
            raise MemoryError_(f"unaligned word store at 0x{address:x}")
        store = self._bytes
        store[address] = bits & 0xFF
        store[address + 1] = (bits >> 8) & 0xFF
        store[address + 2] = (bits >> 16) & 0xFF
        store[address + 3] = (bits >> 24) & 0xFF

    def load_double(self, address: int) -> int:
        if address % 8:
            raise MemoryError_(f"unaligned double load at 0x{address:x}")
        get = self._bytes.get
        value = 0
        for i in range(8):
            value |= get(address + i, 0) << (8 * i)
        return value

    def store_double(self, address: int, bits: int) -> None:
        if address % 8:
            raise MemoryError_(f"unaligned double store at 0x{address:x}")
        for i in range(8):
            self._bytes[address + i] = (bits >> (8 * i)) & 0xFF

    def load(self, address: int, double: bool) -> int:
        """Width-dispatching load used by the simulators."""
        return self.load_double(address) if double else self.load_word(address)

    def store(self, address: int, bits: int, double: bool) -> None:
        """Width-dispatching store used by the simulators."""
        if double:
            self.store_double(address, bits)
        else:
            self.store_word(address, bits)

    def touched_bytes(self) -> int:
        """Number of distinct bytes ever written (for tests/diagnostics)."""
        return len(self._bytes)
