"""Byte-addressed sparse memory for the simulators.

Backed by a dict of *words* so multi-megabyte address spaces cost only
what is touched while keeping the hot word/double accessors a single
dict operation (the previous byte-dict paid four dict accesses per
word).  Words are 4 bytes, doubles 8 bytes, little endian, and both
must be naturally aligned — the mini ISA has no unaligned accesses.

Each entry maps ``address >> 2`` to ``(bits, mask)`` where ``mask`` is
the 4-bit set of bytes actually written, so byte-exact accounting
(:meth:`touched_bytes`, :meth:`touched_addresses`) survives the word
representation.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..isa.encoding import bit_count as _bit_count
from ..isa.program import DataImage


class MemoryError_(Exception):
    """Raised on unaligned access."""


class Memory:
    """Sparse main memory with word and double accessors."""

    def __init__(self, image: Optional[DataImage] = None):
        self._words: Dict[int, Tuple[int, int]] = {}
        if image:
            for address, value in image.bytes_.items():
                self.store_byte(address, value)

    def load_byte(self, address: int) -> int:
        entry = self._words.get(address >> 2)
        if entry is None:
            return 0
        return (entry[0] >> ((address & 3) << 3)) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        word = address >> 2
        shift = (address & 3) << 3
        bits, mask = self._words.get(word, (0, 0))
        self._words[word] = (
            (bits & ~(0xFF << shift)) | ((value & 0xFF) << shift),
            mask | (1 << (address & 3)))

    def load_word(self, address: int) -> int:
        if address & 3:
            raise MemoryError_(f"unaligned word load at 0x{address:x}")
        entry = self._words.get(address >> 2)
        return entry[0] if entry is not None else 0

    def store_word(self, address: int, bits: int) -> None:
        if address & 3:
            raise MemoryError_(f"unaligned word store at 0x{address:x}")
        self._words[address >> 2] = (bits & 0xFFFFFFFF, 0xF)

    def load_double(self, address: int) -> int:
        if address & 7:
            raise MemoryError_(f"unaligned double load at 0x{address:x}")
        words = self._words
        word = address >> 2
        low = words.get(word)
        high = words.get(word + 1)
        return ((low[0] if low is not None else 0)
                | ((high[0] if high is not None else 0) << 32))

    def store_double(self, address: int, bits: int) -> None:
        if address & 7:
            raise MemoryError_(f"unaligned double store at 0x{address:x}")
        words = self._words
        word = address >> 2
        words[word] = (bits & 0xFFFFFFFF, 0xF)
        words[word + 1] = ((bits >> 32) & 0xFFFFFFFF, 0xF)

    def load(self, address: int, double: bool) -> int:
        """Width-dispatching load used by the simulators."""
        return self.load_double(address) if double else self.load_word(address)

    def store(self, address: int, bits: int, double: bool) -> None:
        """Width-dispatching store used by the simulators."""
        if double:
            self.store_double(address, bits)
        else:
            self.store_word(address, bits)

    def touched_bytes(self) -> int:
        """Number of distinct bytes ever written (for tests/diagnostics)."""
        return sum(_bit_count(mask) for _, mask in self._words.values())

    def touched_addresses(self) -> Iterator[int]:
        """Byte addresses ever written, in no particular order.

        The public way for equivalence tests to enumerate state without
        depending on the storage representation.
        """
        for word, (_, mask) in self._words.items():
            base = word << 2
            for offset in range(4):
                if mask & (1 << offset):
                    yield base + offset
