"""Operand traces: the interface between the cycle simulator and the
steering/power evaluation layers.

Every cycle, the simulator emits one :class:`IssueGroup` per functional
unit class that issued at least one operation.  A group carries the
operations' operand *bit images* — exactly the information the paper's
routing logic sees.  Evaluation is stream-based: consumers subscribe to
the simulator and see groups as they are produced, so many steering
policies can be evaluated in a single simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from ..isa.instructions import FUClass, OpcodeInfo


@dataclass(slots=True)
class MicroOp:
    """One executed operation as seen at a functional unit's inputs.

    ``op1`` and ``op2`` are operand bit images (32-bit for integer
    classes, 64-bit for floating point classes).  Single-source
    operations carry ``op2 = 0`` with ``has_two = False`` — the second
    input port of the FU holds its previous (latched) value conceptually,
    but the paper's information-bit scheme treats the missing operand as
    a zero image, and we follow that convention consistently.
    """

    op: OpcodeInfo
    op1: int
    op2: int
    has_two: bool = True
    static_index: int = -1
    speculative: bool = False
    swapped: bool = False
    # oldest-first issue marks the op most likely on the critical path;
    # used by the heterogeneous-module hybrid (related work [19])
    critical: bool = False

    @property
    def hardware_swappable(self) -> bool:
        return self.op.hardware_swappable and self.has_two

    def swap(self) -> "MicroOp":
        """Return a copy with the operands exchanged."""
        return MicroOp(self.op, self.op2, self.op1, has_two=self.has_two,
                       static_index=self.static_index,
                       speculative=self.speculative, swapped=not self.swapped,
                       critical=self.critical)


@dataclass(slots=True)
class IssueGroup:
    """Operations of one FU class issued in one cycle."""

    cycle: int
    fu_class: FUClass
    ops: List[MicroOp]

    def __len__(self) -> int:
        return len(self.ops)


IssueListener = Callable[[IssueGroup], None]


@dataclass
class SimulationResult:
    """Summary statistics of one simulation run."""

    name: str
    cycles: int = 0
    retired_instructions: int = 0
    executed_ops: int = 0
    squashed_ops: int = 0
    branch_lookups: int = 0
    branch_mispredictions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    issue_counts: Dict[FUClass, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form, stored in trace headers so a replayed stream
        still knows the run it came from."""
        return {
            "name": self.name,
            "cycles": self.cycles,
            "retired_instructions": self.retired_instructions,
            "executed_ops": self.executed_ops,
            "squashed_ops": self.squashed_ops,
            "branch_lookups": self.branch_lookups,
            "branch_mispredictions": self.branch_mispredictions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "issue_counts": {fu.value: count
                             for fu, count in self.issue_counts.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationResult":
        result = cls(name=payload.get("name", "trace"))
        for attr in ("cycles", "retired_instructions", "executed_ops",
                     "squashed_ops", "branch_lookups",
                     "branch_mispredictions", "cache_hits", "cache_misses"):
            setattr(result, attr, int(payload.get(attr, 0)))
        result.issue_counts = {FUClass(name): int(count) for name, count
                               in payload.get("issue_counts", {}).items()}
        return result

    def telemetry_counters(self) -> Dict[str, int]:
        """The cumulative counters a live :class:`Simulator` exposes to
        telemetry, reconstructed from the stored totals — a replayed
        cell reports the same metric names as a simulated one."""
        counters = {
            "sim.cycles": self.cycles,
            "retired": self.retired_instructions,
            "executed": self.executed_ops,
            "squashed": self.squashed_ops,
            "branch.lookups": self.branch_lookups,
            "branch.mispredictions": self.branch_mispredictions,
        }
        for fu in FUClass:
            counters[f"issue.{fu.value}"] = self.issue_counts.get(fu, 0)
        return counters


class TraceCollector:
    """Issue listener that stores the full trace in memory.

    Intended for tests and small workloads; large experiments subscribe
    stream evaluators directly instead.
    """

    def __init__(self, fu_classes: Optional[Iterable[FUClass]] = None):
        self._filter = set(fu_classes) if fu_classes is not None else None
        self.groups: List[IssueGroup] = []

    def __call__(self, group: IssueGroup) -> None:
        if self._filter is None or group.fu_class in self._filter:
            self.groups.append(group)

    def groups_for(self, fu_class: FUClass) -> Iterator[IssueGroup]:
        return (group for group in self.groups if group.fu_class == fu_class)

    def op_count(self, fu_class: Optional[FUClass] = None) -> int:
        return sum(len(group) for group in self.groups
                   if fu_class is None or group.fu_class == fu_class)


class ListenerFanout:
    """Dispatch each issue group to several listeners."""

    def __init__(self, listeners: Iterable[IssueListener]):
        self._listeners = list(listeners)

    def __call__(self, group: IssueGroup) -> None:
        for listener in self._listeners:
            listener(group)
