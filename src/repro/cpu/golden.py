"""In-order golden-model interpreter.

Executes a :class:`~repro.isa.program.Program` one instruction at a
time, architecturally.  It serves three purposes:

* the reference against which the out-of-order simulator's final state
  is checked (they share :mod:`repro.isa.semantics`, but the OoO engine
  must also get renaming, forwarding and speculation right);
* the cheap execution vehicle for compiler profiling (section 4.4 of the
  paper: profile-guided static operand swapping);
* a fast way for workload tests to validate kernel outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..isa import encoding, semantics
from ..isa.instructions import (NUM_ARCH_REGS, FUClass, Instruction,
                                ZERO_REG)
from ..isa.program import Program
from .memory import Memory

# (instruction, op1_bits, op2_bits, has_two) observed at execution time
OpObserver = Callable[[Instruction, int, int, bool], None]


class ExecutionLimitExceeded(RuntimeError):
    """The program ran longer than the configured instruction budget."""


@dataclass
class GoldenResult:
    """Final architectural state after in-order execution."""

    registers: List[int]
    memory: Memory
    instructions: int
    halted: bool
    branch_outcomes: Dict[int, List[bool]] = field(default_factory=dict)

    def int_reg(self, index: int) -> int:
        """Signed value of integer register ``r<index>``."""
        return encoding.to_signed(self.registers[index])

    def fp_reg(self, index: int) -> float:
        """Float value of floating point register ``f<index>``."""
        return encoding.bits_to_float(self.registers[32 + index])


def run_program(program: Program, max_instructions: int = 10_000_000,
                observer: Optional[OpObserver] = None,
                record_branches: bool = False) -> GoldenResult:
    """Execute ``program`` to its ``halt`` and return the final state."""
    registers = [0] * NUM_ARCH_REGS
    memory = Memory(program.data)
    pc = 0
    executed = 0
    halted = False
    branch_outcomes: Dict[int, List[bool]] = {}
    code = program.instructions
    limit = len(code)

    while 0 <= pc < limit:
        if executed >= max_instructions:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions")
        instr = code[pc]
        executed += 1
        op = instr.op
        next_pc = pc + 1

        if op.name == "halt":
            halted = True
            break
        if op.is_jump:
            next_pc = instr.target
        elif op.is_branch:
            a = registers[instr.src1]
            b = registers[instr.src2]
            if observer is not None:
                observer(instr, a, b, True)
            taken = semantics.branch_taken(op, a, b)
            if record_branches:
                branch_outcomes.setdefault(pc, []).append(taken)
            if taken:
                next_pc = instr.target
        elif op.is_load:
            base = registers[instr.src1]
            address = semantics.effective_address(instr, base)
            if observer is not None:
                observer(instr, base, instr.imm, True)
            value = memory.load(address, double=op.name == "ld")
            _write(registers, instr.dest, value)
        elif op.is_store:
            base = registers[instr.src1]
            address = semantics.effective_address(instr, base)
            if observer is not None:
                observer(instr, base, instr.imm, True)
            memory.store(address, registers[instr.src2], double=op.name == "sd")
        else:
            a = registers[instr.src1] if instr.src1 is not None else 0
            if op.has_immediate:
                b = instr.imm
                has_two = True
            elif instr.src2 is not None:
                b = registers[instr.src2]
                has_two = True
            else:
                b = 0
                has_two = False
            if observer is not None:
                observer(instr, a, b, has_two)
            if op.fu_class in (FUClass.IALU, FUClass.IMULT):
                result = semantics.evaluate_int(op, a, b)
            else:
                result = semantics.evaluate_float(op, a, b)
            _write(registers, instr.dest, result)
        pc = next_pc

    return GoldenResult(registers=registers, memory=memory,
                        instructions=executed, halted=halted,
                        branch_outcomes=branch_outcomes)


def _write(registers: List[int], dest: Optional[int], value: int) -> None:
    if dest is not None and dest != ZERO_REG:
        registers[dest] = value
