"""L1 data cache model.

SimpleScalar's default configuration runs loads and stores through a
small set-associative L1; the timing side of our stand-in does the
same.  The cache tracks tags only (data lives in the flat memory model
— correctness never depends on the cache), with true-LRU replacement
per set, write-allocate stores, and a fixed miss penalty added to a
load's completion latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the L1 data cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    associativity: int = 4
    miss_penalty: int = 18

    def __post_init__(self) -> None:
        for field_name in ("size_bytes", "line_bytes", "associativity"):
            value = getattr(self, field_name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{field_name} must be a power of two")
        if self.size_bytes < self.line_bytes * self.associativity:
            raise ValueError("cache smaller than one set")
        if self.miss_penalty < 0:
            raise ValueError("miss penalty must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class DataCache:
    """Tag array with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.num_sets - 1
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int):
        line = address >> self._offset_bits
        return self._sets[line & self._index_mask], line

    def access(self, address: int) -> bool:
        """Probe (and fill) one line; returns True on hit.

        The most recently used line moves to the back of its set;
        misses allocate, evicting the least recently used line.
        """
        ways, line = self._locate(address)
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    def load_latency(self, address: int, base_latency: int) -> int:
        """Completion latency of a load at ``address``."""
        if self.access(address):
            return base_latency
        return base_latency + self.config.miss_penalty

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 1.0
        return self.hits / self.accesses
