"""Machine configuration for the out-of-order simulator.

The defaults reproduce the paper's evaluation machine: SimpleScalar 2.0
``sim-outorder`` in its default configuration — a 4-wide out-of-order
superscalar with 4 integer ALUs, 4 floating point adders, one integer
multiplier/divider and one floating point multiplier/divider.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..isa.instructions import FUClass
from ..telemetry.config import TelemetryConfig
from .cache import CacheConfig

DEFAULT_FU_COUNTS: Dict[FUClass, int] = {
    FUClass.IALU: 4,
    FUClass.FPAU: 4,
    FUClass.IMULT: 1,
    FUClass.FPMULT: 1,
    FUClass.LSU: 2,
}

# FU classes that are not internally pipelined: a new operation may not
# begin until the previous one completes.
UNPIPELINED_CLASSES = frozenset({FUClass.IMULT, FUClass.FPMULT})


@dataclass
class MachineConfig:
    """Parameters of the simulated superscalar core."""

    fetch_width: int = 4
    dispatch_width: int = 4
    retire_width: int = 4
    rob_entries: int = 64
    rs_entries_per_class: int = 8
    fu_counts: Dict[FUClass, int] = field(
        default_factory=lambda: dict(DEFAULT_FU_COUNTS))
    branch_predictor_entries: int = 2048
    branch_predictor: str = "bimodal"  # or "gshare"
    mispredict_penalty: int = 2
    max_cycles: int = 50_000_000
    # retirement-progress watchdog: if no instruction retires for this
    # many cycles while the ROB is non-empty, the simulator raises
    # DeadlockDetected with a diagnostic snapshot instead of spinning
    # until max_cycles.  Must comfortably exceed the longest completion
    # latency (unpipelined chains + cache misses); 0 disables.
    watchdog_cycles: int = 100_000
    # L1 data cache; None models an ideal (always-hit) memory
    cache: Optional[CacheConfig] = field(default_factory=CacheConfig)
    # what to record while running; None disables telemetry entirely
    # (the simulator then skips every hook — the near-zero-cost path)
    telemetry: Optional[TelemetryConfig] = None

    def __post_init__(self) -> None:
        if self.fetch_width < 1 or self.dispatch_width < 1 or self.retire_width < 1:
            raise ValueError("pipeline widths must be at least 1")
        if self.rob_entries < self.dispatch_width:
            raise ValueError("ROB must hold at least one dispatch group")
        for fu_class in FUClass:
            if self.fu_counts.get(fu_class, 0) < 1:
                raise ValueError(f"need at least one {fu_class.value} unit")
        if self.branch_predictor_entries & (self.branch_predictor_entries - 1):
            raise ValueError("branch predictor size must be a power of two")
        if self.branch_predictor not in ("bimodal", "gshare"):
            raise ValueError("branch predictor must be 'bimodal' or 'gshare'")
        if self.watchdog_cycles < 0:
            raise ValueError("watchdog_cycles must be >= 0 (0 disables)")

    def modules(self, fu_class: FUClass) -> int:
        """Number of modules of the given FU class."""
        return self.fu_counts[fu_class]

    def fingerprint(self) -> str:
        """Stable hash of every field that shapes the run's outcome.

        This keys the trace cache, so it covers the parameters that can
        change what a simulation *publishes* — pipeline widths and
        capacities, FU counts, the branch predictor, the cache
        geometry/timing — plus the abort limits ``max_cycles`` and
        ``watchdog_cycles``.  The limits never alter a completed
        stream, but they decide whether a run completes at all: a
        config that would abort (and surface its diagnostic snapshot)
        must not silently replay a more permissive config's trace.
        ``telemetry`` only observes and is deliberately excluded —
        turning sampling on must not invalidate a cache.
        """
        cache = None
        if self.cache is not None:
            cache = [self.cache.size_bytes, self.cache.line_bytes,
                     self.cache.associativity, self.cache.miss_penalty]
        payload = [
            self.fetch_width, self.dispatch_width, self.retire_width,
            self.rob_entries, self.rs_entries_per_class,
            {fu.value: count for fu, count in sorted(
                self.fu_counts.items(), key=lambda kv: kv[0].value)},
            self.branch_predictor, self.branch_predictor_entries,
            self.mispredict_penalty, cache,
            self.max_cycles, self.watchdog_cycles,
        ]
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def default_config() -> MachineConfig:
    """The paper's evaluation configuration."""
    return MachineConfig()
