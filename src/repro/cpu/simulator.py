"""Out-of-order superscalar cycle simulator (Tomasulo + ROB).

A Python stand-in for SimpleScalar 2.0's ``sim-outorder``, which the
paper uses for its evaluation.  The machine fetches along a bimodal
predicted path, renames through a register alias table into a reorder
buffer, holds waiting operations in per-FU-class reservation stations,
issues oldest-first to free functional unit modules, and retires in
order.  Stores write memory only at retirement; loads forward from
older in-flight stores, conservatively waiting until all older store
addresses are known.

Every cycle, the operations issued to each FU class are published to
subscribed listeners as an :class:`~repro.cpu.trace.IssueGroup` carrying
the operand bit images — this stream is what the paper's steering logic
operates on, and it includes wrong-path (later squashed) operations just
as real routing hardware would see them.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..isa import semantics
from ..isa.encoding import INT_MASK as _INT_MASK
from ..isa.encoding import wrap_int as _wrap_int
from ..isa.instructions import (ZERO_REG, FUClass, Instruction)
from ..isa.program import Program
from ..telemetry.session import TelemetrySession
from .branch import make_predictor
from .cache import DataCache
from .config import UNPIPELINED_CLASSES, MachineConfig, default_config
from .memory import Memory, MemoryError_
from .trace import IssueGroup, IssueListener, MicroOp, SimulationResult

_DISPATCHED = 0
_ISSUED = 1
_DONE = 2

# static execute kinds (decoded once per instruction, see
# Simulator._decode): ordered so the common ALU case is tested first
_X_INT = 0
_X_FP = 1
_X_LOAD = 2
_X_STORE = 3
_X_BRANCH = 4
_X_CTRL = 5     # j: no computation, no operands
_X_HALT = 6     # like _X_CTRL, but retiring it stops the machine

# fetch continuation kinds
_F_SEQ = 0      # fall through
_F_HALT = 1
_F_JUMP = 2
_F_BRANCH = 3


class _RobEntry:
    """One in-flight instruction.

    A deliberately plain class: dispatch creates hundreds of thousands
    of these per run, so the defaults live on the *class* and ``__init__``
    stores only the two per-entry facts.  Stages assign the remaining
    attributes as the entry moves through the pipeline (operand capture
    at dispatch, address/result at execute, ``squashed`` at flush).
    """

    state = _DISPATCHED
    dest: Optional[int] = None
    result = 0
    # source operand capture: value or producer seq (tag)
    val1 = 0
    val2 = 0
    tag1: Optional[int] = None
    tag2: Optional[int] = None
    has_two = True
    # branches
    predicted_taken = False
    actual_taken = False
    # memory
    address: Optional[int] = None
    store_value = 0
    is_double = False
    squashed = False
    # module index held by an issued op on an unpipelined FU class
    held_module: Optional[int] = None
    # the MicroOp emitted when this entry issued, for retroactive
    # wrong-path marking at flush time
    micro: Optional[MicroOp] = None
    # static (kind, latency, is_double, fu_index, wrapped_imm, int_fn)
    # of the instruction, attached at dispatch from the simulator's
    # decode table; int_fn is the direct (a, b) -> result semantic
    # function for integer opcodes, None otherwise
    exec_info: tuple = (_X_CTRL, 1, False, 0, 0, None)

    def __init__(self, seq: int, instr: Instruction):
        self.seq = seq
        self.instr = instr

    @property
    def ready(self) -> bool:
        return self.tag1 is None and self.tag2 is None

    def __repr__(self) -> str:
        return (f"_RobEntry(seq={self.seq}, {self.instr.op.name}, "
                f"state={self.state}, squashed={self.squashed})")


_STATE_NAMES = {_DISPATCHED: "dispatched", _ISSUED: "issued", _DONE: "done"}


@dataclass
class DiagnosticSnapshot:
    """Pipeline state captured when the simulator aborts a run.

    Attached to :class:`DeadlockDetected` and :class:`CycleLimitExceeded`
    so post-mortems don't require a re-run.  Everything is plain data
    (ints, strings, lists) so the snapshot can be journaled as JSON by
    the campaign runner.
    """

    cycle: int
    retired_instructions: int
    cycles_since_retire: int
    rob_occupancy: int
    rob_limit: int
    # oldest un-retired operation, the usual culprit
    oldest_seq: Optional[int] = None
    oldest_op: Optional[str] = None
    oldest_state: Optional[str] = None
    oldest_address: Optional[int] = None
    oldest_waiting_tags: List[int] = field(default_factory=list)
    store_queue_depth: int = 0
    # per-FU-class reservation-station occupancy and module busy-until
    rs_occupancy: Dict[str, int] = field(default_factory=dict)
    module_busy_until: Dict[str, List[int]] = field(default_factory=dict)
    events_pending: int = 0
    pc: Optional[int] = None
    fetch_stalled_until: int = 0

    @classmethod
    def from_gauges(cls, gauges: Dict[str, Any]) -> "DiagnosticSnapshot":
        """Build from :meth:`Simulator.pipeline_gauges` output.

        The snapshot and the telemetry time-series sampler read the
        same live gauge dict, so the two views of pipeline occupancy
        cannot drift apart.
        """
        return cls(
            cycle=gauges["cycle"],
            retired_instructions=gauges["retired_instructions"],
            cycles_since_retire=gauges["cycles_since_retire"],
            rob_occupancy=gauges["rob_occupancy"],
            rob_limit=gauges["rob_limit"],
            oldest_seq=gauges.get("oldest_seq"),
            oldest_op=gauges.get("oldest_op"),
            oldest_state=gauges.get("oldest_state"),
            oldest_address=gauges.get("oldest_address"),
            oldest_waiting_tags=list(gauges.get("oldest_waiting_tags", [])),
            store_queue_depth=gauges["store_queue_depth"],
            rs_occupancy=dict(gauges["rs_occupancy"]),
            module_busy_until={k: list(v) for k, v
                               in gauges["module_busy_until"].items()},
            events_pending=gauges["events_pending"],
            pc=gauges["pc"],
            fetch_stalled_until=gauges["fetch_stalled_until"],
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form for manifests and logs."""
        return {
            "cycle": self.cycle,
            "retired_instructions": self.retired_instructions,
            "cycles_since_retire": self.cycles_since_retire,
            "rob_occupancy": self.rob_occupancy,
            "rob_limit": self.rob_limit,
            "oldest_seq": self.oldest_seq,
            "oldest_op": self.oldest_op,
            "oldest_state": self.oldest_state,
            "oldest_address": self.oldest_address,
            "oldest_waiting_tags": list(self.oldest_waiting_tags),
            "store_queue_depth": self.store_queue_depth,
            "rs_occupancy": dict(self.rs_occupancy),
            "module_busy_until": {k: list(v) for k, v
                                  in self.module_busy_until.items()},
            "events_pending": self.events_pending,
            "pc": self.pc,
            "fetch_stalled_until": self.fetch_stalled_until,
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cycle {self.cycle}, {self.retired_instructions} retired,"
            f" {self.cycles_since_retire} cycles since last retirement",
            f"ROB {self.rob_occupancy}/{self.rob_limit} occupied,"
            f" store queue {self.store_queue_depth},"
            f" {self.events_pending} completion events pending",
        ]
        if self.oldest_op is not None:
            waits = (f", waiting on {self.oldest_waiting_tags}"
                     if self.oldest_waiting_tags else "")
            where = (f" @pc={self.oldest_address}"
                     if self.oldest_address is not None else "")
            lines.append(f"oldest un-retired: seq {self.oldest_seq}"
                         f" {self.oldest_op}{where}"
                         f" [{self.oldest_state}]{waits}")
        busy = ", ".join(f"{name}={occ}" for name, occ
                         in self.rs_occupancy.items() if occ)
        lines.append(f"RS occupancy: {busy or 'all idle'}")
        lines.append(f"fetch: pc={self.pc},"
                     f" stalled until cycle {self.fetch_stalled_until}")
        return "\n".join(lines)


class CycleLimitExceeded(RuntimeError):
    """The simulation ran longer than ``MachineConfig.max_cycles``.

    Carries a :class:`DiagnosticSnapshot` of the pipeline at the moment
    the limit tripped, in ``snapshot``.
    """

    def __init__(self, message: str,
                 snapshot: Optional[DiagnosticSnapshot] = None):
        super().__init__(message)
        self.snapshot = snapshot


class DeadlockDetected(RuntimeError):
    """No instruction retired for ``MachineConfig.watchdog_cycles``.

    Raised by the retirement-progress watchdog with a
    :class:`DiagnosticSnapshot` in ``snapshot`` describing ROB
    occupancy, the oldest un-retired operation, and FU busy state —
    instead of spinning until ``max_cycles``.
    """

    def __init__(self, message: str,
                 snapshot: Optional[DiagnosticSnapshot] = None):
        super().__init__(message)
        self.snapshot = snapshot


class Simulator:
    """Out-of-order execution engine for one program."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 fault_injector: Optional[Callable[[MicroOp, FUClass],
                                                   None]] = None,
                 telemetry: Optional[TelemetrySession] = None):
        program.validate()
        self.program = program
        self.config = config or default_config()
        # optional transient-upset hook: called with each MicroOp just
        # before it is published to listeners, may flip operand bits in
        # place.  Architectural state is untouched — this models upsets
        # on the routing/steering path, not in the datapath.
        self.fault_injector = fault_injector
        self.memory = Memory(program.data)
        self.registers: List[int] = [0] * 64
        self.dcache = (DataCache(self.config.cache)
                       if self.config.cache is not None else None)
        self.predictor = make_predictor(
            self.config.branch_predictor,
            self.config.branch_predictor_entries)
        self._listeners: List[IssueListener] = []
        # pipeline state
        self._rob: Deque[_RobEntry] = deque()  # program order, head at [0]
        # wakeup index: producer seq -> [(consumer entry, operand slot)];
        # a completing producer touches exactly its consumers instead of
        # scanning the whole ROB
        self._consumers: Dict[int, List[Tuple[_RobEntry, int]]] = {}
        # in-flight stores in program order (the store queue); loads
        # disambiguate and forward against this instead of the full ROB
        self._store_queue: Deque[_RobEntry] = deque()
        self._rename: Dict[int, _RobEntry] = {}
        # event-driven scheduling: entries enter a per-class ready heap
        # (keyed by seq, so oldest-first) when their last operand tag
        # clears, instead of every waiting entry being rescanned each
        # cycle; squashed entries are dropped lazily on pop.  All
        # per-class state is held in lists indexed by FUClass.index —
        # Enum hashing is a Python-level call and too slow for the
        # cycle loop.
        self._ready: List[List[Tuple[int, _RobEntry]]] = [
            [] for _ in FUClass]
        # dispatched-but-not-issued count per class (reservation station
        # occupancy), kept incrementally now that there is no waiting list
        self._rs_occupancy: List[int] = [0] * len(FUClass)
        self._module_free_at: List[List[int]] = [
            [0] * self.config.modules(fu) for fu in FUClass]
        # per-class issue loop state, prebound to avoid per-cycle
        # lookups on the hot path.  Pipelined classes accept a new
        # operation on every module every cycle, so their free list is
        # the constant full module list; only unpipelined classes
        # (multipliers) track per-module busy-until times.
        self._issue_state = [
            (fu, fu.index, self._ready[fu.index],
             self._module_free_at[fu.index], fu in UNPIPELINED_CLASSES,
             list(range(self.config.modules(fu))))
            for fu in FUClass]
        # issue counts accumulate in a dense list during the run (dict-
        # by-Enum hashing is a Python-level call); published to the
        # result's dict at run() exit
        self._issue_count_list: List[int] = [0] * len(FUClass)
        # static decode: per-instruction facts that dispatch and execute
        # would otherwise re-derive from OpcodeInfo attribute chains on
        # every dynamic instance
        self._decoded = [self._decode(i) for i in program.instructions]
        self._events: List[Tuple[int, int, _RobEntry]] = []  # (cycle, seq, entry)
        self._seq = itertools.count()
        self._pc: Optional[int] = 0
        self._fetch_stalled_until = 0
        self._halted = False
        self._halt_fetched = False
        self.result = SimulationResult(name=program.name)
        self.result.issue_counts = {fu: 0 for fu in FUClass}
        # telemetry: an explicit session wins; otherwise build one from
        # the config knob.  ``None`` when disabled — the run loop then
        # skips every hook, which is the verifiably-near-zero-cost path.
        if telemetry is None and self.config.telemetry is not None \
                and self.config.telemetry.enabled:
            telemetry = TelemetrySession(self.config.telemetry)
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        self.telemetry = telemetry
        # (width-count lists, histograms) while run() accumulates;
        # folded by _telemetry_sample/_finalize_telemetry
        self._issue_width_state: Optional[Tuple[List[List[int]],
                                                List[Any]]] = None
        self._tracer = telemetry.tracer if telemetry is not None else None
        if self._tracer is not None:
            self._tracer.fu_names = tuple(fu.value for fu in FUClass)
        if telemetry is not None:
            telemetry.add_collector(self._telemetry_counters)

    @staticmethod
    def _decode(instr: Instruction):
        """Static per-instruction facts for the dispatch/execute loops.

        Returns ``(instr, fu_index, dest, src1, val2_reg, val2_imm,
        has_two, is_store, fetch_kind, target, fall, exec_info)`` where
        ``dest``/``src1``/``val2_reg`` are already filtered for ``None``
        and the zero register, ``val2_imm`` is the captured immediate for
        non-memory immediate forms (else ``None``), and ``exec_info``
        is the ``(kind, latency, is_double, fu_index, wrapped_imm,
        int_fn)`` tuple attached to ROB entries; ``wrapped_imm`` is the
        pre-wrapped memory offset so address generation is a plain
        add-and-mask, and ``int_fn`` resolves the integer semantic
        function once per static instruction.
        """
        op = instr.op
        dest = (instr.dest if op.writes_dest and instr.dest is not None
                and instr.dest != ZERO_REG else None)
        src1 = (instr.src1 if instr.src1 is not None
                and instr.src1 != ZERO_REG else None)
        imm_form = op.has_immediate and not op.is_memory
        val2_imm = instr.imm if imm_form else None
        val2_reg = (instr.src2 if not imm_form and instr.src2 is not None
                    and instr.src2 != ZERO_REG else None)
        has_two = (True if op.is_memory
                   else bool(imm_form or instr.src2 is not None))
        if op.name == "halt":
            fetch_kind = _F_HALT
        elif op.is_jump:
            fetch_kind = _F_JUMP
        elif op.is_branch:
            fetch_kind = _F_BRANCH
        else:
            fetch_kind = _F_SEQ
        if op.is_load:
            kind = _X_LOAD
        elif op.is_store:
            kind = _X_STORE
        elif op.is_branch:
            kind = _X_BRANCH
        elif op.name == "halt":
            kind = _X_HALT
        elif op.name == "j":
            kind = _X_CTRL
        elif op.fu_class is FUClass.IALU or op.fu_class is FUClass.IMULT:
            kind = _X_INT
        else:
            kind = _X_FP
        is_double = op.name in ("ld", "sd")
        fu_index = op.fu_class.index
        wimm = _wrap_int(instr.imm or 0) if op.is_memory else 0
        int_fn = semantics.int_function(op) if kind == _X_INT else None
        return (instr, fu_index, dest, src1, val2_reg, val2_imm,
                has_two, op.is_store, fetch_kind, instr.target,
                instr.address + 1,
                (kind, op.latency, is_double, fu_index, wimm, int_fn))

    # ----- listener management -------------------------------------------------

    def add_listener(self, listener: IssueListener) -> None:
        """Subscribe a consumer of per-cycle issue groups."""
        self._listeners.append(listener)

    # ----- top level -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate until the program's ``halt`` retires.

        The four per-cycle pipeline stages — retire, complete, issue,
        dispatch — are inlined into the cycle loop rather than split
        into methods: their whole working set binds to locals once per
        *run* instead of once per cycle, and at hundreds of thousands
        of cycles per run the per-call rebinding is a measurable share
        of total runtime.  The infrequent helpers (flush, load
        disambiguation, execute) remain methods.
        """
        cycle = 0
        max_cycles = self.config.max_cycles
        # loop-invariant bindings: every container below is mutated in
        # place, never reassigned.  Fetch/flush state (_pc, _halted,
        # _fetch_stalled_until, _halt_fetched) stays on self because
        # _flush_after rewrites it mid-cycle.
        rob = self._rob
        events = self._events
        rename = self._rename
        registers = self.registers
        store_queue = self._store_queue
        consumer_map = self._consumers
        ready_lists = self._ready
        issue_state = self._issue_state
        occupancy = self._rs_occupancy
        issue_counts = self._issue_count_list
        listeners = self._listeners
        decoded = self._decoded
        code_len = len(decoded)
        result = self.result
        mem_store = self.memory.store
        predict = self.predictor.predict
        predictor_update = self.predictor.update
        next_seq = self._seq.__next__
        heappop = heapq.heappop
        heappush = heapq.heappush
        config = self.config
        retire_width = config.retire_width
        rs_limit = config.rs_entries_per_class
        rob_limit = config.rob_entries
        dispatch_width = config.dispatch_width
        mispredict_penalty = config.mispredict_penalty
        load_ready = self._load_ready
        execute = self._execute
        inject = self.fault_injector
        watchdog = config.watchdog_cycles
        last_retire_cycle = 0
        # telemetry bindings: when disabled every guard below is a dead
        # local-bool test (tens of ns against the multi-µs cycle body)
        telemetry = self.telemetry
        tracer = self._tracer
        trace_on = tracer is not None
        sample_interval = (telemetry.sample_interval
                           if telemetry is not None else 0)
        next_sample = sample_interval if sample_interval else max_cycles + 1
        if telemetry is not None and telemetry.registry.enabled:
            # width distributions are *accumulated* in plain per-width
            # lists (one indexed increment per issue group) and folded
            # into the registered histograms at sample points and run
            # end — Histogram.observe per group is measurable against
            # the linearised issue loop
            issue_width_counts: Optional[List[List[int]]] = [
                [0] * (config.modules(fu) + 1) for fu in FUClass]
            self._issue_width_state = (issue_width_counts, [
                telemetry.registry.histogram(
                    f"issue.{fu.value}.width", (1, 2, 3, 4, 6, 8))
                for fu in FUClass])
        else:
            issue_width_counts = None
            self._issue_width_state = None

        while not self._halted:
            if cycle >= max_cycles:
                raise CycleLimitExceeded(
                    f"{self.program.name}: exceeded {max_cycles} cycles",
                    snapshot=self._snapshot(cycle, last_retire_cycle))
            if (watchdog and rob
                    and cycle - last_retire_cycle >= watchdog):
                snapshot = self._snapshot(cycle, last_retire_cycle)
                raise DeadlockDetected(
                    f"{self.program.name}: no instruction retired for"
                    f" {cycle - last_retire_cycle} cycles"
                    f" (watchdog_cycles={watchdog})\n{snapshot.format()}",
                    snapshot=snapshot)
            if cycle >= next_sample:
                self._telemetry_sample(cycle, last_retire_cycle)
                next_sample = cycle + sample_interval

            # ---- retire: in order, oldest first ----
            if rob and rob[0].state == _DONE:
                retired = 0
                while rob and retired < retire_width:
                    entry = rob[0]
                    if entry.state != _DONE:
                        break
                    kind = entry.exec_info[0]
                    if kind == _X_HALT:
                        if trace_on:
                            tracer.retired(entry.seq, cycle)
                        self._halted = True
                        retired += 1
                        break
                    if kind == _X_STORE:
                        mem_store(entry.address, entry.store_value,
                                  double=entry.is_double)
                        store_queue.popleft()  # retiring store is the oldest
                    else:
                        dest = entry.dest
                        if dest is not None:
                            # dispatch never renames the zero register, so
                            # a non-None dest is architecturally writable
                            registers[dest] = entry.result
                            if rename.get(dest) is entry:
                                del rename[dest]
                        elif kind == _X_BRANCH:
                            instr = entry.instr
                            predictor_update(instr.address,
                                             entry.actual_taken,
                                             entry.predicted_taken)
                    if trace_on:
                        tracer.retired(entry.seq, cycle)
                    rob.popleft()
                    retired += 1
                result.retired_instructions += retired
                if retired:
                    last_retire_cycle = cycle
                if self._halted:
                    break

            # ---- complete: writeback + wakeup broadcast ----
            while events and events[0][0] <= cycle:
                entry = heappop(events)[2]
                if entry.squashed:
                    continue
                entry.state = _DONE
                if trace_on:
                    tracer.completed(entry.seq, cycle)
                if entry.dest is not None:
                    # a completing producer touches exactly its
                    # registered consumers instead of scanning the ROB
                    seq = entry.seq
                    consumers = consumer_map.pop(seq, None)
                    if consumers:
                        value = entry.result
                        for centry, slot in consumers:
                            if slot == 1 and centry.tag1 == seq:
                                centry.tag1 = None
                                centry.val1 = value
                            elif slot == 2 and centry.tag2 == seq:
                                centry.tag2 = None
                                centry.val2 = value
                            else:
                                continue
                            if (centry.tag1 is None
                                    and centry.tag2 is None
                                    and centry.state == _DISPATCHED
                                    and not centry.squashed):
                                heappush(ready_lists[centry.exec_info[3]],
                                         (centry.seq, centry))
                if entry.exec_info[0] == _X_BRANCH \
                        and entry.actual_taken != entry.predicted_taken:
                    instr = entry.instr
                    self._flush_after(entry, cycle)
                    self._pc = (instr.target if entry.actual_taken
                                else instr.address + 1)
                    self._fetch_stalled_until = cycle + mispredict_penalty

            # ---- issue: oldest-first, per FU class ----
            for state in issue_state:
                # cheap emptiness probe first: most classes are idle
                # most cycles, and unpacking the whole state tuple for
                # them is measurable at this scale
                ready = state[2]
                if not ready:
                    continue
                (fu_class, fu_index, _, free_at, unpipelined,
                 all_modules) = state
                if unpipelined:
                    free_indices = [i for i, when in enumerate(free_at)
                                    if when <= cycle]
                    if not free_indices:
                        continue
                else:
                    free_indices = all_modules
                slots_left = len(free_indices)
                issued: List[MicroOp] = []
                blocked: Optional[List[Tuple[int, _RobEntry]]] = None
                while ready and slots_left:
                    item = heappop(ready)
                    entry = item[1]
                    if entry.squashed:
                        continue
                    if (entry.exec_info[0] == _X_LOAD
                            and not load_ready(entry)):
                        # data-ready but memory-blocked: retry next cycle
                        # without holding up younger ready operations
                        if blocked is None:
                            blocked = [item]
                        else:
                            blocked.append(item)
                        continue
                    micro = execute(entry, cycle)
                    if trace_on:
                        tracer.issued(entry.seq, cycle)
                    if inject is not None:
                        # transient upset on the routing path: listeners
                        # (steering, power accounting) see flipped bits;
                        # the architectural result is already computed
                        inject(micro, fu_class)
                    # the oldest ready op of the class is the best guess
                    # at the critical-path op this cycle (related work [19])
                    micro.critical = not issued
                    # occupy a module: pipelined units accept a new op
                    # next cycle, unpipelined units block the full latency
                    if unpipelined:
                        module = free_indices[len(issued)]
                        free_at[module] = cycle + entry.instr.op.latency
                        entry.held_module = module
                    issued.append(micro)
                    slots_left -= 1
                if blocked is not None:
                    for item in blocked:
                        heappush(ready, item)
                if issued:
                    count = len(issued)
                    occupancy[fu_index] -= count
                    issue_counts[fu_index] += count
                    result.executed_ops += count
                    if issue_width_counts is not None:
                        issue_width_counts[fu_index][count] += 1
                    group = IssueGroup(cycle, fu_class, issued)
                    for listener in listeners:
                        listener(group)

            # ---- dispatch: fetch + rename along the predicted path ----
            if (cycle >= self._fetch_stalled_until
                    and not self._halt_fetched):
                pc = self._pc
                if pc is not None:
                    dispatched = 0
                    while (dispatched < dispatch_width
                           and 0 <= pc < code_len
                           and len(rob) < rob_limit):
                        (instr, fu_index, dest, src1, val2_reg, val2_imm,
                         has_two, is_store, fetch_kind, target, fall,
                         exec_info) = decoded[pc]
                        if occupancy[fu_index] >= rs_limit:
                            break

                        # rename/capture: read the architectural value,
                        # forward a completed producer's result, or
                        # subscribe to an in-flight producer's wakeup list
                        entry = _RobEntry(next_seq(), instr)
                        entry.exec_info = exec_info
                        entry.has_two = has_two
                        if dest is not None:
                            entry.dest = dest
                        if src1 is not None:
                            producer = rename.get(src1)
                            if producer is None:
                                entry.val1 = registers[src1]
                            elif producer.state == _DONE:
                                entry.val1 = producer.result
                            else:
                                entry.tag1 = producer.seq
                                consumer_map.setdefault(
                                    producer.seq, []).append((entry, 1))
                        if val2_imm is not None:
                            entry.val2 = val2_imm
                        elif val2_reg is not None:
                            producer = rename.get(val2_reg)
                            if producer is None:
                                entry.val2 = registers[val2_reg]
                            elif producer.state == _DONE:
                                entry.val2 = producer.result
                            else:
                                entry.tag2 = producer.seq
                                consumer_map.setdefault(
                                    producer.seq, []).append((entry, 2))
                        if dest is not None:
                            # after capture: an op reading its own
                            # destination must see the previous producer,
                            # not itself
                            rename[dest] = entry

                        rob.append(entry)
                        if trace_on:
                            tracer.dispatched(entry.seq, instr.op.name,
                                              instr.address, fu_index,
                                              cycle)
                        if is_store:
                            store_queue.append(entry)
                        occupancy[fu_index] += 1
                        if entry.tag1 is None and entry.tag2 is None:
                            heappush(ready_lists[fu_index],
                                     (entry.seq, entry))
                        dispatched += 1

                        if fetch_kind == _F_SEQ:
                            pc = fall
                        elif fetch_kind == _F_BRANCH:
                            predicted = predict(instr.address)
                            entry.predicted_taken = predicted
                            if predicted:
                                pc = target
                                break
                            pc = fall
                        elif fetch_kind == _F_HALT:
                            self._halt_fetched = True
                            pc = None
                            break
                        else:  # _F_JUMP
                            pc = target
                            break
                    if pc is not None and not (0 <= pc < code_len):
                        pc = None
                    self._pc = pc

            if not rob and self._pc is None and not self._halt_fetched:
                # ran off the end of code without halt: architecturally done
                break
            cycle += 1

        self.result.cycles = cycle + 1
        counts = self._issue_count_list
        self.result.issue_counts = {fu: counts[fu.index] for fu in FUClass}
        self.result.branch_lookups = self.predictor.lookups
        self.result.branch_mispredictions = self.predictor.mispredictions
        if self.dcache is not None:
            self.result.cache_hits = self.dcache.hits
            self.result.cache_misses = self.dcache.misses
        if telemetry is not None:
            self._finalize_telemetry(cycle, last_retire_cycle)
        return self.result

    def pipeline_gauges(self, cycle: int,
                        last_retire_cycle: int = 0) -> Dict[str, Any]:
        """Live pipeline-occupancy gauges as plain data.

        The single source of truth for point-in-time pipeline state:
        :meth:`_snapshot` (abort diagnostics) and the telemetry sampler
        both read this dict rather than walking the ROB independently.
        """
        gauges: Dict[str, Any] = {
            "cycle": cycle,
            "retired_instructions": self.result.retired_instructions,
            "cycles_since_retire": cycle - last_retire_cycle,
            "rob_occupancy": len(self._rob),
            "rob_limit": self.config.rob_entries,
            "store_queue_depth": len(self._store_queue),
            "rs_occupancy": {fu.value: self._rs_occupancy[fu.index]
                             for fu in FUClass},
            "module_busy_until": {fu.value:
                                  list(self._module_free_at[fu.index])
                                  for fu in FUClass},
            "events_pending": len(self._events),
            "pc": self._pc,
            "fetch_stalled_until": self._fetch_stalled_until,
        }
        if self._rob:
            oldest = self._rob[0]
            gauges["oldest_seq"] = oldest.seq
            gauges["oldest_op"] = oldest.instr.op.name
            gauges["oldest_state"] = _STATE_NAMES.get(oldest.state,
                                                      str(oldest.state))
            gauges["oldest_address"] = oldest.instr.address
            gauges["oldest_waiting_tags"] = [
                tag for tag in (oldest.tag1, oldest.tag2)
                if tag is not None]
        return gauges

    def _snapshot(self, cycle: int,
                  last_retire_cycle: int = 0) -> DiagnosticSnapshot:
        """Capture the pipeline state for an abort diagnostic."""
        return DiagnosticSnapshot.from_gauges(
            self.pipeline_gauges(cycle, last_retire_cycle))

    # ----- telemetry -------------------------------------------------------

    def _telemetry_counters(self) -> Dict[str, int]:
        """Cumulative run counters, pulled by the telemetry session at
        sample points and when building the final summary."""
        result = self.result
        counters = {
            "retired": result.retired_instructions,
            "executed": result.executed_ops,
            "squashed": result.squashed_ops,
            "branch.lookups": self.predictor.lookups,
            "branch.mispredictions": self.predictor.mispredictions,
        }
        counts = self._issue_count_list
        for fu in FUClass:
            counters[f"issue.{fu.value}"] = counts[fu.index]
        return counters

    def _fold_issue_width(self) -> None:
        """Drain the run loop's plain width-count lists into the
        registered ``issue.<fu>.width`` histograms (exact: a count of
        ``n`` groups at width ``w`` lands as ``n`` observations of
        ``w``), then zero the accumulators."""
        state = self._issue_width_state
        if state is None:
            return
        for counts, hist in zip(*state):
            for width, n in enumerate(counts):
                if n:
                    hist.counts[bisect_left(hist.edges, width)] += n
                    hist.total += n
                    hist.sum += width * n
                    counts[width] = 0

    def _telemetry_sample(self, cycle: int, last_retire_cycle: int) -> None:
        """Take one time-series row (run loop, every sample_interval)."""
        self._fold_issue_width()
        telemetry = self.telemetry
        gauges = self.pipeline_gauges(cycle, last_retire_cycle)
        registry = telemetry.registry
        if registry.enabled:
            registry.gauge("sim.rob.high_water").high_water(
                gauges["rob_occupancy"])
            registry.gauge("sim.store_queue.high_water").high_water(
                gauges["store_queue_depth"])
            registry.histogram("sim.rob.occupancy",
                               (4, 8, 16, 32, 64, 128, 256)).observe(
                gauges["rob_occupancy"])
        flat = {"rob": gauges["rob_occupancy"],
                "store_queue": gauges["store_queue_depth"]}
        for name, occ in gauges["rs_occupancy"].items():
            flat["rs." + name] = occ
        telemetry.take_sample(cycle, flat)

    def _finalize_telemetry(self, cycle: int,
                            last_retire_cycle: int) -> None:
        self._fold_issue_width()
        telemetry = self.telemetry
        if telemetry.sample_interval > 0:
            self._telemetry_sample(cycle, last_retire_cycle)
        if telemetry.registry.enabled:
            telemetry.registry.counter("sim.cycles").inc(self.result.cycles)
        if self._tracer is not None:
            self._tracer.finish(cycle + 1)

    def _flush_after(self, branch: _RobEntry, cycle: int = 0) -> None:
        # entries younger than the branch form a suffix of the ROB (and
        # of the store queue): pop from the tail, O(flushed) not O(ROB)
        rob = self._rob
        if not rob or rob[-1] is branch:
            return
        flushed: List[_RobEntry] = []
        while rob[-1] is not branch:
            flushed.append(rob.pop())
        tracer = self._tracer
        for entry in flushed:
            entry.squashed = True
            if tracer is not None:
                tracer.flushed(entry.seq, cycle)
            if entry.state >= _ISSUED:  # executed (or completed) wrong-path
                self.result.squashed_ops += 1
            if entry.micro is not None:
                # retroactive wrong-path mark: listeners that *store*
                # groups (TraceCollector) see the final flag; streaming
                # evaluators have already accounted the op, which is the
                # correct hardware model (the router really drove it)
                entry.micro.speculative = True
            # a flushed producer's consumers are all younger, so they
            # were flushed with it: drop the whole wakeup list
            self._consumers.pop(entry.seq, None)
        while self._store_queue and self._store_queue[-1].squashed:
            self._store_queue.pop()
        # a wrong-path halt must not stop fetch forever: any halt younger
        # than the mispredicted branch has just been flushed (fetch stops
        # at a halt, so no surviving entry can follow one)
        self._halt_fetched = False
        # rebuild the rename table from surviving producers; completed but
        # unretired entries must still be read through the ROB, so they
        # stay in the table until retirement removes them
        self._rename.clear()
        for entry in self._rob:
            if entry.dest is not None:
                self._rename[entry.dest] = entry
        # squashed entries leave the reservation stations lazily (the
        # ready heaps skip them on pop), but the occupancy accounting
        # must drop them now, and unpipelined modules held by squashed
        # operations must be released
        for entry in flushed:
            if entry.state == _DISPATCHED:
                self._rs_occupancy[entry.exec_info[3]] -= 1
            elif entry.held_module is not None and entry.state == _ISSUED:
                free_at = self._module_free_at[entry.exec_info[3]]
                free_at[entry.held_module] = 0

    # ----- issue helpers ---------------------------------------------------------

    def _load_ready(self, load: _RobEntry) -> bool:
        """Conservative disambiguation: all older stores must have known
        addresses (they compute them at issue), and an overlapping store
        of a different width blocks the load until it retires.

        Latches the computed address on the entry — the operands of a
        ready load are final, so _execute reuses it."""
        info = load.exec_info
        address = (load.val1 + info[4]) & _INT_MASK
        load.address = address
        size = 8 if info[2] else 4
        seq = load.seq
        for entry in self._store_queue:
            if entry.seq > seq:
                break
            if entry.address is None:
                return False
            store_size = 8 if entry.is_double else 4
            overlap = (entry.address < address + size
                       and address < entry.address + store_size)
            if overlap and (entry.address != address or store_size != size):
                return False
        return True

    def _execute(self, entry: _RobEntry, cycle: int) -> MicroOp:
        instr = entry.instr
        op = instr.op
        entry.state = _ISSUED
        a = entry.val1
        b = entry.val2
        kind, latency, is_double, _fu, wimm, int_fn = entry.exec_info

        if kind == _X_INT:
            entry.result = int_fn(a, b)
            micro = MicroOp(op, a, b, entry.has_two, instr.address,
                            False, instr.static_swapped)
        elif kind == _X_LOAD:
            # the address was computed (and latched on the entry) by the
            # _load_ready disambiguation check just before issue
            address = entry.address
            entry.is_double = is_double
            try:
                entry.result = self._load_value(entry, address)
            except MemoryError_:
                # wrong-path load with a garbage base register: real
                # hardware would fault and squash; we return zero and let
                # the flush discard the entry
                entry.result = 0
            if self.dcache is not None:
                latency = self.dcache.load_latency(address, latency)
            micro = MicroOp(op, a, instr.imm, True, instr.address)
        elif kind == _X_STORE:
            address = (a + wimm) & _INT_MASK
            entry.address = address
            entry.is_double = is_double
            entry.store_value = b
            if self.dcache is not None:
                self.dcache.access(address)  # write-allocate fill
            micro = MicroOp(op, a, instr.imm, True, instr.address)
        elif kind == _X_BRANCH:
            entry.actual_taken = semantics.branch_taken(op, a, b)
            micro = MicroOp(op, a, b, True, instr.address)
        elif kind == _X_FP:
            entry.result = semantics.evaluate_float(op, a, b)
            micro = MicroOp(op, a, b, entry.has_two, instr.address,
                            False, instr.static_swapped)
        else:  # _X_CTRL: j / halt
            micro = MicroOp(op, 0, 0, False, instr.address)
        entry.micro = micro
        heapq.heappush(self._events, (cycle + latency, entry.seq, entry))
        return micro

    def _load_value(self, load: _RobEntry, address: int) -> int:
        """Read a load's value, forwarding from the youngest older store."""
        seq = load.seq
        double = load.is_double
        for entry in reversed(self._store_queue):
            if entry.seq > seq:
                continue
            if (entry.address == address and entry.is_double == double
                    and entry.state != _DISPATCHED):
                return entry.store_value
        return self.memory.load(address, double=double)

def simulate(program: Program, config: Optional[MachineConfig] = None,
             listeners: Optional[List[IssueListener]] = None,
             telemetry: Optional[TelemetrySession] = None
             ) -> SimulationResult:
    """Convenience wrapper: build a simulator, attach listeners, run."""
    sim = Simulator(program, config, telemetry=telemetry)
    for listener in listeners or []:
        sim.add_listener(listener)
    return sim.run()
