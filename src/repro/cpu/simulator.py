"""Out-of-order superscalar cycle simulator (Tomasulo + ROB).

A Python stand-in for SimpleScalar 2.0's ``sim-outorder``, which the
paper uses for its evaluation.  The machine fetches along a bimodal
predicted path, renames through a register alias table into a reorder
buffer, holds waiting operations in per-FU-class reservation stations,
issues oldest-first to free functional unit modules, and retires in
order.  Stores write memory only at retirement; loads forward from
older in-flight stores, conservatively waiting until all older store
addresses are known.

Every cycle, the operations issued to each FU class are published to
subscribed listeners as an :class:`~repro.cpu.trace.IssueGroup` carrying
the operand bit images — this stream is what the paper's steering logic
operates on, and it includes wrong-path (later squashed) operations just
as real routing hardware would see them.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa import semantics
from ..isa.instructions import (ZERO_REG, FUClass, Instruction)
from ..isa.program import Program
from .branch import make_predictor
from .cache import DataCache
from .config import UNPIPELINED_CLASSES, MachineConfig, default_config
from .memory import Memory, MemoryError_
from .trace import IssueGroup, IssueListener, MicroOp, SimulationResult

_DISPATCHED = 0
_ISSUED = 1
_DONE = 2


@dataclass(slots=True)
class _RobEntry:
    seq: int
    instr: Instruction
    state: int = _DISPATCHED
    dest: Optional[int] = None
    result: int = 0
    # source operand capture: value or producer seq (tag)
    val1: int = 0
    val2: int = 0
    tag1: Optional[int] = None
    tag2: Optional[int] = None
    has_two: bool = True
    # branches
    predicted_taken: bool = False
    actual_taken: bool = False
    # memory
    address: Optional[int] = None
    store_value: int = 0
    is_double: bool = False
    squashed: bool = False
    # module index held by an issued op on an unpipelined FU class
    held_module: Optional[int] = None
    # the MicroOp emitted when this entry issued, for retroactive
    # wrong-path marking at flush time
    micro: Optional[MicroOp] = None

    @property
    def ready(self) -> bool:
        return self.tag1 is None and self.tag2 is None


class CycleLimitExceeded(RuntimeError):
    """The simulation ran longer than ``MachineConfig.max_cycles``."""


class Simulator:
    """Out-of-order execution engine for one program."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None):
        program.validate()
        self.program = program
        self.config = config or default_config()
        self.memory = Memory(program.data)
        self.registers: List[int] = [0] * 64
        self.dcache = (DataCache(self.config.cache)
                       if self.config.cache is not None else None)
        self.predictor = make_predictor(
            self.config.branch_predictor,
            self.config.branch_predictor_entries)
        self._listeners: List[IssueListener] = []
        # pipeline state
        self._rob: List[_RobEntry] = []  # program order, head at [0]
        self._rename: Dict[int, _RobEntry] = {}
        self._waiting: Dict[FUClass, List[_RobEntry]] = {
            fu: [] for fu in FUClass}
        self._module_free_at: Dict[FUClass, List[int]] = {
            fu: [0] * self.config.modules(fu) for fu in FUClass}
        self._events: List[Tuple[int, int, _RobEntry]] = []  # (cycle, seq, entry)
        self._seq = itertools.count()
        self._pc: Optional[int] = 0
        self._fetch_stalled_until = 0
        self._halted = False
        self._halt_fetched = False
        self.result = SimulationResult(name=program.name)
        self.result.issue_counts = {fu: 0 for fu in FUClass}

    # ----- listener management -------------------------------------------------

    def add_listener(self, listener: IssueListener) -> None:
        """Subscribe a consumer of per-cycle issue groups."""
        self._listeners.append(listener)

    # ----- top level -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Simulate until the program's ``halt`` retires."""
        cycle = 0
        max_cycles = self.config.max_cycles
        while not self._halted:
            if cycle >= max_cycles:
                raise CycleLimitExceeded(
                    f"{self.program.name}: exceeded {max_cycles} cycles")
            self._retire(cycle)
            if self._halted:
                break
            self._complete(cycle)
            self._issue(cycle)
            self._dispatch(cycle)
            if not self._rob and self._pc is None and not self._halt_fetched:
                # ran off the end of code without halt: architecturally done
                break
            cycle += 1
        self.result.cycles = cycle + 1
        self.result.branch_lookups = self.predictor.lookups
        self.result.branch_mispredictions = self.predictor.mispredictions
        if self.dcache is not None:
            self.result.cache_hits = self.dcache.hits
            self.result.cache_misses = self.dcache.misses
        return self.result

    # ----- retire ----------------------------------------------------------------

    def _retire(self, cycle: int) -> None:
        retired = 0
        while self._rob and retired < self.config.retire_width:
            entry = self._rob[0]
            if entry.state != _DONE:
                break
            instr = entry.instr
            op = instr.op
            if op.name == "halt":
                self._halted = True
                self.result.retired_instructions += 1
                return
            if op.is_store:
                self.memory.store(entry.address, entry.store_value,
                                  double=entry.is_double)
            elif entry.dest is not None and entry.dest != ZERO_REG:
                self.registers[entry.dest] = entry.result
            if op.is_branch:
                self.predictor.update(instr.address, entry.actual_taken,
                                      entry.predicted_taken)
            if self._rename.get(entry.dest) is entry:
                del self._rename[entry.dest]
            self._rob.pop(0)
            self.result.retired_instructions += 1
            retired += 1

    # ----- complete --------------------------------------------------------------

    def _complete(self, cycle: int) -> None:
        while self._events and self._events[0][0] <= cycle:
            _, _, entry = heapq.heappop(self._events)
            if entry.squashed:
                continue
            entry.state = _DONE
            if entry.dest is not None:
                self._broadcast(entry)
            instr = entry.instr
            if instr.op.is_branch and entry.actual_taken != entry.predicted_taken:
                self._flush_after(entry)
                correct = (instr.target if entry.actual_taken
                           else instr.address + 1)
                self._pc = correct
                self._fetch_stalled_until = cycle + self.config.mispredict_penalty

    def _broadcast(self, producer: _RobEntry) -> None:
        seq = producer.seq
        value = producer.result
        for entry in self._rob:
            if entry.tag1 == seq:
                entry.tag1 = None
                entry.val1 = value
            if entry.tag2 == seq:
                entry.tag2 = None
                entry.val2 = value

    def _flush_after(self, branch: _RobEntry) -> None:
        keep = []
        flushed = []
        seen_branch = False
        for entry in self._rob:
            if seen_branch:
                flushed.append(entry)
            else:
                keep.append(entry)
            if entry is branch:
                seen_branch = True
        if not flushed:
            return
        for entry in flushed:
            entry.squashed = True
            if entry.state >= _ISSUED:  # executed (or completed) wrong-path
                self.result.squashed_ops += 1
            if entry.micro is not None:
                # retroactive wrong-path mark: listeners that *store*
                # groups (TraceCollector) see the final flag; streaming
                # evaluators have already accounted the op, which is the
                # correct hardware model (the router really drove it)
                entry.micro.speculative = True
        self._rob = keep
        # a wrong-path halt must not stop fetch forever: any halt younger
        # than the mispredicted branch has just been flushed (fetch stops
        # at a halt, so no surviving entry can follow one)
        self._halt_fetched = False
        # rebuild the rename table from surviving producers; completed but
        # unretired entries must still be read through the ROB, so they
        # stay in the table until retirement removes them
        self._rename.clear()
        for entry in self._rob:
            if entry.dest is not None:
                self._rename[entry.dest] = entry
        # drop squashed entries from reservation stations
        for fu_class, waiting in self._waiting.items():
            self._waiting[fu_class] = [e for e in waiting if not e.squashed]
        # release unpipelined modules held by squashed operations
        for entry in flushed:
            if entry.held_module is not None and entry.state == _ISSUED:
                self._module_free_at[entry.instr.op.fu_class][entry.held_module] = 0

    # ----- issue -----------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        for fu_class in FUClass:
            waiting = self._waiting[fu_class]
            if not waiting:
                continue
            free_at = self._module_free_at[fu_class]
            free_slots = sum(1 for when in free_at if when <= cycle)
            if not free_slots:
                continue
            free_indices = [i for i, when in enumerate(free_at) if when <= cycle]
            issued: List[MicroOp] = []
            still_waiting: List[_RobEntry] = []
            unpipelined = fu_class in UNPIPELINED_CLASSES
            for entry in waiting:
                if len(issued) >= free_slots or not self._can_issue(entry):
                    still_waiting.append(entry)
                    continue
                micro = self._execute(entry, cycle)
                # the oldest ready op of the class is the best guess at
                # the critical-path op this cycle (related work [19])
                micro.critical = not issued
                # occupy a module: pipelined units accept a new op next
                # cycle, unpipelined units block for the full latency
                module = free_indices[len(issued)]
                if unpipelined:
                    free_at[module] = cycle + entry.instr.op.latency
                    entry.held_module = module
                else:
                    free_at[module] = cycle + 1
                issued.append(micro)
            if issued:
                self._waiting[fu_class] = still_waiting
                self.result.issue_counts[fu_class] += len(issued)
                group = IssueGroup(cycle, fu_class, issued)
                for listener in self._listeners:
                    listener(group)

    def _can_issue(self, entry: _RobEntry) -> bool:
        if not entry.ready:
            return False
        if entry.instr.op.is_load:
            return self._load_ready(entry)
        return True

    def _load_ready(self, load: _RobEntry) -> bool:
        """Conservative disambiguation: all older stores must have known
        addresses (they compute them at issue), and an overlapping store
        of a different width blocks the load until it retires."""
        address = semantics.effective_address(load.instr, load.val1)
        size = 8 if load.instr.op.name == "ld" else 4
        for entry in self._rob:
            if entry is load:
                break
            if not entry.instr.op.is_store:
                continue
            if entry.address is None:
                return False
            store_size = 8 if entry.is_double else 4
            overlap = (entry.address < address + size
                       and address < entry.address + store_size)
            if overlap and (entry.address != address or store_size != size):
                return False
        return True

    def _execute(self, entry: _RobEntry, cycle: int) -> MicroOp:
        instr = entry.instr
        op = instr.op
        entry.state = _ISSUED
        self.result.executed_ops += 1
        a, b, has_two = entry.val1, entry.val2, entry.has_two
        latency = op.latency

        if op.is_load:
            address = semantics.effective_address(instr, a)
            entry.address = address
            entry.is_double = op.name == "ld"
            try:
                entry.result = self._load_value(entry, address)
            except MemoryError_:
                # wrong-path load with a garbage base register: real
                # hardware would fault and squash; we return zero and let
                # the flush discard the entry
                entry.result = 0
            if self.dcache is not None:
                latency = self.dcache.load_latency(address, op.latency)
            micro = MicroOp(op, a, instr.imm, has_two=True,
                            static_index=instr.address,
                            speculative=False)
        elif op.is_store:
            address = semantics.effective_address(instr, a)
            entry.address = address
            entry.is_double = op.name == "sd"
            entry.store_value = b
            if self.dcache is not None:
                self.dcache.access(address)  # write-allocate fill
            micro = MicroOp(op, a, instr.imm, has_two=True,
                            static_index=instr.address)
        elif op.is_branch:
            entry.actual_taken = semantics.branch_taken(op, a, b)
            micro = MicroOp(op, a, b, has_two=True,
                            static_index=instr.address)
        elif op.name == "j" or op.name == "halt":
            micro = MicroOp(op, 0, 0, has_two=False,
                            static_index=instr.address)
        else:
            if op.fu_class in (FUClass.IALU, FUClass.IMULT):
                entry.result = semantics.evaluate_int(op, a, b)
            else:
                entry.result = semantics.evaluate_float(op, a, b)
            micro = MicroOp(op, a, b, has_two=has_two,
                            static_index=instr.address,
                            swapped=instr.static_swapped)
        entry.micro = micro
        heapq.heappush(self._events, (cycle + latency, entry.seq, entry))
        return micro

    def _load_value(self, load: _RobEntry, address: int) -> int:
        """Read a load's value, forwarding from the youngest older store."""
        forwarded = None
        for entry in self._rob:
            if entry is load:
                break
            if (entry.instr.op.is_store and entry.address == address
                    and entry.is_double == (load.instr.op.name == "ld")
                    and entry.state != _DISPATCHED):
                forwarded = entry.store_value
        if forwarded is not None:
            return forwarded
        return self.memory.load(address, double=load.instr.op.name == "ld")

    # ----- dispatch / fetch --------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        if cycle < self._fetch_stalled_until or self._halt_fetched:
            return
        code = self.program.instructions
        dispatched = 0
        while (dispatched < self.config.dispatch_width
               and self._pc is not None
               and 0 <= self._pc < len(code)
               and len(self._rob) < self.config.rob_entries):
            instr = code[self._pc]
            fu_class = instr.op.fu_class
            if (len(self._waiting[fu_class])
                    >= self.config.rs_entries_per_class):
                break
            entry = self._make_entry(instr)
            self._rob.append(entry)
            self._waiting[fu_class].append(entry)
            dispatched += 1

            op = instr.op
            if op.name == "halt":
                self._halt_fetched = True
                self._pc = None
                break
            if op.is_jump:
                self._pc = instr.target
                break
            if op.is_branch:
                predicted = self.predictor.predict(instr.address)
                entry.predicted_taken = predicted
                if predicted:
                    self._pc = instr.target
                    break
                self._pc = instr.address + 1
            else:
                self._pc += 1
        if self._pc is not None and not (0 <= self._pc < len(code)):
            self._pc = None

    def _make_entry(self, instr: Instruction) -> _RobEntry:
        op = instr.op
        entry = _RobEntry(seq=next(self._seq), instr=instr)
        if op.writes_dest and instr.dest is not None and instr.dest != ZERO_REG:
            entry.dest = instr.dest

        def capture(reg: Optional[int]) -> Tuple[int, Optional[int]]:
            if reg is None:
                return 0, None
            if reg == ZERO_REG:
                return 0, None
            producer = self._rename.get(reg)
            if producer is None:
                return self.registers[reg], None
            if producer.state == _DONE:
                return producer.result, None
            return 0, producer.seq

        entry.val1, entry.tag1 = capture(instr.src1)
        if op.has_immediate and not op.is_memory:
            entry.val2, entry.tag2 = instr.imm, None
            entry.has_two = True
        elif instr.src2 is not None:
            entry.val2, entry.tag2 = capture(instr.src2)
            entry.has_two = True
        else:
            entry.val2, entry.tag2 = 0, None
            entry.has_two = False
        if op.is_memory:
            # the offset rides in the instruction; only the base (and the
            # store value, in src2) come from registers
            entry.has_two = True
        if entry.dest is not None:
            self._rename[entry.dest] = entry
        return entry


def simulate(program: Program, config: Optional[MachineConfig] = None,
             listeners: Optional[List[IssueListener]] = None) -> SimulationResult:
    """Convenience wrapper: build a simulator, attach listeners, run."""
    sim = Simulator(program, config)
    for listener in listeners or []:
        sim.add_listener(listener)
    return sim.run()
