"""Bimodal branch predictor (2-bit saturating counters).

A table of two-bit counters indexed by instruction address, as in
SimpleScalar's default ``bimod`` predictor.  Direct-branch targets are
encoded in the instruction, so no BTB is modelled; jumps are always
taken.
"""

from __future__ import annotations


STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


class BimodalPredictor:
    """Classic 2-bit-counter bimodal predictor."""

    def __init__(self, entries: int = 2048):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("predictor size must be a power of two")
        self._mask = entries - 1
        self._counters = [WEAK_TAKEN] * entries
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, address: int) -> bool:
        """Predict taken/not-taken for the branch at ``address``."""
        self.lookups += 1
        return self._counters[address & self._mask] >= WEAK_TAKEN

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        """Train the counter with the resolved outcome."""
        index = address & self._mask
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(STRONG_TAKEN, counter + 1)
        else:
            self._counters[index] = max(STRONG_NOT_TAKEN, counter - 1)
        if taken != predicted:
            self.mispredictions += 1

    @property
    def accuracy(self) -> float:
        """Fraction of lookups that were predicted correctly."""
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups


class GSharePredictorError(ValueError):
    """Raised for invalid gshare geometry."""


class GSharePredictor:
    """Gshare: 2-bit counters indexed by PC xor global history.

    History is maintained non-speculatively (updated at retirement,
    which is also when ``update`` is called), a common simplification:
    the index used for training can differ from the one used at
    prediction when other branches resolve in between, slightly
    understating a real gshare's accuracy on tight loops.
    """

    def __init__(self, entries: int = 2048, history_bits: int = 8):
        if entries < 1 or entries & (entries - 1):
            raise GSharePredictorError("predictor size must be a power"
                                        " of two")
        if not (1 <= history_bits <= 30):
            raise GSharePredictorError("history bits must be 1..30")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [WEAK_TAKEN] * entries
        self._history = 0
        self.lookups = 0
        self.mispredictions = 0

    def _index(self, address: int) -> int:
        return (address ^ self._history) & self._mask

    def predict(self, address: int) -> bool:
        self.lookups += 1
        return self._counters[self._index(address)] >= WEAK_TAKEN

    def update(self, address: int, taken: bool, predicted: bool) -> None:
        index = self._index(address)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(STRONG_TAKEN, counter + 1)
        else:
            self._counters[index] = max(STRONG_NOT_TAKEN, counter - 1)
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask
        if taken != predicted:
            self.mispredictions += 1

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups


def make_predictor(kind: str, entries: int):
    """Predictor factory used by the simulator configuration."""
    if kind == "bimodal":
        return BimodalPredictor(entries)
    if kind == "gshare":
        return GSharePredictor(entries)
    raise ValueError(f"unknown branch predictor '{kind}'")
