"""Batch engine: packed streams wired into the trace cache.

This is the glue between the columnar kernels and the experiment
drivers: it produces a :class:`~repro.batch.columns.PackedTrace` for a
(program, machine-config) pair while honouring the exact same
content-addressed cache discipline as :func:`repro.streams.cached_source`
— plus a *packed sidecar* next to each cached trace so a warm cache hit
memory-maps the columns instead of re-parsing gzip JSON.

Cache behaviour per call:

* **hit, sidecar valid** — the sidecar is memory-mapped; the JSON trace
  is not parsed at all.  The trace's mtime is touched so LRU pruning
  (:func:`repro.streams.prune_trace_cache`) sees it as recently used.
* **hit, sidecar missing/corrupt/stale/future** — the trace is packed
  by *streaming* ``ReplaySource.groups()`` straight from disk (never
  materialising the object stream), and the sidecar is rewritten
  best-effort.
* **miss** — one simulation populates the cache, the fresh capture is
  packed from memory, and the sidecar is written alongside.
* **no cache dir** — plain capture-and-pack, nothing persisted.

:func:`drive_stream` dispatches a consumer set over either stream shape
so drivers can hold packed and object sources in the same list.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple

from ..cpu.config import MachineConfig
from ..isa.instructions import FUClass
from ..isa.program import Program
from ..streams import (IssueSource, LiveSource, capture, cached_source,
                       drive, record_cached, trace_cache_key)
from .columns import PackedTrace, pack_stream
from .kernels import batch_drive, numpy_available
from .sidecar import (PackFormatError, load_sidecar, sidecar_path,
                      write_sidecar)

#: selectable evaluation engines: ``batch-np`` (columnar kernels on the
#: NumPy backend), ``batch`` (columnar kernels, pure Python), and
#: ``object`` (the decoded-stream reference oracle)
ENGINES = ("batch-np", "batch", "object")

#: per-engine kernel backend for :func:`~repro.batch.kernels.batch_drive`
ENGINE_BACKENDS = {"batch-np": "np", "batch": "python"}


def resolve_engine(engine: Optional[str] = "auto") -> str:
    """Map an engine request to a concrete member of :data:`ENGINES`.

    ``None``/``"auto"`` picks ``"batch-np"`` when NumPy is importable
    and degrades gracefully to ``"batch"`` otherwise, so default runs
    are always as fast as the interpreter allows.  Requesting
    ``"batch-np"`` explicitly without NumPy raises instead of silently
    running slower.
    """
    if engine is None or engine == "auto":
        return "batch-np" if numpy_available() else "batch"
    if engine not in ENGINES:
        raise ValueError(f"engine must be 'auto' or one of {ENGINES}")
    if engine == "batch-np" and not numpy_available():
        raise RuntimeError(
            "engine 'batch-np' requires numpy, which is not importable; "
            "use engine='auto' to fall back to the Python batch engine")
    return engine


def pack_source(source: IssueSource,
                fu_classes: Optional[Iterable[FUClass]] = None
                ) -> PackedTrace:
    """Pack any issue source in one streaming pass (lazy for replays)."""
    packed = pack_stream(source.groups(), fu_classes, name=source.name)
    packed.result = source.result
    return packed


def _load_or_repack(found, config_fingerprint: str,
                    fu_classes) -> PackedTrace:
    """Resolve a cache hit to columns: mmap the sidecar, or re-pack.

    Corrupt, truncated, stale, or future-versioned sidecars degrade to
    a streaming re-pack of the JSON trace — a damaged sidecar must
    never sink the experiment (mirroring how a damaged trace is a
    cache miss, not a crash).
    """
    side = sidecar_path(found.path)
    try:
        packed = load_sidecar(side, expected_config=config_fingerprint)
    except (PackFormatError, OSError):
        # ReplaySource.groups() streams from disk, so the re-pack never
        # holds the decoded object stream in memory
        packed = pack_stream(found.groups(), fu_classes, name=found.name)
        try:
            write_sidecar(side, packed,
                          config_fingerprint=config_fingerprint)
        except OSError:
            pass  # a read-only cache still works, just slower
    packed.name = found.name
    packed.result = found.result
    return packed


def packed_cached(program: Program, config: MachineConfig,
                  cache_dir, fu_classes: Optional[Iterable[FUClass]] = None,
                  telemetry=None) -> Tuple[PackedTrace, bool]:
    """One packed stream per program version, simulated at most once.

    The columnar analogue of the drivers' ``_captured_stream``: returns
    ``(packed, cache_hit)`` with identical cache-population semantics,
    plus sidecar persistence and an LRU mtime touch on hits.
    """
    if cache_dir is not None:
        found = cached_source(program, config, cache_dir, fu_classes)
        if found is not None:
            try:
                os.utime(found.path)  # LRU recency for cache pruning
            except OSError:
                pass
            return (_load_or_repack(found, config.fingerprint(), fu_classes),
                    True)
        memory = record_cached(program, config, cache_dir, fu_classes,
                               telemetry=telemetry)
        packed = pack_stream(memory.groups(), fu_classes,
                             name=memory.name, result=memory.result)
        side = sidecar_path(
            Path(cache_dir)
            / (trace_cache_key(program, config, fu_classes) + ".trace.gz"))
        try:
            write_sidecar(side, packed,
                          config_fingerprint=config.fingerprint())
        except OSError:
            pass
        return packed, False
    memory = capture(LiveSource(program, config, telemetry=telemetry),
                     fu_classes)
    return pack_stream(memory.groups(), fu_classes, name=memory.name,
                       result=memory.result), False


def drive_stream(stream, consumers: Sequence, finalize: bool = True):
    """Drive consumers over a packed *or* object stream.

    Lets the experiment drivers keep one code path whichever engine
    produced the stream: packed traces go through the fused kernels
    (on the kernel backend recorded in ``stream.backend``, or
    auto-detected when unset), everything else through the classic
    object loop.
    """
    if isinstance(stream, PackedTrace):
        return batch_drive(stream, consumers, finalize=finalize,
                           backend=stream.backend)
    return drive(stream, consumers, finalize=finalize)
