"""Columnar packed traces: decode an issue stream once into flat arrays.

Replay through :class:`~repro.streams.MemorySource` materialises one
``IssueGroup`` and one ``MicroOp`` *object* per operation and pays
Python attribute access for every field every time a consumer touches
the stream.  A :class:`PackedTrace` decodes the stream exactly once
into flat ``array`` columns — operand words, opcode indices, flag
bytes, group offsets — plus two things the paper's evaluation layers
recompute per op otherwise:

* the **information-bit case** of every operation under the FU class's
  paper scheme (``scheme_for``), precomputed at pack time;
* the masked **popcounts** of both operands (the Table 1 statistics
  kernels consume these directly).

The fused evaluation kernels in :mod:`repro.batch.kernels` then run
policies over these columns with per-module previous-operand state in
local variables.  :meth:`PackedTrace.iter_groups` reconstructs the
original object stream (bit-identically, in the original global group
order) for round-trip tests and for consumers without a kernel.

Column layout, per FU class (one :class:`PackedColumns`):

=========  ========  ==================================================
column     typecode  meaning (one entry per group / per op)
=========  ========  ==================================================
cycles     ``Q``     per group: issue cycle
offsets    ``I``     per group + 1: prefix sums into the op columns
op1, op2   ``Q``     per op: operand bit images
opcode     ``H``     per op: index into the trace's opcode-name table
flags      ``B``     per op: bit flags (see ``F_*`` constants)
case       ``B``     per op: info-bit case under the pack scheme
pop1,pop2  ``B``     per op: ``popcount(op & mask)`` (op2 as case rule)
static     ``i``     per op: ``static_index``
=========  ========  ==================================================
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..cpu.trace import IssueGroup, MicroOp, SimulationResult
from ..isa.encoding import bit_count as _bit_count
from ..isa.instructions import FUClass, OpcodeInfo, opcode as _opcode
from ..core.info_bits import scheme_for
from ..core.power import operand_width

# per-op flag bits (the ``flags`` column)
F_HAS_TWO = 1    # op.has_two
F_SPEC = 2       # op.speculative (final wrong-path flag)
F_SWAPPED = 4    # op.swapped (as recorded in the stream)
F_CRITICAL = 8   # op.critical
F_COMMUT = 16    # opcode-level: op.op.hardware_swappable
F_HW_SWAP = 32   # op-level: op.hardware_swappable (commut AND has_two)

#: case after exchanging the two operands (info_bits.swapped_case as a LUT)
SWAPPED_CASE = (0b00, 0b10, 0b01, 0b11)

#: column name -> array typecode, in serialisation order
OP_COLUMNS = (("op1", "Q"), ("op2", "Q"), ("opcode", "H"), ("flags", "B"),
              ("case", "B"), ("pop1", "B"), ("pop2", "B"), ("static", "i"))
GROUP_COLUMNS = (("cycles", "Q"), ("offsets", "I"))
ALL_COLUMNS = GROUP_COLUMNS + OP_COLUMNS

#: array typecode -> little-endian NumPy dtype string.  Columns are
#: stored as ``array.array`` (fresh packs) or ``memoryview`` casts over
#: the sidecar mmap; both expose the buffer protocol, so the NumPy
#: kernel backend wraps them with ``np.frombuffer(column, dtype)`` —
#: a zero-copy view, never a converted copy.
NUMPY_DTYPES = {"Q": "<u8", "I": "<u4", "H": "<u2", "B": "u1", "i": "<i4"}


class PackedColumns:
    """Flat columns for one FU class's groups (see module docstring).

    ``conventional`` records whether every single-source op carried the
    documented ``op2 == 0`` convention; kernels that summarise operands
    through the ``case`` column require it (simulator streams always
    satisfy it, hand-built adversarial traces may not).
    """

    __slots__ = ("fu_class", "scheme", "mask", "conventional",
                 "cycles", "offsets", "op1", "op2", "opcode", "flags",
                 "case", "pop1", "pop2", "static")

    def __init__(self, fu_class: FUClass):
        self.fu_class = fu_class
        self.scheme = scheme_for(fu_class)
        self.mask = (1 << operand_width(fu_class)) - 1
        self.conventional = True
        self.cycles = array("Q")
        self.offsets = array("I", [0])
        self.op1 = array("Q")
        self.op2 = array("Q")
        self.opcode = array("H")
        self.flags = array("B")
        self.case = array("B")
        self.pop1 = array("B")
        self.pop2 = array("B")
        self.static = array("i")

    @property
    def n_groups(self) -> int:
        return len(self.cycles)

    @property
    def n_ops(self) -> int:
        return len(self.op1)

    def column(self, name: str):
        return getattr(self, name)


class PackedTrace:
    """One packed issue stream: per-class columns plus the global group
    order, the opcode-name table, and (when known) the run summary."""

    def __init__(self, name: str = "packed",
                 result: Optional[SimulationResult] = None):
        self.name = name
        self.result = result
        #: preferred kernel backend for :func:`~repro.batch.kernels
        #: .batch_drive` ("np"/"python"; None = auto-detect).  Set by
        #: the engine layer so an explicit ``--engine batch`` stays on
        #: the pure-Python kernels even when NumPy is importable.
        self.backend: Optional[str] = None
        self.classes: Dict[FUClass, PackedColumns] = {}
        self.class_list: List[FUClass] = []
        #: per global group: index into ``class_list``
        self.order = array("B")
        self.opcode_names: List[str] = []
        self._opcode_index: Dict[str, int] = {}
        self._opcode_objs: Optional[List[OpcodeInfo]] = None
        # backing store (sidecar mmap) kept alive while columns are used
        self._mmap = None

    @property
    def n_groups(self) -> int:
        return len(self.order)

    @property
    def n_ops(self) -> int:
        return sum(cols.n_ops for cols in self.classes.values())

    def fu_classes(self) -> Tuple[FUClass, ...]:
        return tuple(self.class_list)

    def _intern_opcode(self, name: str) -> int:
        index = self._opcode_index.get(name)
        if index is None:
            index = len(self.opcode_names)
            self._opcode_index[name] = index
            self.opcode_names.append(name)
        return index

    def _columns_for(self, fu_class: FUClass) -> PackedColumns:
        cols = self.classes.get(fu_class)
        if cols is None:
            cols = PackedColumns(fu_class)
            self.classes[fu_class] = cols
            self.class_list.append(fu_class)
        return cols

    def add_group(self, group: IssueGroup) -> None:
        """Append one issue group (streaming; holds no references)."""
        cols = self._columns_for(group.fu_class)
        self.order.append(self.class_list.index(group.fu_class))
        cols.cycles.append(group.cycle)
        mask = cols.mask
        case_fn = cols.scheme.pair_case or cols.scheme.case_of
        for op in group.ops:
            flags = 0
            if op.has_two:
                flags |= F_HAS_TWO
            elif op.op2:
                cols.conventional = False
            if op.speculative:
                flags |= F_SPEC
            if op.swapped:
                flags |= F_SWAPPED
            if op.critical:
                flags |= F_CRITICAL
            if op.op.hardware_swappable:
                flags |= F_COMMUT
                if op.has_two:
                    flags |= F_HW_SWAP
            op2_case = op.op2 if op.has_two else 0
            cols.op1.append(op.op1)
            cols.op2.append(op.op2)
            cols.opcode.append(self._intern_opcode(op.op.name))
            cols.flags.append(flags)
            cols.case.append(case_fn(op.op1, op2_case))
            cols.pop1.append(_bit_count(op.op1 & mask))
            cols.pop2.append(_bit_count(op2_case & mask))
            cols.static.append(op.static_index)
        cols.offsets.append(cols.n_ops)

    # ----- object-stream reconstruction -----------------------------------

    def _opcodes(self) -> List[OpcodeInfo]:
        if self._opcode_objs is None or \
                len(self._opcode_objs) != len(self.opcode_names):
            self._opcode_objs = [_opcode(name) for name in self.opcode_names]
        return self._opcode_objs

    def iter_groups(self) -> Iterator[IssueGroup]:
        """Reconstruct the original object stream, group order included.

        Every MicroOp field round-trips exactly; used by consumers that
        have no columnar kernel and by the pack/unpack identity tests.
        """
        opcodes = self._opcodes()
        cursors = [0] * len(self.class_list)
        for class_index in self.order:
            fu_class = self.class_list[class_index]
            cols = self.classes[fu_class]
            g = cursors[class_index]
            cursors[class_index] = g + 1
            start, end = cols.offsets[g], cols.offsets[g + 1]
            ops = [MicroOp(opcodes[cols.opcode[i]], cols.op1[i], cols.op2[i],
                           has_two=bool(cols.flags[i] & F_HAS_TWO),
                           static_index=cols.static[i],
                           speculative=bool(cols.flags[i] & F_SPEC),
                           swapped=bool(cols.flags[i] & F_SWAPPED),
                           critical=bool(cols.flags[i] & F_CRITICAL))
                   for i in range(start, end)]
            yield IssueGroup(int(cols.cycles[g]), fu_class, ops)

    def groups(self) -> Iterator[IssueGroup]:
        """IssueSource-style alias so a PackedTrace can stand in where a
        re-drivable pull source is expected."""
        return self.iter_groups()


def pack_stream(groups: Iterable[IssueGroup],
                fu_classes: Optional[Iterable[FUClass]] = None,
                name: str = "packed",
                result: Optional[SimulationResult] = None) -> PackedTrace:
    """Pack an issue-group iterable into columns in one streaming pass.

    ``fu_classes`` filters like the trace writers do: groups of other
    classes are dropped entirely.  The iterable is consumed lazily —
    packing a :class:`~repro.streams.ReplaySource`'s ``groups()`` never
    holds more than one decoded group in memory.
    """
    wanted = set(fu_classes) if fu_classes is not None else None
    packed = PackedTrace(name=name, result=result)
    for group in groups:
        if wanted is not None and group.fu_class not in wanted:
            continue
        packed.add_group(group)
    return packed
