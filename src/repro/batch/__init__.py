"""Columnar batch-evaluation engine.

Decode a recorded issue stream **once** into flat packed columns
(:mod:`~repro.batch.columns`), evaluate every requested policy/swap
cell with fused kernels over those columns
(:mod:`~repro.batch.kernels`, vectorized on NumPy when importable via
:mod:`~repro.batch.kernels_np`), and persist the columns as a
memory-mappable sidecar next to the cached trace
(:mod:`~repro.batch.sidecar`).  The object path in
:mod:`repro.streams` remains the reference oracle: the parity tests in
``tests/batch`` prove bit-identical ``EvaluationTotals`` and telemetry
counters across the engines.
"""

from .columns import (ALL_COLUMNS, F_COMMUT, F_CRITICAL, F_HAS_TWO,
                      F_HW_SWAP, F_SPEC, F_SWAPPED, GROUP_COLUMNS,
                      NUMPY_DTYPES, OP_COLUMNS, PackedColumns, PackedTrace,
                      SWAPPED_CASE, pack_stream)
from .engine import (ENGINE_BACKENDS, ENGINES, drive_stream, pack_source,
                     packed_cached, resolve_engine)
from .kernels import (BACKENDS, POPCOUNT16, batch_drive, numpy_available,
                      resolve_backend)
from .kernels_np import NUMPY_AVAILABLE, popcount64
from .sidecar import (MAGIC, PACK_VERSION, PackFormatError,
                      SUPPORTED_PACK_VERSIONS, load_sidecar, sidecar_path,
                      write_sidecar)

__all__ = [
    "ALL_COLUMNS", "BACKENDS", "ENGINES", "ENGINE_BACKENDS",
    "GROUP_COLUMNS", "MAGIC", "NUMPY_AVAILABLE", "NUMPY_DTYPES",
    "OP_COLUMNS", "PACK_VERSION", "POPCOUNT16", "PackFormatError",
    "PackedColumns", "PackedTrace", "SUPPORTED_PACK_VERSIONS",
    "SWAPPED_CASE",
    "F_COMMUT", "F_CRITICAL", "F_HAS_TWO", "F_HW_SWAP", "F_SPEC",
    "F_SWAPPED",
    "batch_drive", "drive_stream", "load_sidecar", "numpy_available",
    "pack_source", "pack_stream", "packed_cached", "popcount64",
    "resolve_backend", "resolve_engine", "sidecar_path", "write_sidecar",
]
