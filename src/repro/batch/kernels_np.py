"""NumPy backend for the fused columnar kernels.

Whole-column twins of the pure-Python kernels in
:mod:`repro.batch.kernels`: the per-op work — speculative filtering,
clamping, pre-swap, case lookups, popcounts, per-module switched-bit
accounting — runs as array operations over the existing
:class:`~repro.batch.columns.PackedColumns` layout, with zero-copy
``np.frombuffer`` views over the ``array``/``memoryview`` columns (the
column storage itself is unchanged, so the Python kernels and the
object path keep working on the very same trace).

The backend is optional: this module imports cleanly without NumPy
(:data:`NUMPY_AVAILABLE` is ``False`` and :func:`kernel_for` always
returns ``None``), and :func:`repro.batch.kernels.batch_drive` falls
back to the pure-Python kernels, which remain the parity oracle.

How each kernel family vectorizes
---------------------------------

* **Selection** (the filter/clamp of ``_select_groups``) becomes a
  rank-within-group computation from the offsets column: a cumulative
  sum of the non-speculative mask gives each op's rank among its
  group's survivors, and ``rank < num_modules`` is the clamp.
* **Accounting** is shared by every kernel: once per-op module choices
  exist, a stable argsort by module turns the stream into contiguous
  per-module runs *in stream order*; the "previous operands" of each op
  are then just the shifted run (seeded from the power model's latched
  state at run starts), so every XOR/popcount happens in one shot and
  per-module totals come from ``np.add.reduceat``.  Popcounts go
  through :data:`~repro.batch.kernels.POPCOUNT16` viewed as a NumPy
  table over the ``uint16`` lanes of each 64-bit word.
* **LUT steering** packs each group's (length, leading cases) into the
  same collision-free integer key the Python kernel uses, calls
  ``LUTPolicy._assign_cases`` once per *unique* key (``np.unique``),
  and expands module choices with one 2-D gather.
* **1-bit Hamming** packs each group's (case, swappable) codes into a
  per-group opkey column; the decision layer itself — a dict memoised
  on (opkey, module info-bit state) exactly like the Python kernel,
  sharing its ``_one_bit_decide``  — stays a Python loop because each
  group's decision feeds the next group's key, but it touches one int
  per *group* (not per op) and expansion back to ops is columnar.
* **Full Hamming** is delegated to the fused Python kernel: its exact
  cost matrix reads the full-width latched images the previous group's
  assignment just wrote, so the groups are sequentially dependent by
  construction and there is no whole-column formulation; the Python
  matcher is already pruned and memoises permutations.

Every kernel writes back through the same :class:`_EvalContext` flush
as the Python backend, and all arithmetic is integer-exact (int64/
uint64 sums, never float), so the three engines are bit-identical —
``tests/batch/test_parity.py`` holds them to the object-path oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

try:  # NumPy is optional: without it the Python kernels carry the load
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..core.registry import REGISTRY
from ..core.steering import (LUTPolicy, OneBitHammingPolicy,
                             PolicyEvaluator)
from .columns import (F_HW_SWAP, F_SPEC, NUMPY_DTYPES, PackedColumns,
                      PackedTrace, SWAPPED_CASE)
from .kernels import (POPCOUNT16, _EMPTY, _EvalContext, _bit_patterns_cols,
                      _one_bit_decide)

if TYPE_CHECKING:  # runtime-lazy, mirroring kernels.py
    from ..analysis.bit_patterns import BitPatternCollector
    from ..analysis.module_usage import ModuleUsageCollector

#: whether the NumPy backend can run at all in this interpreter
NUMPY_AVAILABLE = np is not None

if NUMPY_AVAILABLE:
    #: POPCOUNT16 as an indexable ndarray (zero-copy view of the bytes)
    _POP16 = np.frombuffer(POPCOUNT16, dtype=np.uint8)
    _SWAPPED_CASE_NP = np.array(SWAPPED_CASE, dtype=np.uint8)

#: widest machine the packed 1-bit-Hamming opkey fits in one int64
#: (3 bits per op, up to num_modules ops per group)
_ONE_BIT_MAX_MODULES = 16


def popcount64(values) -> "np.ndarray":
    """Vectorized popcount of a uint64 array via :data:`POPCOUNT16`.

    Views each 64-bit word as four 16-bit lanes and sums the table
    lookups — the array twin of ``_table_bit_count``, checked against
    the same oracle in ``tests/batch/test_popcount.py``.
    """
    if np is None:
        raise RuntimeError("popcount64 requires numpy")
    words = np.ascontiguousarray(values, dtype=np.uint64)
    lanes = _POP16[words.view(np.uint16)].reshape(-1, 4)
    # four strided adds beat reduce-along-axis by ~2x at these widths
    out = lanes[:, 0].astype(np.int64)
    out += lanes[:, 1]
    out += lanes[:, 2]
    out += lanes[:, 3]
    return out


# ----- shared columnar machinery ---------------------------------------------


def _view(cols: PackedColumns, name: str, typecode: str) -> "np.ndarray":
    """Zero-copy ndarray view over one column (array.array or mmap)."""
    return np.frombuffer(cols.column(name), dtype=NUMPY_DTYPES[typecode])


def _op_views(cols: PackedColumns):
    return (_view(cols, "op1", "Q"), _view(cols, "op2", "Q"),
            _view(cols, "flags", "B"), _view(cols, "case", "B"))


def _offsets_view(cols: PackedColumns) -> "np.ndarray":
    return _view(cols, "offsets", "I").astype(np.int64)


class _Selected:
    """Columnar result of ``_select_groups``: which ops each evaluator
    accounts, and where their (post-filter) groups start and end."""

    __slots__ = ("idx", "rank", "starts", "n_of", "jop", "cycles")

    def __init__(self, idx, rank, starts, n_of, jop, cycles):
        self.idx = idx          # selected op indices, stream order
        self.rank = rank        # rank of each selected op in its group
        self.starts = starts    # index into idx where each group starts
        self.n_of = n_of        # ops per (non-empty) selected group
        self.jop = jop          # selected-group ordinal per selected op
        self.cycles = cycles    # number of non-empty selected groups


def _select(offsets: "np.ndarray", flags: "np.ndarray",
            num_modules: int, exclude_spec: bool) -> Optional[_Selected]:
    """Vectorized ``_select_groups``: spec-filter *then* clamp, exactly
    the deferred evaluators' ``_account_ops`` order."""
    n_groups = len(offsets) - 1
    n_ops = int(offsets[-1]) if n_groups > 0 else 0
    if n_ops == 0:
        return None
    sizes = np.diff(offsets)
    group_start = np.repeat(offsets[:-1], sizes)
    if exclude_spec:
        keep = (flags & F_SPEC) == 0
        before = np.cumsum(keep, dtype=np.int64) - keep
        rank = before - before[group_start]
        sel_mask = keep & (rank < num_modules)
    else:
        rank = np.arange(n_ops, dtype=np.int64) - group_start
        sel_mask = rank < num_modules
    idx = np.flatnonzero(sel_mask)
    if idx.size == 0:
        return None
    gid_sel = group_start[idx]  # any per-group-constant works as a group id
    starts = np.flatnonzero(np.r_[True, gid_sel[1:] != gid_sel[:-1]])
    n_of = np.diff(np.r_[starts, idx.size])
    jop = np.repeat(np.arange(starts.size, dtype=np.int64), n_of)
    return _Selected(idx, rank[idx], starts, n_of, jop, int(starts.size))


def _pre_swap(ctx: _EvalContext, sel: _Selected, op1v, op2v, flagsv, casev):
    """Apply the case-triggered pre-swap columnar; returns the effective
    operands/cases plus the raw pre-swap mask (1-bit-ham needs it)."""
    idx = sel.idx
    o1 = op1v[idx]
    o2 = op2v[idx]
    case = casev[idx]
    if ctx.swapper is None:
        return o1, o2, case, None
    pre = ((flagsv[idx] & F_HW_SWAP) != 0) & (case == ctx.swap_case)
    if pre.any():
        o1, o2 = np.where(pre, o2, o1), np.where(pre, o1, o2)
        case = np.where(pre, _SWAPPED_CASE_NP[case], case)
    ctx.pre_swaps = int(pre.sum())
    return o1, o2, case, pre


def _accumulate(ctx: _EvalContext, o1, o2, module, case) -> None:
    """Charge selected ops to their modules, all columns at once.

    A stable sort by module yields per-module contiguous runs in stream
    order; each op's previous operands are then the run shifted by one,
    seeded from the latched power-model state at run starts.  Totals,
    per-module tracking, telemetry case counts and the final latched
    state all come out of the sorted arrays with integer-exact sums.
    """
    order = np.argsort(module, kind="stable")
    m_sorted = module[order]
    s1 = o1[order]
    s2 = o2[order]
    run_starts = np.flatnonzero(np.r_[True, m_sorted[1:] != m_sorted[:-1]])
    run_modules = m_sorted[run_starts]
    init1 = np.array(ctx.prev1, dtype=np.uint64)
    init2 = np.array(ctx.prev2, dtype=np.uint64)
    p1 = np.empty_like(s1)
    p2 = np.empty_like(s2)
    p1[1:] = s1[:-1]
    p2[1:] = s2[:-1]
    p1[run_starts] = init1[run_modules]
    p2[run_starts] = init2[run_modules]
    mask = np.uint64(ctx.mask)
    bits = popcount64((s1 ^ p1) & mask) + popcount64((s2 ^ p2) & mask)
    ctx.total_bits += int(bits.sum())
    ctx.total_ops += int(module.size)
    run_ends = np.r_[run_starts[1:], m_sorted.size] - 1
    last1 = s1[run_ends]
    last2 = s2[run_ends]
    track, track_ops = ctx.track, ctx.track_ops
    if track is not None:
        run_bits = np.add.reduceat(bits, run_starts)
        run_lens = np.diff(np.r_[run_starts, m_sorted.size])
    prev1, prev2 = ctx.prev1, ctx.prev2
    for r in range(run_modules.size):  # one iteration per *module*, not op
        m = int(run_modules[r])
        prev1[m] = int(last1[r])
        prev2[m] = int(last2[r])
        if track is not None:
            track[m] += int(run_bits[r])
            track_ops[m] += int(run_lens[r])
    if ctx.telemetry:
        counts = np.bincount(case, minlength=4)
        tcounts = ctx.tcounts
        for c in range(4):
            tcounts[c] += int(counts[c])


# ----- evaluator kernels ------------------------------------------------------


def _np_run_positional(ev: PolicyEvaluator, cols: PackedColumns,
                       round_robin: bool) -> None:
    """Original (op k -> module k) and round-robin steering."""
    ctx = _EvalContext(ev, cols)
    op1v, op2v, flagsv, casev = _op_views(cols)
    sel = _select(_offsets_view(cols), flagsv, ctx.nm,
                  not ev.include_speculative)
    if sel is None:
        ctx.flush()
        return
    ctx.cycles_seen = sel.cycles
    o1, o2, case, _ = _pre_swap(ctx, sel, op1v, op2v, flagsv, casev)
    if round_robin:
        rr0 = ev.policy._next
        # the rotation pointer at each group's start: the initial pointer
        # plus every preceding non-empty group's op count, like the
        # object policy advancing once per issued group
        taken_before = np.r_[0, np.cumsum(sel.n_of)[:-1]]
        module = (rr0 + taken_before[sel.jop] + sel.rank) % ctx.nm
        ev.policy._next = int((rr0 + int(sel.n_of.sum())) % ctx.nm)
    else:
        module = sel.rank
    _accumulate(ctx, o1, o2, module, case)
    ctx.flush()


def _np_run_lut(ev: PolicyEvaluator, cols: PackedColumns) -> None:
    """Table-driven LUT steering: one ``_assign_cases`` per unique
    (length, leading-cases) key, expanded with a single 2-D gather."""
    ctx = _EvalContext(ev, cols)
    policy: LUTPolicy = ev.policy
    nm = ctx.nm
    op1v, op2v, flagsv, casev = _op_views(cols)
    sel = _select(_offsets_view(cols), flagsv, nm, not ev.include_speculative)
    if sel is None:
        ctx.flush()
        return
    ctx.cycles_seen = sel.cycles
    o1, o2, case, _ = _pre_swap(ctx, sel, op1v, op2v, flagsv, casev)
    vo = policy._vector_ops
    # the Python kernel's collision-free key, column-wise: length in the
    # high bits, then the first min(length, vector_ops) cases big-endian
    t = np.minimum(sel.n_of, vo)
    t_op = t[sel.jop]
    shift = np.maximum(2 * (t_op - 1 - sel.rank), 0)
    contrib = np.where(sel.rank < t_op, case.astype(np.int64) << shift, 0)
    key = (sel.n_of << (2 * t)) | np.add.reduceat(contrib, sel.starts)
    uniq, first, inverse = np.unique(key, return_index=True,
                                     return_inverse=True)
    table = np.zeros((uniq.size, nm), dtype=np.int64)
    for u in range(uniq.size):  # one policy call per unique key
        j = int(first[u])
        start = int(sel.starts[j])
        n = int(sel.n_of[j])
        cases = tuple(int(c) for c in case[start:start + min(n, vo)])
        modules = policy._assign_cases(cases, n, nm).modules
        table[u, :len(modules)] = modules
    module = table[inverse[sel.jop], sel.rank]
    _accumulate(ctx, o1, o2, module, case)
    ctx.flush()


def _np_run_one_bit_hamming(ev: PolicyEvaluator, cols: PackedColumns) -> None:
    """1-bit Hamming matcher: columnar opkeys, memoised decisions.

    The per-group decision chain (each group's assignment updates the
    module info-bit state the next group's key depends on) runs as a
    Python loop over *groups*, sharing the exact ``_one_bit_decide``
    the Python kernel memoises; everything per-op — key packing, module
    and router-swap expansion, operand selection, accounting — is
    columnar.
    """
    ctx = _EvalContext(ev, cols)
    policy: OneBitHammingPolicy = ev.policy
    allow_swap = policy.allow_swap
    nm = ctx.nm
    op1v, op2v, flagsv, casev = _op_views(cols)
    sel = _select(_offsets_view(cols), flagsv, nm, not ev.include_speculative)
    if sel is None:
        ctx.flush()
        return
    ctx.cycles_seen = sel.cycles
    idx = sel.idx
    raw_case = casev[idx]
    hw = (flagsv[idx] & F_HW_SWAP) != 0
    if ctx.swapper is not None:
        pre = hw & (raw_case == ctx.swap_case)
        case = np.where(pre, _SWAPPED_CASE_NP[raw_case], raw_case)
        ctx.pre_swaps = int(pre.sum())
    else:
        pre = np.zeros(idx.size, dtype=bool)
        case = raw_case
    swappable = hw if allow_swap else np.zeros(idx.size, dtype=bool)
    # 3 bits per op, packed big-endian per group — identical layout to
    # the Python kernel's key accumulator
    field = (case.astype(np.int64) << 1) | swappable
    opkeys = np.add.reduceat(field << (3 * (sel.n_of[sel.jop] - 1 - sel.rank)),
                             sel.starts)

    extract = policy.scheme.extract
    pb1 = 0  # bit m = info bit of module m's latched first operand
    pb2 = 0
    for m in range(nm):
        pb1 |= extract(ctx.prev1[m]) << m
        pb2 |= extract(ctx.prev2[m]) << m
    opkeys_l = opkeys.tolist()
    n_l = sel.n_of.tolist()
    starts_l = sel.starts.tolist()
    case_l = case.tolist()
    sw_l = swappable.tolist()
    modrange = range(nm)
    perms_by_n: Dict[int, List[Tuple[int, ...]]] = {}
    decisions: Dict[int, Tuple[int, int, int]] = {}
    dec_modules: List[Tuple[int, ...]] = []
    dec_swaps: List[Tuple[bool, ...]] = []
    dec_ids = np.empty(len(n_l), dtype=np.int64)
    for j in range(len(n_l)):
        n = n_l[j]
        key = ((((opkeys_l[j] << nm) | pb1) << nm) | pb2) << 6 | n
        hit = decisions.get(key)
        if hit is None:
            start = starts_l[j]
            modules, chosen, npb1, npb2 = _one_bit_decide(
                case_l[start:start + n], sw_l[start:start + n],
                pb1, pb2, nm, modrange, perms_by_n)
            hit = (len(dec_modules), npb1, npb2)
            dec_modules.append(modules)
            dec_swaps.append(chosen)
            decisions[key] = hit
        dec_id, pb1, pb2 = hit
        dec_ids[j] = dec_id

    mtab = np.zeros((len(dec_modules), nm), dtype=np.int64)
    stab = np.zeros((len(dec_modules), nm), dtype=bool)
    for d in range(len(dec_modules)):
        modules = dec_modules[d]
        mtab[d, :len(modules)] = modules
        stab[d, :len(modules)] = dec_swaps[d]
    dec_op = dec_ids[sel.jop]
    module = mtab[dec_op, sel.rank]
    chosen = stab[dec_op, sel.rank]
    ctx.router_swaps = int(chosen.sum())
    # a pre-swap exchanged the operands before the matcher; a router
    # swap exchanges them again — the net order is raw when both (or
    # neither) fired
    ro1 = op1v[idx]
    ro2 = op2v[idx]
    eff = chosen != pre
    o1 = np.where(eff, ro2, ro1)
    o2 = np.where(eff, ro1, ro2)
    _accumulate(ctx, o1, o2, module, case)
    ctx.flush()


def _evaluator_kernel_np(ev: PolicyEvaluator, packed: PackedTrace
                         ) -> Optional[Callable[[], None]]:
    """Resolve the NumPy kernel for one evaluator, or ``None`` to let
    the Python dispatcher decide (fused Python kernel or object path).

    Resolution goes through the policy registry's ``np`` backend
    entries.  Families without one — full-Hamming, whose exact cost
    matrix reads the full-width state the previous group just latched
    (sequentially dependent, no whole-column formulation), and any
    family that simply never registered — fall through cleanly.
    """
    cols = _np_evaluator_cols(ev, packed)
    if cols is None:
        return None
    factory = REGISTRY.kernel_factory(ev.policy, "np")
    if factory is None:
        return None
    return factory(ev, cols)


def _np_evaluator_cols(ev: PolicyEvaluator, packed: PackedTrace):
    from .kernels import _evaluator_cols
    cols = _evaluator_cols(ev, packed)
    if cols is None or cols is _EMPTY:
        return None
    return cols


# ----- np-backend kernel registrations ----------------------------------------


def _np_original_kernel(ev, cols):
    return lambda: _np_run_positional(ev, cols, round_robin=False)


def _np_round_robin_kernel(ev, cols):
    return lambda: _np_run_positional(ev, cols, round_robin=True)


def _np_lut_kernel(ev, cols):
    if ev.policy.scheme is not cols.scheme:
        return None
    return lambda: _np_run_lut(ev, cols)


def _np_one_bit_hamming_kernel(ev, cols):
    if ev.policy.scheme is not cols.scheme or not cols.conventional \
            or ev.power.num_modules > _ONE_BIT_MAX_MODULES:
        return None
    return lambda: _np_run_one_bit_hamming(ev, cols)


if np is not None:  # without numpy the python kernels carry the load
    for _family, _factory in (("original", _np_original_kernel),
                              ("round-robin", _np_round_robin_kernel),
                              ("lut", _np_lut_kernel),
                              ("1bit-ham", _np_one_bit_hamming_kernel)):
        REGISTRY.register_kernel(_family, "np", _factory)
    del _family, _factory


# ----- statistics kernels -----------------------------------------------------


def _np_run_bit_patterns(collector: "BitPatternCollector",
                         cols: PackedColumns) -> None:
    """Table 1 rows as bincounts over the case/popcount columns."""
    flags = _view(cols, "flags", "B")
    case = _view(cols, "case", "B")
    pop1 = _view(cols, "pop1", "B")
    pop2 = _view(cols, "pop2", "B")
    if not collector.include_speculative:
        keep = (flags & F_SPEC) == 0
        flags, case, pop1, pop2 = (flags[keep], case[keep],
                                   pop1[keep], pop2[keep])
    slot = (case.astype(np.int64) << 1) | ((flags >> 4) & 1)  # F_COMMUT
    counts = np.bincount(slot, minlength=8)
    for s in range(8):
        if not counts[s]:
            continue
        chosen = slot == s
        row = collector.rows[(s >> 1, bool(s & 1))]
        row.count += int(counts[s])
        row.ones_op1 += int(pop1[chosen].sum(dtype=np.int64))
        row.ones_op2 += int(pop2[chosen].sum(dtype=np.int64))
    collector.total_ops += int(slot.size)


def _np_run_module_usage(collector: "ModuleUsageCollector",
                         cols: PackedColumns) -> None:
    """Table 2 widths from one diff over the offsets column."""
    widths = np.diff(_offsets_view(cols))
    values, counts = np.unique(widths[widths > 0], return_counts=True)
    per_class = collector.counts.setdefault(cols.fu_class, {})
    get = per_class.get
    for width, count in zip(values.tolist(), counts.tolist()):
        per_class[width] = get(width, 0) + count


# ----- dispatch ---------------------------------------------------------------


def kernel_for(consumer, packed: PackedTrace
               ) -> Optional[Callable[[], None]]:
    """NumPy kernel for one consumer, or ``None`` to defer to the
    Python dispatcher (which may still return a fused Python kernel)."""
    if np is None:
        return None
    from ..analysis.bit_patterns import BitPatternCollector
    from ..analysis.module_usage import ModuleUsageCollector
    if isinstance(consumer, PolicyEvaluator):
        return _evaluator_kernel_np(consumer, packed)
    if isinstance(consumer, BitPatternCollector):
        cols = _bit_patterns_cols(consumer, packed)
        if cols is None or cols is _EMPTY:
            return None
        return lambda: _np_run_bit_patterns(consumer, cols)
    if isinstance(consumer, ModuleUsageCollector):
        if type(consumer) is not ModuleUsageCollector:
            return None

        def run() -> None:
            for fu_class, cols in packed.classes.items():
                if consumer._filter is None or fu_class in consumer._filter:
                    _np_run_module_usage(consumer, cols)

        return run
    return None
