"""Fused columnar evaluation kernels.

:func:`batch_drive` is the columnar twin of :func:`repro.streams.drive`:
it runs a set of stream consumers over a :class:`PackedTrace`, using a
specialised kernel per consumer type where one exists and falling back
to a single shared object-decoding pass for everything else.  Kernels
write their results **into the consumers' existing state** (power-model
inputs and totals, evaluator counters, collector rows), so ``totals()``,
telemetry collectors, and every downstream aggregation work unchanged —
the object path remains the reference oracle and the parity tests in
``tests/batch`` hold the two bit-identical.

What makes the kernels fast is exactly what the issue promises:

* per-module previous-operand state lives in local lists, not MicroOp
  or power-model attribute access;
* information-bit cases come from the precomputed ``case`` column;
* popcounts go through :data:`POPCOUNT16`, a 16-bit table (or the
  native ``int.bit_count`` where that is faster);
* telemetry case counters accumulate in kernel locals and flush once
  per run instead of once per op.

Semantics replicated exactly (see the evaluator/collector sources):
the clamp-to-module-count *after* the speculative filter for deferred
evaluators, first-best tie-breaking in the brute-force matcher (via
:func:`repro.core.assignment.solve` itself), the round-robin rotation
advancing once per non-empty group, and the LUT spare-module remapping
(shared with the object path through ``LUTPolicy._assign_cases``).
"""

from __future__ import annotations

import itertools
from typing import (TYPE_CHECKING, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from ..core.assignment import _BRUTE_FORCE_LIMIT, solve as _solve
from ..core.power import FUPowerModel
from ..core.registry import REGISTRY
from ..core.steering import LUTPolicy, PolicyEvaluator
from ..core.swapping import HardwareSwapper
from ..isa.encoding import bit_count as _native_bit_count

if TYPE_CHECKING:  # runtime-lazy: analysis itself imports this package
    from ..analysis.bit_patterns import BitPatternCollector
    from ..analysis.module_usage import ModuleUsageCollector
from .columns import (F_HAS_TWO, F_HW_SWAP, F_SPEC, PackedColumns,
                      PackedTrace, SWAPPED_CASE)

#: popcount of every 16-bit value — the classic table the issue calls
#: for; on 3.11+ ``int.bit_count`` beats the double lookup, so the
#: kernels take whichever is faster for the running interpreter.
POPCOUNT16 = bytes(bin(value).count("1") for value in range(1 << 16))


def _table_bit_count(value: int, _table=POPCOUNT16) -> int:
    """Popcount via :data:`POPCOUNT16` (for up to 64-bit masked images)."""
    return (_table[value & 0xFFFF] + _table[(value >> 16) & 0xFFFF]
            + _table[(value >> 32) & 0xFFFF] + _table[(value >> 48) & 0xFFFF])


def _pick_bit_count() -> Callable[[int], int]:
    if hasattr(int, "bit_count"):  # 3.10+: a single C call wins
        return _native_bit_count
    return _table_bit_count


_bit_count = _pick_bit_count()


# ----- evaluator kernels ------------------------------------------------------


def _select_groups(cols: PackedColumns, num_modules: int,
                   exclude_spec: bool):
    """Yield per-group index lists after the evaluator's filter/clamp.

    Inclusive evaluators clamp the raw group to ``num_modules``;
    deferred (wrong-path-excluding) evaluators filter speculative ops
    *first*, then clamp — exactly ``_account_ops``'s order.  Groups
    with nothing left are skipped entirely (``cycles_seen`` untouched).
    """
    offsets = cols.offsets
    flags = cols.flags
    for g in range(cols.n_groups):
        start = offsets[g]
        end = offsets[g + 1]
        if start == end:
            continue
        if exclude_spec:
            sel = [i for i in range(start, end) if not (flags[i] & F_SPEC)]
            if not sel:
                continue
            if len(sel) > num_modules:
                del sel[num_modules:]
            yield sel
        else:
            if end - start > num_modules:
                end = start + num_modules
            yield range(start, end)


class _EvalContext:
    """Shared per-evaluator kernel state: hoisted power-model locals,
    pre-swap configuration, and telemetry accumulators."""

    __slots__ = ("ev", "cols", "power", "nm", "mask", "prev1", "prev2",
                 "track", "track_ops", "swapper", "swap_case", "telemetry",
                 "tcounts", "total_bits", "total_ops", "cycles_seen",
                 "router_swaps", "pre_swaps")

    def __init__(self, ev: PolicyEvaluator, cols: PackedColumns):
        self.ev = ev
        self.cols = cols
        power = self.power = ev.power
        self.nm = power.num_modules
        self.mask = power._mask
        self.prev1 = [pair[0] for pair in power._inputs]
        self.prev2 = [pair[1] for pair in power._inputs]
        self.track = power.module_switched_bits
        self.track_ops = power.module_operations
        self.swapper = ev.pre_swapper
        self.swap_case = (self.swapper.swap_from_case
                          if self.swapper is not None else -1)
        self.telemetry = ev.telemetry is not None
        self.tcounts = [0, 0, 0, 0]
        self.total_bits = 0
        self.total_ops = 0
        self.cycles_seen = 0
        self.router_swaps = 0
        self.pre_swaps = 0

    def flush(self) -> None:
        """Write the kernel's accumulators back into the evaluator."""
        ev = self.ev
        power = self.power
        power._inputs = list(zip(self.prev1, self.prev2))
        power.switched_bits += self.total_bits
        power.operations += self.total_ops
        ev.cycles_seen += self.cycles_seen
        if self.swapper is not None:
            self.swapper.swaps_performed += self.pre_swaps
        if self.telemetry:
            counts = ev._case_counts
            for case in range(4):
                counts[case] += self.tcounts[case]
            ev._ops_seen += self.total_ops
            ev._swaps_seen += self.router_swaps


def _run_positional(ev: PolicyEvaluator, cols: PackedColumns,
                    round_robin: bool) -> None:
    """Original (op k -> module k) and round-robin steering, fused."""
    ctx = _EvalContext(ev, cols)
    nm = ctx.nm
    mask = ctx.mask
    bc = _bit_count
    prev1, prev2 = ctx.prev1, ctx.prev2
    track, track_ops = ctx.track, ctx.track_ops
    op1c, op2c = cols.op1, cols.op2
    flagsc, casec = cols.flags, cols.case
    swapping = ctx.swapper is not None
    swap_case = ctx.swap_case
    swc = SWAPPED_CASE
    tel = ctx.telemetry
    tcounts = ctx.tcounts
    total_bits = 0
    total_ops = 0
    pre_swaps = 0
    rr_next = ev.policy._next if round_robin else 0

    for sel in _select_groups(cols, nm, not ev.include_speculative):
        ctx.cycles_seen += 1
        k = 0
        for i in sel:
            o1 = op1c[i]
            o2 = op2c[i]
            case = casec[i]
            if swapping and (flagsc[i] & F_HW_SWAP) and case == swap_case:
                o1, o2 = o2, o1
                case = swc[case]
                pre_swaps += 1
            module = (rr_next + k) % nm if round_robin else k
            cost = (bc((prev1[module] ^ o1) & mask)
                    + bc((prev2[module] ^ o2) & mask))
            prev1[module] = o1
            prev2[module] = o2
            total_bits += cost
            if track is not None:
                track[module] += cost
                track_ops[module] += 1
            if tel:
                tcounts[case] += 1
            k += 1
        total_ops += k
        if round_robin:
            rr_next = (rr_next + k) % nm

    if round_robin:
        ev.policy._next = rr_next
    ctx.total_bits = total_bits
    ctx.total_ops = total_ops
    ctx.pre_swaps = pre_swaps
    ctx.flush()


def _run_lut(ev: PolicyEvaluator, cols: PackedColumns) -> None:
    """Table-driven LUT steering with an int-keyed assignment cache."""
    ctx = _EvalContext(ev, cols)
    policy: LUTPolicy = ev.policy
    nm = ctx.nm
    mask = ctx.mask
    bc = _bit_count
    prev1, prev2 = ctx.prev1, ctx.prev2
    track, track_ops = ctx.track, ctx.track_ops
    op1c, op2c = cols.op1, cols.op2
    flagsc, casec = cols.flags, cols.case
    swapping = ctx.swapper is not None
    swap_case = ctx.swap_case
    swc = SWAPPED_CASE
    tel = ctx.telemetry
    tcounts = ctx.tcounts
    total_bits = 0
    total_ops = 0
    pre_swaps = 0
    vector_ops = policy._vector_ops
    # (length + case bits) -> modules tuple; length determines how many
    # cases are folded in, so the packed key is collision-free
    table = {}
    g1: List[int] = []
    g2: List[int] = []
    gc: List[int] = []

    for sel in _select_groups(cols, nm, not ev.include_speculative):
        ctx.cycles_seen += 1
        if swapping:
            del g1[:], g2[:], gc[:]
            for i in sel:
                o1 = op1c[i]
                o2 = op2c[i]
                case = casec[i]
                if (flagsc[i] & F_HW_SWAP) and case == swap_case:
                    o1, o2 = o2, o1
                    case = swc[case]
                    pre_swaps += 1
                g1.append(o1)
                g2.append(o2)
                gc.append(case)
            n = len(gc)
            key = n
            for case in gc[:vector_ops]:
                key = (key << 2) | case
            modules = table.get(key)
            if modules is None:
                modules = policy._assign_cases(tuple(gc[:vector_ops]),
                                               n, nm).modules
                table[key] = modules
            for k in range(n):
                module = modules[k]
                o1 = g1[k]
                o2 = g2[k]
                cost = (bc((prev1[module] ^ o1) & mask)
                        + bc((prev2[module] ^ o2) & mask))
                prev1[module] = o1
                prev2[module] = o2
                total_bits += cost
                if track is not None:
                    track[module] += cost
                    track_ops[module] += 1
                if tel:
                    tcounts[gc[k]] += 1
            total_ops += n
        else:
            # no pre-swapper: steer straight off the case column, no
            # per-group scratch lists at all
            n = len(sel)
            key = n
            taken = 0
            for i in sel:
                if taken == vector_ops:
                    break
                key = (key << 2) | casec[i]
                taken += 1
            modules = table.get(key)
            if modules is None:
                cases = tuple(casec[i] for i in sel)[:vector_ops]
                modules = policy._assign_cases(cases, n, nm).modules
                table[key] = modules
            k = 0
            for i in sel:
                module = modules[k]
                o1 = op1c[i]
                o2 = op2c[i]
                cost = (bc((prev1[module] ^ o1) & mask)
                        + bc((prev2[module] ^ o2) & mask))
                prev1[module] = o1
                prev2[module] = o2
                total_bits += cost
                if track is not None:
                    track[module] += cost
                    track_ops[module] += 1
                if tel:
                    tcounts[casec[i]] += 1
                k += 1
            total_ops += n

    ctx.total_bits = total_bits
    ctx.total_ops = total_ops
    ctx.pre_swaps = pre_swaps
    ctx.flush()


def _match(costs: List[List[int]], n: int, nm: int,
           perms_by_n: Dict[int, List[Tuple[int, ...]]]
           ) -> Tuple[int, ...]:
    """Minimum-cost injective matching with the exact tie-breaking of
    :func:`repro.core.assignment.solve`.

    In the brute-force regime (``nm <= 6``, like ``solve``) the lex-order
    strict-< scan is inlined with monotone partial-sum pruning — the
    winner is the lexicographically smallest minimum-total permutation
    either way, so pruning cannot change the result (costs are
    non-negative).  Wider machines delegate to ``solve`` itself.
    """
    if n == 1:
        row = costs[0]
        best = 0
        best_cost = row[0]
        for m in range(1, nm):
            if row[m] < best_cost:
                best_cost = row[m]
                best = m
        return (best,)
    if nm > _BRUTE_FORCE_LIMIT:
        return _solve(costs)[0]
    perms = perms_by_n.get(n)
    if perms is None:
        perms = list(itertools.permutations(range(nm), n))
        perms_by_n[n] = perms
    best_perm = perms[0]
    best_total = 0
    for k in range(n):
        best_total += costs[k][best_perm[k]]
    for index in range(1, len(perms)):
        perm = perms[index]
        total = 0
        for k in range(n):
            total += costs[k][perm[k]]
            if total >= best_total:
                break
        else:
            best_total = total
            best_perm = perm
    return best_perm


def _run_full_hamming(ev: PolicyEvaluator, cols: PackedColumns) -> None:
    """Full-width Hamming matcher: cost matrix from kernel locals."""
    ctx = _EvalContext(ev, cols)
    allow_swap = ev.policy.allow_swap
    nm = ctx.nm
    mask = ctx.mask
    bc = _bit_count
    prev1, prev2 = ctx.prev1, ctx.prev2
    track, track_ops = ctx.track, ctx.track_ops
    op1c, op2c = cols.op1, cols.op2
    flagsc, casec = cols.flags, cols.case
    swapping = ctx.swapper is not None
    swap_case = ctx.swap_case
    swc = SWAPPED_CASE
    tel = ctx.telemetry
    tcounts = ctx.tcounts
    modrange = range(nm)
    perms_by_n: Dict[int, List[Tuple[int, ...]]] = {}
    total_bits = 0
    total_ops = 0
    pre_swaps = 0
    router_swaps = 0

    for sel in _select_groups(cols, nm, not ev.include_speculative):
        ctx.cycles_seen += 1
        g1: List[int] = []
        g2: List[int] = []
        gc: List[int] = []
        costs: List[List[int]] = []
        swaps: List[Optional[List[bool]]] = []
        for i in sel:
            o1 = op1c[i]
            o2 = op2c[i]
            case = casec[i]
            fl = flagsc[i]
            if swapping and (fl & F_HW_SWAP) and case == swap_case:
                o1, o2 = o2, o1
                case = swc[case]
                pre_swaps += 1
            g1.append(o1)
            g2.append(o2)
            gc.append(case)
            if allow_swap and (fl & F_HW_SWAP):
                row = []
                row_swaps = []
                for m in modrange:
                    p1 = prev1[m]
                    p2 = prev2[m]
                    direct = bc((o1 ^ p1) & mask) + bc((o2 ^ p2) & mask)
                    exchanged = bc((o2 ^ p1) & mask) + bc((o1 ^ p2) & mask)
                    if exchanged < direct:
                        row.append(exchanged)
                        row_swaps.append(True)
                    else:
                        row.append(direct)
                        row_swaps.append(False)
                swaps.append(row_swaps)
            else:
                row = [bc((o1 ^ prev1[m]) & mask) + bc((o2 ^ prev2[m]) & mask)
                       for m in modrange]
                swaps.append(None)
            costs.append(row)
        n = len(g1)
        modules = _match(costs, n, nm, perms_by_n)
        for k in range(n):
            module = modules[k]
            row_swaps = swaps[k]
            if row_swaps is not None and row_swaps[module]:
                o1 = g2[k]
                o2 = g1[k]
                router_swaps += 1
            else:
                o1 = g1[k]
                o2 = g2[k]
            cost = costs[k][module]
            prev1[module] = o1
            prev2[module] = o2
            total_bits += cost
            if track is not None:
                track[module] += cost
                track_ops[module] += 1
            if tel:
                tcounts[gc[k]] += 1
        total_ops += n

    ctx.total_bits = total_bits
    ctx.total_ops = total_ops
    ctx.pre_swaps = pre_swaps
    ctx.router_swaps = router_swaps
    ctx.flush()


def _one_bit_decide(gc: Sequence[int], gsw: Sequence[bool],
                    pb1: int, pb2: int, nm: int, modrange,
                    perms_by_n: Dict[int, List[Tuple[int, ...]]]
                    ) -> Tuple[Tuple[int, ...], Tuple[bool, ...], int, int]:
    """One 1-bit-Hamming group decision from the memo-miss path.

    Given the group's (post-pre-swap) cases, per-op swappability, and
    the packed per-module info-bit state, build the 1-bit cost matrix,
    match, and recover the router swaps exactly as ``cost_matrix``
    chose them.  Returns ``(modules, chosen_swaps, next_pb1, next_pb2)``
    — shared verbatim by the Python and NumPy backends so the memoised
    decision layer cannot drift between them.
    """
    n = len(gc)
    costs: List[List[int]] = []
    for k in range(n):
        case = gc[k]
        b1 = (case >> 1) & 1
        b2 = case & 1
        row = []
        for m in modrange:
            p1 = (pb1 >> m) & 1
            p2 = (pb2 >> m) & 1
            direct = abs(b1 - p1) + abs(b2 - p2)
            if gsw[k]:
                exchanged = abs(b2 - p1) + abs(b1 - p2)
                if exchanged < direct:
                    row.append(exchanged)
                    continue
            row.append(direct)
        costs.append(row)
    modules = _match(costs, n, nm, perms_by_n)
    chosen_swaps = []
    next_pb1 = pb1
    next_pb2 = pb2
    for k in range(n):
        module = modules[k]
        case = gc[k]
        b1 = (case >> 1) & 1
        b2 = case & 1
        swap = False
        if gsw[k]:
            # against the group-start state, like the matrix
            p1 = (pb1 >> module) & 1
            p2 = (pb2 >> module) & 1
            # the matrix keeps only the best cost per cell; recover the
            # swap exactly as cost_matrix chose it
            swap = (abs(b2 - p1) + abs(b1 - p2)
                    < abs(b1 - p1) + abs(b2 - p2))
        chosen_swaps.append(swap)
        bit = 1 << module
        new1, new2 = (b2, b1) if swap else (b1, b2)
        next_pb1 = (next_pb1 & ~bit) | (new1 << module)
        next_pb2 = (next_pb2 & ~bit) | (new2 << module)
    return modules, tuple(chosen_swaps), next_pb1, next_pb2


def _run_one_bit_hamming(ev: PolicyEvaluator, cols: PackedColumns) -> None:
    """1-bit Hamming matcher with exact decision memoisation.

    The matcher's entire decision — module choice and router swaps —
    is a function of each op's (case, swappable) and each module's
    previous information-bit pair: at most 3 bits per op plus 2 bits
    per module.  That tiny state space is memoised as packed-int keys,
    so steady-state groups skip the cost matrix and matching entirely.
    Accounting remains full-width against the raw latched images,
    exactly like the object path.
    """
    ctx = _EvalContext(ev, cols)
    policy = ev.policy
    allow_swap = policy.allow_swap
    nm = ctx.nm
    mask = ctx.mask
    bc = _bit_count
    prev1, prev2 = ctx.prev1, ctx.prev2
    track, track_ops = ctx.track, ctx.track_ops
    op1c, op2c = cols.op1, cols.op2
    flagsc, casec = cols.flags, cols.case
    swapping = ctx.swapper is not None
    swap_case = ctx.swap_case
    swc = SWAPPED_CASE
    tel = ctx.telemetry
    tcounts = ctx.tcounts
    modrange = range(nm)
    perms_by_n: Dict[int, List[Tuple[int, ...]]] = {}
    # (ops' case/swappable codes + module info-bit masks) -> decision
    decisions: Dict[int, Tuple[Tuple[int, ...], Tuple[bool, ...], int, int]] \
        = {}
    extract = policy.scheme.extract
    pb1 = 0  # bit m = info bit of module m's latched first operand
    pb2 = 0
    for m in modrange:
        pb1 |= extract(prev1[m]) << m
        pb2 |= extract(prev2[m]) << m
    total_bits = 0
    total_ops = 0
    pre_swaps = 0
    router_swaps = 0
    gidx: List[int] = []
    gc: List[int] = []
    gpre: List[bool] = []
    gsw: List[bool] = []

    for sel in _select_groups(cols, nm, not ev.include_speculative):
        ctx.cycles_seen += 1
        del gidx[:], gc[:], gpre[:], gsw[:]
        key = 0
        for i in sel:
            case = casec[i]
            fl = flagsc[i]
            pre = bool(swapping and (fl & F_HW_SWAP) and case == swap_case)
            if pre:
                case = swc[case]
                pre_swaps += 1
            swappable = bool(allow_swap and (fl & F_HW_SWAP))
            gidx.append(i)
            gc.append(case)
            gpre.append(pre)
            gsw.append(swappable)
            key = (key << 3) | (case << 1) | swappable
        n = len(gidx)
        key = ((((key << nm) | pb1) << nm) | pb2) << 6 | n
        decision = decisions.get(key)
        if decision is None:
            decision = _one_bit_decide(gc, gsw, pb1, pb2, nm, modrange,
                                       perms_by_n)
            decisions[key] = decision
        modules, chosen_swaps, pb1, pb2 = decision
        for k in range(n):
            module = modules[k]
            i = gidx[k]
            # a pre-swap exchanged the operands before the matcher; a
            # router swap exchanges them again — the net order is raw
            # when both (or neither) fired
            if chosen_swaps[k]:
                router_swaps += 1
            if chosen_swaps[k] != gpre[k]:
                o1 = op2c[i]
                o2 = op1c[i]
            else:
                o1 = op1c[i]
                o2 = op2c[i]
            cost = (bc((prev1[module] ^ o1) & mask)
                    + bc((prev2[module] ^ o2) & mask))
            prev1[module] = o1
            prev2[module] = o2
            total_bits += cost
            if track is not None:
                track[module] += cost
                track_ops[module] += 1
            if tel:
                tcounts[gc[k]] += 1
        total_ops += n

    ctx.total_bits = total_bits
    ctx.total_ops = total_ops
    ctx.pre_swaps = pre_swaps
    ctx.router_swaps = router_swaps
    ctx.flush()


#: sentinel from the eligibility gates: the consumer is kernel-eligible
#: but the packed trace holds nothing of its FU class (a no-op run)
_EMPTY = object()


def _evaluator_cols(ev: PolicyEvaluator, packed: PackedTrace):
    """Shared (Python/NumPy backend) eligibility gate for evaluators.

    Returns the :class:`PackedColumns` to run over, :data:`_EMPTY` when
    the trace holds nothing of the evaluator's FU class, or ``None``
    when its configuration needs the object path (fault injectors,
    tracers, custom schemes/power models).
    """
    if type(ev) is not PolicyEvaluator:
        return None
    if ev.fault_injector is not None:
        return None
    if ev.telemetry is not None and ev._trace is not None:
        return None  # tracer wants per-cycle module events
    if type(ev.power) is not FUPowerModel:
        return None
    cols = packed.classes.get(ev.fu_class)
    if cols is None:
        return _EMPTY  # nothing of this class in the stream
    if ev.power._mask != cols.mask:
        return None
    if ev.telemetry is not None and ev.scheme is not cols.scheme:
        return None  # counted cases would need a different scheme
    swapper = ev.pre_swapper
    if swapper is not None and (type(swapper) is not HardwareSwapper
                                or swapper.scheme is not cols.scheme):
        return None
    return cols


def _evaluator_kernel(ev: PolicyEvaluator,
                      packed: PackedTrace) -> Optional[Callable[[], None]]:
    """Resolve the fused kernel for one evaluator, or ``None`` when its
    configuration needs the object path (see :func:`_evaluator_cols`).

    Kernel selection consults the policy registry: the policy's family
    (matched by exact type, so subclasses fall through) names a factory
    registered for the ``python`` backend, and the factory may still
    decline (scheme mismatch, unsupported shape) — both roads lead to
    the object path, never to a wrong kernel.
    """
    cols = _evaluator_cols(ev, packed)
    if cols is None:
        return None
    if cols is _EMPTY:
        return lambda: None
    factory = REGISTRY.kernel_factory(ev.policy, "python")
    if factory is None:
        return None
    return factory(ev, cols)


# ----- python-backend kernel registrations ------------------------------------
# Factories take (evaluator, columns) after the shared eligibility gate
# and return a runner or None to decline; each family's guards live
# with its factory instead of in a central type chain.


def _original_kernel(ev, cols):
    return lambda: _run_positional(ev, cols, round_robin=False)


def _round_robin_kernel(ev, cols):
    return lambda: _run_positional(ev, cols, round_robin=True)


def _lut_kernel(ev, cols):
    if ev.policy.scheme is not cols.scheme:
        return None
    return lambda: _run_lut(ev, cols)


def _full_hamming_kernel(ev, cols):
    return lambda: _run_full_hamming(ev, cols)


def _one_bit_hamming_kernel(ev, cols):
    if ev.policy.scheme is not cols.scheme or not cols.conventional:
        return None
    return lambda: _run_one_bit_hamming(ev, cols)


for _family, _factory in (("original", _original_kernel),
                          ("round-robin", _round_robin_kernel),
                          ("lut", _lut_kernel),
                          ("full-ham", _full_hamming_kernel),
                          ("1bit-ham", _one_bit_hamming_kernel)):
    REGISTRY.register_kernel(_family, "python", _factory)
del _family, _factory


# ----- statistics kernels -----------------------------------------------------


def _run_bit_patterns(collector: BitPatternCollector,
                      cols: PackedColumns) -> None:
    """Table 1 rows straight from the case/popcount columns."""
    counts = [0] * 8
    ones1 = [0] * 8
    ones2 = [0] * 8
    flagsc, casec = cols.flags, cols.case
    pop1c, pop2c = cols.pop1, cols.pop2
    include_spec = collector.include_speculative
    total = 0
    for i in range(cols.n_ops):
        fl = flagsc[i]
        if (fl & F_SPEC) and not include_spec:
            continue
        slot = (casec[i] << 1) | ((fl >> 4) & 1)  # F_COMMUT is bit 4
        counts[slot] += 1
        ones1[slot] += pop1c[i]
        ones2[slot] += pop2c[i]
        total += 1
    for slot in range(8):
        if not counts[slot]:
            continue
        row = collector.rows[(slot >> 1, bool(slot & 1))]
        row.count += counts[slot]
        row.ones_op1 += ones1[slot]
        row.ones_op2 += ones2[slot]
    collector.total_ops += total


def _bit_patterns_cols(collector: BitPatternCollector, packed: PackedTrace):
    """Shared backend gate: columns to run over, :data:`_EMPTY`, or
    ``None`` for the object path (subclass/scheme/mask mismatch)."""
    from ..analysis.bit_patterns import BitPatternCollector
    if type(collector) is not BitPatternCollector:
        return None
    cols = packed.classes.get(collector.fu_class)
    if cols is None:
        return _EMPTY
    if collector.scheme is not cols.scheme or collector._mask != cols.mask:
        return None
    return cols


def _bit_patterns_kernel(collector: BitPatternCollector,
                         packed: PackedTrace) -> Optional[Callable[[], None]]:
    cols = _bit_patterns_cols(collector, packed)
    if cols is None:
        return None
    if cols is _EMPTY:
        return lambda: None
    return lambda: _run_bit_patterns(collector, cols)


def _run_module_usage(collector: ModuleUsageCollector,
                      cols: PackedColumns) -> None:
    """Table 2 widths from the offsets column (empty groups excluded)."""
    per_class = collector.counts.setdefault(cols.fu_class, {})
    offsets = cols.offsets
    get = per_class.get
    for g in range(cols.n_groups):
        width = offsets[g + 1] - offsets[g]
        if width:
            per_class[width] = get(width, 0) + 1


def _module_usage_kernel(collector: ModuleUsageCollector,
                         packed: PackedTrace) -> Optional[Callable[[], None]]:
    from ..analysis.module_usage import ModuleUsageCollector
    if type(collector) is not ModuleUsageCollector:
        return None

    def run() -> None:
        for fu_class, cols in packed.classes.items():
            if collector._filter is None or fu_class in collector._filter:
                _run_module_usage(collector, cols)

    return run


# ----- the drive loop ---------------------------------------------------------

#: kernel backends: vectorized NumPy array kernels (when importable)
#: and the pure-Python fused kernels (always present; the oracle)
BACKENDS = ("np", "python")


def numpy_available() -> bool:
    """Whether the NumPy kernel backend can run in this interpreter."""
    from . import kernels_np
    return kernels_np.NUMPY_AVAILABLE


def resolve_backend(backend: Optional[str] = None) -> str:
    """Map a backend request to a concrete member of :data:`BACKENDS`.

    ``None``/``"auto"`` picks ``"np"`` when NumPy is importable and
    degrades to ``"python"`` otherwise; an explicit ``"np"`` without
    NumPy is an error rather than a silent slowdown.
    """
    if backend is None or backend == "auto":
        return "np" if numpy_available() else "python"
    if backend not in BACKENDS:
        raise ValueError(f"backend must be 'auto' or one of {BACKENDS}")
    if backend == "np" and not numpy_available():
        raise RuntimeError(
            "the 'np' kernel backend was requested but numpy is not "
            "importable; use backend='auto' to fall back to the Python "
            "kernels")
    return backend


def _kernel_for(consumer, packed: PackedTrace) -> Optional[Callable[[], None]]:
    from ..analysis.bit_patterns import BitPatternCollector
    from ..analysis.module_usage import ModuleUsageCollector
    if isinstance(consumer, PolicyEvaluator):
        return _evaluator_kernel(consumer, packed)
    if isinstance(consumer, BitPatternCollector):
        return _bit_patterns_kernel(consumer, packed)
    if isinstance(consumer, ModuleUsageCollector):
        return _module_usage_kernel(consumer, packed)
    return None


def batch_drive(packed: PackedTrace, consumers: Sequence,
                finalize: bool = True, backend: Optional[str] = None):
    """Run consumers over a packed trace: the columnar ``drive``.

    Consumers with a fused kernel are evaluated columnar; all others
    share a single object-decoding pass over :meth:`iter_groups` (still
    decoding once, not once per consumer).  With ``finalize`` each
    consumer's ``finalize()`` hook is drained afterwards, exactly like
    :func:`repro.streams.drive`.  Returns the packed stream's run
    summary when known.

    ``backend`` picks the kernel implementation (see
    :func:`resolve_backend`): ``"np"`` routes each consumer through the
    vectorized kernels in :mod:`repro.batch.kernels_np` where one
    applies, falling back per-consumer to the fused Python kernels (and
    from there to the object pass) for configurations the NumPy layer
    does not cover — so a mixed consumer set always runs, bit-identical
    whichever backend serves it.
    """
    resolved = resolve_backend(backend)
    np_kernel_for = None
    if resolved == "np":
        from .kernels_np import kernel_for as np_kernel_for
    consumers = list(consumers)
    fallback = []
    for consumer in consumers:
        kernel = None
        if np_kernel_for is not None:
            kernel = np_kernel_for(consumer, packed)
        if kernel is None:
            kernel = _kernel_for(consumer, packed)
        if kernel is None:
            fallback.append(consumer)
        else:
            kernel()
    if fallback:
        for group in packed.iter_groups():
            for consumer in fallback:
                consumer(group)
    if finalize:
        for consumer in consumers:
            hook = getattr(consumer, "finalize", None)
            if hook is not None:
                hook()
    return packed.result
