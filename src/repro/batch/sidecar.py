"""Packed-trace sidecars: persist columns next to the v2 trace.

A sidecar stores a :class:`~repro.batch.columns.PackedTrace` as raw
column bytes so a cache hit can memory-map the columns instead of
re-parsing (and re-packing) the JSON trace.  The file lives alongside
the content-addressed trace under ``<key>.trace.gz.pack`` and carries
the same config fingerprint, so the existing cache-key discipline
covers it.

Format::

    b"RPAK"  | u32 version | u32 header_len | header JSON | payload

The header describes every column (typecode, item size, byte offset,
byte length) plus the opcode-name table and the global group order;
the payload is the concatenated column bytes, each 8-byte aligned.

Failure semantics mirror the trace reader's: an unknown *future*
version, a truncated payload, a corrupt header, a byte-order mismatch,
or an unresolvable opcode name all raise :class:`PackFormatError` —
callers (the batch engine's cache layer) treat that as "no sidecar"
and re-pack from the trace, never crash.  Writes are atomic
(temp-then-rename), like every other cache artifact.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import tempfile
from array import array
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..isa.instructions import FUClass, opcode as _opcode
from .columns import ALL_COLUMNS, PackedColumns, PackedTrace

PathLike = Union[str, Path]

MAGIC = b"RPAK"
PACK_VERSION = 1
SUPPORTED_PACK_VERSIONS = (1,)
_PREFIX = struct.Struct("<4sII")  # magic, version, header length
_ALIGN = 8


def sidecar_path(trace_path: PathLike) -> Path:
    """The sidecar path for a trace file (``<trace>.pack``)."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.name + ".pack")


class PackFormatError(ValueError):
    """A packed sidecar is truncated, corrupt, foreign, or from the
    future.  Mirrors :class:`~repro.cpu.tracefile.TraceFormatError`:
    carries the path and a reason, and callers degrade to a re-pack."""

    def __init__(self, path: PathLike, reason: str):
        self.path = str(path)
        super().__init__(f"bad packed sidecar ({self.path}): {reason}")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def write_sidecar(path: PathLike, packed: PackedTrace,
                  config_fingerprint: Optional[str] = None) -> int:
    """Serialise ``packed`` atomically; returns bytes written."""
    target = Path(path)
    chunks = []  # (bytes, descriptor-dict to fill with offset)
    offset = 0

    def _add(arr: array) -> Dict[str, Any]:
        nonlocal offset
        raw = arr.tobytes()
        offset = _aligned(offset)
        desc = {"typecode": arr.typecode, "itemsize": arr.itemsize,
                "offset": offset, "bytes": len(raw)}
        chunks.append((offset, raw))
        offset += len(raw)
        return desc

    order_desc = _add(packed.order)
    class_entries = []
    for fu_class in packed.class_list:
        cols = packed.classes[fu_class]
        entry: Dict[str, Any] = {
            "fu": fu_class.value,
            "n_groups": cols.n_groups,
            "n_ops": cols.n_ops,
            "conventional": cols.conventional,
            "columns": {name: _add(array(code, cols.column(name)))
                        for name, code in ALL_COLUMNS},
        }
        class_entries.append(entry)

    header = {
        "pack_version": PACK_VERSION,
        "byteorder": sys.byteorder,
        "name": packed.name,
        "config": config_fingerprint,
        "opcodes": list(packed.opcode_names),
        "n_groups": packed.n_groups,
        "order": order_desc,
        "classes": class_entries,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")

    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent))
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(_PREFIX.pack(MAGIC, PACK_VERSION, len(header_bytes)))
            handle.write(header_bytes)
            base = handle.tell()
            end = base
            for chunk_offset, raw in chunks:
                want = base + chunk_offset
                if want > end:
                    handle.write(b"\0" * (want - end))
                handle.write(raw)
                end = want + len(raw)
            total = handle.tell()
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return total


def _check_desc(path: PathLike, name: str, desc: Any, payload_len: int,
                expect_code: str) -> None:
    if not isinstance(desc, dict):
        raise PackFormatError(path, f"column '{name}' descriptor malformed")
    code = desc.get("typecode")
    if code != expect_code:
        raise PackFormatError(
            path, f"column '{name}' has typecode {code!r},"
            f" expected {expect_code!r}")
    itemsize = array(expect_code).itemsize
    if desc.get("itemsize") != itemsize:
        raise PackFormatError(
            path, f"column '{name}' item size {desc.get('itemsize')!r}"
            f" does not match this platform's {itemsize}")
    offset, nbytes = desc.get("offset"), desc.get("bytes")
    if (not isinstance(offset, int) or not isinstance(nbytes, int)
            or offset < 0 or nbytes < 0 or offset + nbytes > payload_len):
        raise PackFormatError(
            path, f"column '{name}' ({offset!r}+{nbytes!r} bytes) falls"
            f" outside the {payload_len}-byte payload (truncated file?)")
    if nbytes % itemsize:
        raise PackFormatError(
            path, f"column '{name}' byte length {nbytes} is not a multiple"
            f" of item size {itemsize}")


def load_sidecar(path: PathLike,
                 expected_config: Optional[str] = None,
                 use_mmap: bool = True) -> PackedTrace:
    """Load a sidecar; columns are memory-mapped views when possible.

    Raises :class:`PackFormatError` for anything suspicious — callers
    re-pack from the trace instead.  ``expected_config`` guards against
    a stale sidecar next to a rewritten trace.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        handle = open(path, "rb")
    except OSError as exc:
        raise PackFormatError(path, f"unreadable: {exc}") from exc
    try:
        prefix = handle.read(_PREFIX.size)
        if len(prefix) != _PREFIX.size:
            raise PackFormatError(path, "truncated before the header")
        magic, version, header_len = _PREFIX.unpack(prefix)
        if magic != MAGIC:
            raise PackFormatError(path, f"bad magic {magic!r}")
        if version not in SUPPORTED_PACK_VERSIONS:
            raise PackFormatError(
                path, f"unsupported pack version {version!r} (supported:"
                f" {', '.join(map(str, SUPPORTED_PACK_VERSIONS))})")
        header_bytes = handle.read(header_len)
        if len(header_bytes) != header_len:
            raise PackFormatError(path, "truncated inside the header")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise PackFormatError(path, f"corrupt header: {exc}") from exc
        if not isinstance(header, dict):
            raise PackFormatError(path, "header is not a JSON object")
        if header.get("byteorder") != sys.byteorder:
            raise PackFormatError(
                path, f"byte order {header.get('byteorder')!r} does not"
                f" match this platform ({sys.byteorder})")
        if expected_config is not None \
                and header.get("config") != expected_config:
            raise PackFormatError(
                path, "config fingerprint mismatch (stale sidecar)")

        base = _PREFIX.size + header_len
        payload_len = size - base
        mapped = None
        if use_mmap and payload_len > 0:
            try:
                mapped = mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            except (OSError, ValueError):  # pragma: no cover - platform
                mapped = None
        if mapped is not None:
            view = memoryview(mapped)
        else:
            handle.seek(base)
            view = memoryview(handle.read())
            base = 0

        def _column(name: str, desc: Any, expect_code: str):
            _check_desc(path, name, desc, payload_len, expect_code)
            start = base + desc["offset"]
            chunk = view[start:start + desc["bytes"]]
            try:
                return chunk.cast(expect_code)
            except TypeError:
                # unaligned cast (should not happen: writer aligns) —
                # fall back to a copy
                return array(expect_code, chunk.tobytes())

        packed = PackedTrace(name=str(header.get("name", path.stem)))
        packed._mmap = mapped
        opcodes = header.get("opcodes")
        if not isinstance(opcodes, list) \
                or not all(isinstance(n, str) for n in opcodes):
            raise PackFormatError(path, "malformed opcode table")
        for name in opcodes:
            try:
                _opcode(name)
            except (KeyError, ValueError) as exc:
                raise PackFormatError(
                    path, f"unknown opcode {name!r} in table") from exc
            packed._intern_opcode(name)

        order = _column("order", header.get("order"), "B")
        n_groups = header.get("n_groups")
        if len(order) != n_groups:
            raise PackFormatError(
                path, f"group order length {len(order)} != header"
                f" n_groups {n_groups!r}")
        packed.order = order

        classes = header.get("classes")
        if not isinstance(classes, list):
            raise PackFormatError(path, "malformed class list")
        for entry in classes:
            if not isinstance(entry, dict):
                raise PackFormatError(path, "malformed class entry")
            try:
                fu_class = FUClass(entry.get("fu"))
            except ValueError as exc:
                raise PackFormatError(
                    path, f"unknown FU class {entry.get('fu')!r}") from exc
            cols = PackedColumns(fu_class)
            cols.conventional = bool(entry.get("conventional", True))
            columns = entry.get("columns")
            if not isinstance(columns, dict):
                raise PackFormatError(
                    path, f"class {fu_class.value}: malformed columns")
            for name, code in ALL_COLUMNS:
                loaded = _column(f"{fu_class.value}.{name}",
                                 columns.get(name), code)
                setattr(cols, name, loaded)
            cn_groups = entry.get("n_groups")
            cn_ops = entry.get("n_ops")
            if len(cols.cycles) != cn_groups \
                    or len(cols.offsets) != (cn_groups or 0) + 1 \
                    or len(cols.op1) != cn_ops:
                raise PackFormatError(
                    path, f"class {fu_class.value}: column lengths do not"
                    f" match the recorded group/op counts")
            if cols.offsets[0] != 0 or cols.offsets[len(cols.offsets) - 1] \
                    != cn_ops:
                raise PackFormatError(
                    path, f"class {fu_class.value}: offsets column is"
                    f" inconsistent with the op count")
            for other in ("op2", "opcode", "flags", "case", "pop1", "pop2",
                          "static"):
                if len(cols.column(other)) != cn_ops:
                    raise PackFormatError(
                        path, f"class {fu_class.value}: column '{other}'"
                        f" length mismatch")
            packed.classes[fu_class] = cols
            packed.class_list.append(fu_class)
        for class_index in packed.order:
            if class_index >= len(packed.class_list):
                raise PackFormatError(
                    path, f"group order references class #{class_index}"
                    f" but only {len(packed.class_list)} classes exist")
        return packed
    finally:
        # the mmap (when taken) stays valid after the descriptor closes
        handle.close()
