"""The paper's contribution: information bits, power model, steering,
LUT synthesis, and operand swapping."""

from .assignment import Assignment, cost_matrix, optimal_assignment, solve
from .hybrid import (CriticalityAwareLUTPolicy, GuardedFUPowerModel,
                     HeterogeneousPowerModel, ModuleVariant,
                     standard_variants)
from .info_bits import (CASE_NAMES, CASES, InfoBitScheme, PAPER_FP_SCHEME,
                        PAPER_INT_SCHEME, case_hamming, case_of, fp_info_bit,
                        int_info_bit, make_fp_scheme, make_int_scheme,
                        scheme_for, swapped_case)
from .logic import (LogicCost, RouterCost, SOPCover, estimate_router_cost,
                    minimize, synthesize_lut_logic, synthesize_truth_table)
from .lut import (GateCost, SteeringLUT, allocate_homes,
                  allocate_homes_paper_rule, build_lut, estimate_gate_cost)
from . import verilog
from .power import (FUPowerModel, MultiplierActivityModel, PowerParameters,
                    booth_recode_activity, operand_width, shift_add_activity)
from .statistics import CaseStatistics, paper_statistics
from .steering import (EvaluationTotals, FullHammingPolicy, LUTPolicy,
                       OneBitHammingPolicy, OriginalPolicy, PolicyEvaluator,
                       RoundRobinPolicy, SharedEvaluationCoordinator,
                       SteeringPolicy, make_policy)
from .swapping import (HardwareSwapper, MultiplierSwapper, SwapMode,
                       choose_swap_case)
from .registry import (PolicyFamily, PolicyNameError, PolicyRegistry,
                       PolicyRequest, REGISTRY)
# importing the module registers the bdd-<bits> family (must follow
# .steering: BDDPolicy subclasses LUTPolicy)
from .bdd import (BDDCost, BDDPolicy, SteeringBDD, bdd_allocate_homes,
                  build_bdd, build_bdd_lut, estimate_bdd_router_cost,
                  order_variables, synthesize_bdd, vector_distribution)

__all__ = [
    "Assignment", "cost_matrix", "optimal_assignment", "solve",
    "CriticalityAwareLUTPolicy", "GuardedFUPowerModel",
    "HeterogeneousPowerModel", "ModuleVariant", "standard_variants",
    "CASE_NAMES", "CASES", "InfoBitScheme", "PAPER_FP_SCHEME",
    "PAPER_INT_SCHEME", "case_hamming", "case_of", "fp_info_bit",
    "int_info_bit", "make_fp_scheme", "make_int_scheme", "scheme_for",
    "swapped_case",
    "GateCost", "SteeringLUT", "allocate_homes",
    "allocate_homes_paper_rule", "build_lut",
    "estimate_gate_cost",
    "LogicCost", "RouterCost", "SOPCover", "estimate_router_cost",
    "minimize", "synthesize_lut_logic", "synthesize_truth_table",
    "FUPowerModel", "MultiplierActivityModel", "PowerParameters",
    "booth_recode_activity", "operand_width", "shift_add_activity",
    "CaseStatistics", "paper_statistics",
    "EvaluationTotals", "FullHammingPolicy", "LUTPolicy",
    "OneBitHammingPolicy", "OriginalPolicy", "PolicyEvaluator",
    "RoundRobinPolicy", "SharedEvaluationCoordinator",
    "SteeringPolicy", "make_policy",
    "HardwareSwapper", "MultiplierSwapper", "SwapMode", "choose_swap_case",
    "PolicyFamily", "PolicyNameError", "PolicyRegistry", "PolicyRequest",
    "REGISTRY",
    "BDDCost", "BDDPolicy", "SteeringBDD", "bdd_allocate_homes",
    "build_bdd", "build_bdd_lut", "estimate_bdd_router_cost",
    "order_variables", "synthesize_bdd", "vector_distribution",
    "verilog",
]
