"""LUT synthesis for the lightweight steering approach (section 4.3).

The paper's router replaces Hamming-distance comparisons with a lookup
table: the information-bit cases of the first few operations issued
this cycle form a *vector* that addresses a LUT whose output is the
module assignment.  The LUT contents are fixed at design time from the
case-frequency statistics (Table 1) and the module-usage distribution
(Table 2).

Synthesis proceeds in two steps:

1. **Home allocation** — decide how many modules to reserve for each
   case.  The paper reasons informally (three IALU modules for case 00;
   one FPAU module per case because FP multi-issue is rare).  We make
   that reasoning exact: enumerate every allocation of modules to cases
   and pick the one minimising the *expected per-cycle mismatch cost*,
   where a scenario's cost is the optimal matching of its instruction
   cases onto module homes under the information-bit Hamming metric,
   and scenarios are weighted by the case and usage distributions.
   This reproduces the paper's two examples (verified in the tests).

2. **Table filling** — for every possible vector, store the optimal
   matching of the vector's cases onto the allocated homes.  Overflow
   (more instructions of a case than reserved modules) lands on the
   modules "likely to incur the smallest cost", exactly as the paper's
   greedy rule intends, except solved optimally.  Slot ``n``'s cost is
   weighted by the probability that ``n`` operations actually issue
   (``P(Num(I) >= n)`` from Table 2): at runtime, short cycles pad the
   trailing slots with the least frequent case, so trailing slots are
   usually padding and must not steal a real operation's home module.

Short vectors are padded with the least frequent case; pad slots'
module outputs are ignored when the assignment is applied.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from math import log2
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.instructions import FUClass
from .assignment import solve
from .info_bits import CASES, case_hamming
from .statistics import CaseStatistics

Vector = Tuple[int, ...]  # one case per vector slot


def _compositions(total: int, parts: int) -> Iterable[Tuple[int, ...]]:
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail


def _homes_from_allocation(allocation: Sequence[int]) -> Tuple[int, ...]:
    """Expand an allocation (modules per case) into per-module homes."""
    homes: List[int] = []
    for case, count in zip(CASES, allocation):
        homes.extend([case] * count)
    return tuple(homes)


def _scenario_matching(cases: Sequence[int],
                       homes: Sequence[int]) -> Tuple[int, ...]:
    """Optimal matching of instruction cases onto module homes."""
    costs = [[case_hamming(case, home) for home in homes] for case in cases]
    modules, _ = solve(costs)
    return modules


# Home allocation is a pure function of the statistics content, yet a
# figure-4 panel synthesises the same LUTs once per swap mode per
# program version — memoise on the (hashable) distribution content so
# the exhaustive allocation search runs once per distinct input.
_HOMES_CACHE: Dict[tuple, Tuple[int, ...]] = {}


def _stats_key(stats: CaseStatistics) -> tuple:
    return (stats.fu_class,
            tuple(sorted(stats.case_comm_freq.items())),
            tuple(sorted(stats.usage.items())))


def allocate_homes(stats: CaseStatistics, num_modules: int) -> Tuple[int, ...]:
    """Reserve a home case for each module (synthesis step 1).

    Returns one case per module, sorted so same-home modules are
    adjacent.  Every allocation of ``num_modules`` across the four cases
    is scored by a *sequence-aware* expected cost: routing each issue
    scenario by optimal case-to-home matching induces, for every module,
    a distribution of arriving cases; a module's switching cost is the
    expected information-bit Hamming distance between two consecutive
    arrivals from that mix.  This captures what matters at run time —
    a module fed a consistent case mix switches few bits, however that
    mix relates to its nominal home — and reproduces the paper's IALU
    and FPAU allocation examples (verified in the tests).
    """
    if num_modules < 1:
        raise ValueError("need at least one module")
    cache_key = (_stats_key(stats), num_modules)
    cached = _HOMES_CACHE.get(cache_key)
    if cached is not None:
        return cached
    case_probs = stats.case_distribution()
    usage = stats.usage_distribution(num_modules)

    # enumerate scenarios once: (case tuple, probability)
    scenarios: List[Tuple[Tuple[int, ...], float]] = []
    for width, width_prob in usage.items():
        if width_prob <= 0.0:
            continue
        for combo in itertools.product(CASES, repeat=width):
            probability = width_prob
            for case in combo:
                probability *= case_probs[case]
            if probability > 0.0:
                scenarios.append((combo, probability))

    best_cost = None
    best_homes: Tuple[int, ...] = ()
    for allocation in _compositions(num_modules, len(CASES)):
        homes = _homes_from_allocation(allocation)
        # per-module case-arrival mass under this allocation's routing
        arrivals = [[0.0] * len(CASES) for _ in range(num_modules)]
        for cases, probability in scenarios:
            for case, module in zip(cases, _scenario_matching(cases, homes)):
                arrivals[module][case] += probability
        expected = 0.0
        for module_mass in arrivals:
            rate = sum(module_mass)
            if rate <= 0.0:
                continue
            mix = [mass / rate for mass in module_mass]
            per_arrival = sum(mix[a] * mix[b] * case_hamming(CASES[a], CASES[b])
                              for a in range(len(CASES))
                              for b in range(len(CASES)))
            expected += rate * per_arrival
        if best_cost is None or expected < best_cost - 1e-12:
            best_cost = expected
            best_homes = homes
    _HOMES_CACHE[cache_key] = best_homes
    return best_homes


def allocate_homes_paper_rule(stats: CaseStatistics,
                              num_modules: int) -> Tuple[int, ...]:
    """The paper's informal allocation, for ablation against the
    optimised :func:`allocate_homes`.

    Section 4.3 reasons: if one case dominates (the IALU's 69% case 00),
    reserve all but one module for it and use the last module for the
    other cases (homed at the most frequent of them); otherwise (FP)
    give each case its own module, extra modules going to the most
    frequent cases.
    """
    if num_modules < 1:
        raise ValueError("need at least one module")
    distribution = stats.case_distribution()
    ranked = sorted(CASES, key=lambda case: (-distribution[case], case))
    dominant = ranked[0]
    if distribution[dominant] > 0.5 and num_modules >= 2:
        homes = [dominant] * (num_modules - 1)
        homes.append(ranked[1])
        return tuple(sorted(homes))
    homes = []
    for index in range(num_modules):
        homes.append(ranked[index % len(ranked)])
    return tuple(sorted(homes))


@dataclass(frozen=True)
class SteeringLUT:
    """A synthesised lookup table: case vector -> module assignment.

    ``vector_ops`` is the number of instruction slots encoded in the
    vector (the paper's 8/4/2-bit vectors encode 4/2/1 slots at two
    bits per slot).  ``table`` maps every possible vector to one module
    index per slot (all distinct).  ``homes`` records each module's
    reserved case, and ``pad_case`` the case used to fill empty slots.
    """

    fu_class: FUClass
    num_modules: int
    vector_ops: int
    homes: Tuple[int, ...]
    pad_case: int
    table: Dict[Vector, Tuple[int, ...]]

    @property
    def vector_bits(self) -> int:
        return 2 * self.vector_ops

    def lookup(self, cases: Sequence[int]) -> Tuple[int, ...]:
        """Module assignment for the first ``vector_ops`` issued ops.

        ``cases`` may be shorter than the vector (fewer instructions
        issued); it is padded with ``pad_case``.  The returned tuple has
        one module per *input* case, pad slots dropped.
        """
        if len(cases) > self.vector_ops:
            raise ValueError(
                f"vector holds {self.vector_ops} slots, got {len(cases)} cases")
        padded = tuple(cases) + (self.pad_case,) * (self.vector_ops - len(cases))
        return self.table[padded][:len(cases)]


def build_lut(stats: CaseStatistics, num_modules: int, vector_bits: int,
              homes: Optional[Tuple[int, ...]] = None) -> SteeringLUT:
    """Synthesise the steering LUT for one FU class (synthesis step 2).

    ``homes`` overrides the optimised allocation (e.g. with
    :func:`allocate_homes_paper_rule`) for ablation studies.
    """
    if vector_bits % 2 or vector_bits < 2:
        raise ValueError("vector width must be a positive multiple of 2 bits")
    vector_ops = vector_bits // 2
    if vector_ops > num_modules:
        raise ValueError("vector cannot encode more slots than modules")
    if homes is None:
        homes = allocate_homes(stats, num_modules)
    elif len(homes) != num_modules:
        raise ValueError("homes must name one case per module")
    pad_case = stats.least_case()
    usage = stats.usage_distribution(num_modules)
    # P(Num(I) >= n) for each vector slot, floored so full vectors still
    # resolve deterministically toward low module indices
    occupancy = []
    for slot in range(1, vector_ops + 1):
        occupancy.append(max(1e-6, sum(fraction
                                       for width, fraction in usage.items()
                                       if width >= slot)))
    table: Dict[Vector, Tuple[int, ...]] = {}
    for vector in itertools.product(CASES, repeat=vector_ops):
        costs = [[occupancy[slot] * case_hamming(case, home)
                  for home in homes]
                 for slot, case in enumerate(vector)]
        modules, _ = solve(costs)
        table[vector] = modules
    return SteeringLUT(fu_class=stats.fu_class, num_modules=num_modules,
                       vector_ops=vector_ops, homes=homes,
                       pad_case=pad_case, table=table)


@dataclass(frozen=True)
class GateCost:
    """Estimated implementation cost of the routing control logic."""

    gates: int
    levels: int


def estimate_gate_cost(vector_bits: int, rs_entries: int) -> GateCost:
    """Gate/level estimate for the LUT-based router.

    Calibrated to the paper's two reported data points for the 4-bit
    IALU LUT — 58 gates / 6 levels with 8 reservation-station entries
    and 130 gates / 8 levels with 32 — using a linear gate cost in RS
    entries (the information-bit forwarding mux) plus a LUT term that
    doubles per vector bit, and logarithmic levels.
    """
    if vector_bits < 2 or rs_entries < 1:
        raise ValueError("need a non-empty vector and at least one RS entry")
    lut_gates = 34 * 2 ** (vector_bits - 4)
    forwarding_gates = 3 * rs_entries
    levels = max(2, vector_bits // 2 + 1 + round(log2(rs_entries)))
    return GateCost(gates=round(lut_gates + forwarding_gates), levels=levels)
